"""Unit helpers and physical constants used across CHRYSALIS.

All internal computation uses SI base units:

* energy  — joules (J)
* power   — watts (W)
* time    — seconds (s)
* charge  — coulombs (C)
* voltage — volts (V)
* capacitance — farads (F)
* area    — square centimetres (cm^2) for solar panels, matching the
  paper's design-space tables; the light coefficient ``k_eh`` is
  therefore expressed in W/cm^2.
* memory  — bytes (B)

The helpers below exist so that call sites can state magnitudes in the
units the paper's tables use (uF, mF, cm^2, KB, ...) without sprinkling
powers of ten through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Scale prefixes
# ---------------------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def uF(value: float) -> float:
    """Capacitance given in microfarads, returned in farads."""
    return value * MICRO


def mF(value: float) -> float:
    """Capacitance given in millifarads, returned in farads."""
    return value * MILLI


def nJ(value: float) -> float:
    """Energy given in nanojoules, returned in joules."""
    return value * NANO


def uJ(value: float) -> float:
    """Energy given in microjoules, returned in joules."""
    return value * MICRO


def mJ(value: float) -> float:
    """Energy given in millijoules, returned in joules."""
    return value * MILLI


def uW(value: float) -> float:
    """Power given in microwatts, returned in watts."""
    return value * MICRO


def mW(value: float) -> float:
    """Power given in milliwatts, returned in watts."""
    return value * MILLI


def ms(value: float) -> float:
    """Time given in milliseconds, returned in seconds."""
    return value * MILLI


def us(value: float) -> float:
    """Time given in microseconds, returned in seconds."""
    return value * MICRO


def KB(value: float) -> int:
    """Memory given in kibibytes, returned in bytes."""
    return int(value * 1024)


def MB(value: float) -> int:
    """Memory given in mebibytes, returned in bytes."""
    return int(value * 1024 * 1024)


# ---------------------------------------------------------------------------
# Reference irradiance values (used by the environment model)
# ---------------------------------------------------------------------------

#: Standard test condition irradiance for photovoltaics, W/m^2.
STC_IRRADIANCE_W_PER_M2 = 1000.0

#: cm^2 per m^2 — solar panel areas in the paper are quoted in cm^2.
CM2_PER_M2 = 1e4


def irradiance_to_w_per_cm2(irradiance_w_per_m2: float) -> float:
    """Convert an irradiance in W/m^2 to W/cm^2."""
    return irradiance_w_per_m2 / CM2_PER_M2
