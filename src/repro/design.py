"""Design-point descriptions — what CHRYSALIS searches over.

An AuT design point (the tool's *output*, Table II) bundles:

* the energy-subsystem sizing (solar panel area, capacitor size);
* the inference-subsystem sizing (architecture family, PE count,
  per-PE cache) — fixed to the MSP430 for the existing-AuT setup;
* the per-layer intermittent mappings (dataflow + ``N_tile``).

These dataclasses are deliberately free of behaviour: the evaluator
lowers them onto the component models, and the explorer mutates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.dataflow.mapping import LayerMapping
from repro.energy.capacitor import DEFAULT_K_CAP, Capacitor
from repro.energy.pmic import PowerManagementIC
from repro.energy.solar_panel import SolarPanel
from repro.errors import ConfigurationError
from repro.hardware.accelerators import (
    AcceleratorConfig,
    AcceleratorFamily,
    build_accelerator,
)
from repro.hardware.msp430 import MSP430Platform
from repro.workloads.network import Network


@dataclass(frozen=True)
class EnergyDesign:
    """Sizing of the energy subsystem (the EA half of the co-design)."""

    panel_area_cm2: float
    capacitance_f: float
    k_cap: float = DEFAULT_K_CAP
    pmic: PowerManagementIC = field(default_factory=PowerManagementIC)

    def __post_init__(self) -> None:
        if self.panel_area_cm2 <= 0:
            raise ConfigurationError(
                f"panel area must be positive, got {self.panel_area_cm2}"
            )
        if self.capacitance_f <= 0:
            raise ConfigurationError(
                f"capacitance must be positive, got {self.capacitance_f}"
            )

    def build_panel(self) -> SolarPanel:
        return SolarPanel(area_cm2=self.panel_area_cm2)

    def build_capacitor(self, initial_voltage: float = 0.0) -> Capacitor:
        return Capacitor(
            capacitance=self.capacitance_f,
            rated_voltage=max(5.0, self.pmic.v_on + 1.0),
            k_cap=self.k_cap,
            voltage=initial_voltage,
        )


@dataclass(frozen=True)
class InferenceDesign:
    """Sizing of the inference subsystem (the IA half of the co-design).

    For the existing-AuT setup use :meth:`msp430`, which ignores the PE
    knobs (the LEA is what it is); for the future-AuT setup pick a
    family plus PE count / cache size from the Table V space.
    ``clock_scale`` is the optional DVFS knob (1.0 = nominal): slower
    clocks cost quadratically less energy per MAC.
    """

    family: AcceleratorFamily
    n_pes: int = 1
    cache_bytes_per_pe: int = 512
    clock_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        if self.cache_bytes_per_pe <= 0:
            raise ConfigurationError(
                f"cache_bytes_per_pe must be positive, "
                f"got {self.cache_bytes_per_pe}"
            )
        if self.clock_scale <= 0:
            raise ConfigurationError(
                f"clock_scale must be positive, got {self.clock_scale}"
            )

    @classmethod
    def msp430(cls) -> "InferenceDesign":
        return cls(family=AcceleratorFamily.MSP430, n_pes=1,
                   cache_bytes_per_pe=MSP430Platform().sram_bytes // 2)

    def build(self) -> AcceleratorConfig:
        if self.family is AcceleratorFamily.MSP430:
            return MSP430Platform().as_accelerator()
        return build_accelerator(self.family, self.n_pes,
                                 self.cache_bytes_per_pe,
                                 clock_scale=self.clock_scale)


@dataclass(frozen=True)
class AuTDesign:
    """A complete candidate architecture: EA + IA + mapping.

    ``mappings`` holds one :class:`LayerMapping` per network layer, in
    network order.  Use :meth:`with_default_mappings` to seed one.
    """

    energy: EnergyDesign
    inference: InferenceDesign
    mappings: Tuple[LayerMapping, ...]

    @classmethod
    def with_default_mappings(cls, energy: EnergyDesign,
                              inference: InferenceDesign,
                              network: Network,
                              n_tiles: int = 1) -> "AuTDesign":
        mappings = tuple(
            LayerMapping.default(layer, n_tiles=n_tiles) for layer in network
        )
        return cls(energy=energy, inference=inference, mappings=mappings)

    def validate_against(self, network: Network) -> None:
        if len(self.mappings) != len(network):
            raise ConfigurationError(
                f"design has {len(self.mappings)} mappings but the network "
                f"has {len(network)} layers"
            )

    def replace_mapping(self, index: int, mapping: LayerMapping) -> "AuTDesign":
        mappings = list(self.mappings)
        mappings[index] = mapping
        return replace(self, mappings=tuple(mappings))

    @property
    def footprint_cm2(self) -> float:
        """SWaP size proxy: the harvester dominates AuT volume (§III-B-3)."""
        return self.energy.panel_area_cm2

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return (
            f"SP={self.energy.panel_area_cm2:.1f}cm2 "
            f"C={self.energy.capacitance_f * 1e6:.0f}uF "
            f"{self.inference.family.value} "
            f"PEs={self.inference.n_pes} "
            f"cache={self.inference.cache_bytes_per_pe}B"
        )

