"""The single-entry evaluation API.

Historically, pricing one design meant choosing between three entry
points with three calling conventions: :class:`AnalyticalModel`
(one environment, closed form), :class:`StepSimulator` (hand-built
controllers), and :class:`ChrysalisEvaluator` (network-level, but mode
flags and per-call overrides grew organically).  :func:`evaluate` is the
one front door::

    from repro import evaluate

    report = evaluate(design, "har_cnn", fidelity="step")
    print(report.metrics.e2e_latency)

It resolves workloads by name, scenarios into environment sets, runs
either fidelity through the exact same code paths the old entry points
used (results are bit-identical to calling them directly), and returns
an :class:`EvaluationReport` carrying the averaged metrics, the
per-environment breakdown, the raw simulation results (step fidelity),
and — when requested with ``obs=True`` — a self-contained observability
snapshot of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple, Union)

from repro.core.scenarios import Scenario
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.environments import environment_by_name
from repro.errors import ConfigurationError
from repro.hardware.checkpoint import CheckpointModel
from repro.obs import state as obs_state
from repro.sim.analytical import BatchAnalyticalModel
from repro.sim.engine import SimulationResult
from repro.sim.evaluator import ChrysalisEvaluator, _average_metrics
from repro.sim.metrics import InferenceMetrics
from repro.workloads import zoo
from repro.workloads.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.injector import FaultInjector

#: The two evaluation fidelities: the step-based simulator (faithful;
#: default) and the closed-form analytical model (fast; what the search
#: inner loop uses).
FIDELITIES = ("step", "analytical")


@dataclass
class EvaluationReport:
    """Everything one :func:`evaluate` call produced."""

    #: The evaluated design (exactly the object passed in).
    design: AuTDesign
    #: Resolved workload name.
    workload: str
    #: ``"step"`` or ``"analytical"``.
    fidelity: str
    #: Metrics averaged over the environments (the paper's protocol:
    #: any infeasible environment makes the whole report infeasible,
    #: and these metrics are then that environment's marker metrics).
    metrics: InferenceMetrics
    #: Per-environment metrics, in evaluation order.  On an infeasible
    #: design this holds the environments evaluated up to and including
    #: the infeasible one.
    by_environment: Dict[str, InferenceMetrics] = field(default_factory=dict)
    #: Step fidelity only: the full per-environment simulation results
    #: (trace, controllers, fast-path counters); ``None`` otherwise.
    simulations: Optional[Dict[str, SimulationResult]] = None
    #: Observability snapshot of this evaluation (``obs=True`` or an
    #: enclosing enabled scope); ``None`` otherwise.
    obs: Optional[Dict[str, Any]] = None

    @property
    def feasible(self) -> bool:
        return self.metrics.feasible


def _resolve_workload(workload: Union[str, Network]) -> Network:
    if isinstance(workload, str):
        return zoo.workload_by_name(workload)
    return workload


def _resolve_environments(
    scenario: Optional[Union[str, Scenario]],
    environments: Optional[Sequence[LightEnvironment]],
) -> tuple:
    if environments is not None:
        if scenario is not None:
            raise ConfigurationError(
                "pass either scenario or environments, not both")
        return tuple(environments)
    if scenario is not None:
        if isinstance(scenario, str):
            # A string resolves through the unified registry, so any
            # environment label works here: scenario names, presets,
            # "scenario:<name>", registered traces.
            return environment_by_name(scenario)
        return tuple(scenario.environments)
    return environment_by_name("paper")


def evaluate(design: AuTDesign,
             workload: Union[str, Network],
             scenario: Optional[Union[str, Scenario]] = None,
             *,
             fidelity: str = "step",
             environments: Optional[Sequence[LightEnvironment]] = None,
             fast_forward: bool = True,
             faults: Optional["FaultInjector"] = None,
             obs: bool = False,
             checkpoint: Optional[CheckpointModel] = None,
             steps_per_tile: int = 16,
             max_steps: Optional[int] = None,
             time_budget_s: Optional[float] = None) -> EvaluationReport:
    """Price one design on one workload — the unified entry point.

    Parameters
    ----------
    design:
        The :class:`AuTDesign` to evaluate.
    workload:
        A :class:`~repro.workloads.network.Network` or a zoo name
        (``"har_cnn"``, ``"kws_dscnn"``, ...).
    scenario:
        Optional SWaP :class:`~repro.core.scenarios.Scenario`, or any
        environment label the registry resolves
        (:func:`repro.environments.environment_by_name`): a scenario
        name, a preset (``"brighter"``), or a registered trace label.
        Mutually exclusive with ``environments``; with neither, the
        paper's brighter/darker pair is used.
    fidelity:
        ``"step"`` (default) runs the step-based intermittent simulator;
        ``"analytical"`` the closed-form Eqs. 1-9 model.  Results are
        bit-identical to the underlying engines called directly.
    fast_forward:
        Step fidelity: enable the cycle-skipping fast path (pass
        ``False`` for a complete per-step event trace).
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`; a fresh
        copy is taken per simulated environment, so repeated calls see
        identical fault sequences.  Step fidelity only.
    obs:
        ``True`` records the evaluation into an isolated observability
        scope and attaches its snapshot as ``report.obs`` (enabling
        observability for the duration of the call if it was off).
    checkpoint, steps_per_tile, max_steps, time_budget_s:
        Forwarded to the underlying evaluator unchanged.
    """
    if fidelity not in FIDELITIES:
        raise ConfigurationError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
    network = _resolve_workload(workload)
    envs = _resolve_environments(scenario, environments)
    evaluator = ChrysalisEvaluator(
        network, envs,
        checkpoint=checkpoint,
        steps_per_tile=steps_per_tile,
        faults=faults,
        max_steps=max_steps,
        time_budget_s=time_budget_s,
        fast_forward=fast_forward,
    )

    def _run() -> EvaluationReport:
        by_env: Dict[str, InferenceMetrics] = {}
        simulations: Optional[Dict[str, SimulationResult]] = (
            {} if fidelity == "step" else None)
        average: Optional[InferenceMetrics] = None
        for environment in envs:
            if fidelity == "step":
                result = evaluator.simulate(design, environment)
                simulations[environment.name] = result
                metrics = result.metrics
            else:
                metrics = evaluator.evaluate(design, environment)
            by_env[environment.name] = metrics
            if not metrics.feasible:
                # The paper's protocol: one failing environment fails
                # the design, and its marker metrics are the verdict.
                average = metrics
                break
        if average is None:
            average = _average_metrics(list(by_env.values()))
        return EvaluationReport(
            design=design,
            workload=network.name,
            fidelity=fidelity,
            metrics=average,
            by_environment=by_env,
            simulations=simulations,
        )

    enabled_here = False
    if obs and not obs_state.OBS.enabled:
        obs_state.enable(profile=True)
        enabled_here = True
    try:
        if obs_state.OBS.enabled:
            with obs_state.run_scope("api.evaluate", workload=network.name,
                                     fidelity=fidelity) as scope:
                report = _run()
            report.obs = scope.snapshot()
        else:
            report = _run()
    finally:
        if enabled_here:
            # Leave no trace: the caller never turned observability on,
            # so drop the residue the scope merged into the globals.
            obs_state.disable()
            obs_state.reset()
    return report


def evaluate_batch(designs: Sequence[AuTDesign],
                   workload: Union[str, Network],
                   scenario: Optional[Union[str, Scenario]] = None,
                   *,
                   environments: Optional[Sequence[LightEnvironment]] = None,
                   checkpoint: Optional[CheckpointModel] = None,
                   obs: bool = False) -> List[EvaluationReport]:
    """Price many designs on one workload in one vectorized sweep.

    The batched counterpart of :func:`evaluate` at analytical fidelity:
    designs sharing an accelerator configuration are priced together
    (hardware built once, per-layer costs batched through numpy via
    :class:`~repro.sim.analytical.BatchAnalyticalModel`), so a whole GA
    population or Pareto front costs a handful of array sweeps instead
    of ``N`` scalar evaluations.

    Every report is **bit-identical** to ``evaluate(design, workload,
    fidelity="analytical", ...)`` for the same design — same averaged
    metrics, same per-environment breakdown (environments up to and
    including the first infeasible one), same infeasibility verdicts.
    The step simulator has no batched form; asking for it is a
    :class:`ConfigurationError` at :func:`evaluate`'s door, and this
    function simply does not take a fidelity.

    Returns one :class:`EvaluationReport` per design, in order; an
    empty design list returns an empty list.
    """
    designs = list(designs)
    network = _resolve_workload(workload)
    envs = _resolve_environments(scenario, environments)
    if not designs:
        return []

    def _run() -> List[EvaluationReport]:
        metrics_by_env = [
            BatchAnalyticalModel(network, environment,
                                 checkpoint).evaluate_many(designs)
            for environment in envs
        ]
        reports: List[EvaluationReport] = []
        for index, design in enumerate(designs):
            by_env: Dict[str, InferenceMetrics] = {}
            average: Optional[InferenceMetrics] = None
            for environment, env_metrics in zip(envs, metrics_by_env):
                metrics = env_metrics[index]
                by_env[environment.name] = metrics
                if not metrics.feasible:
                    average = metrics
                    break
            if average is None:
                average = _average_metrics(list(by_env.values()))
            reports.append(EvaluationReport(
                design=design,
                workload=network.name,
                fidelity="analytical",
                metrics=average,
                by_environment=by_env,
                simulations=None,
            ))
        return reports

    enabled_here = False
    if obs and not obs_state.OBS.enabled:
        obs_state.enable(profile=True)
        enabled_here = True
    try:
        if obs_state.OBS.enabled:
            with obs_state.run_scope("api.evaluate_batch",
                                     workload=network.name,
                                     designs=len(designs)) as scope:
                reports = _run()
            snapshot = scope.snapshot()
            for report in reports:
                report.obs = snapshot
        else:
            reports = _run()
    finally:
        if enabled_here:
            obs_state.disable()
            obs_state.reset()
    return reports


@dataclass(frozen=True)
class EvalRequest:
    """One entry of a heterogeneous :func:`evaluate_many` batch.

    The batched counterpart of one :func:`evaluate` call's arguments:
    ``workload`` accepts a zoo name or a :class:`Network`, and
    ``scenario`` / ``environments`` follow the same mutually-exclusive
    resolution rules (neither means the paper's brighter/darker pair).
    """

    design: AuTDesign
    workload: Union[str, Network]
    scenario: Optional[Union[str, Scenario]] = None
    environments: Optional[Tuple[LightEnvironment, ...]] = None
    checkpoint: Optional[CheckpointModel] = None


def evaluate_many(requests: Sequence[EvalRequest],
                  *, obs: bool = False) -> List[EvaluationReport]:
    """Price a heterogeneous request batch at analytical fidelity.

    Where :func:`evaluate_batch` takes many designs against *one*
    workload/environment context, this takes arbitrary mixed requests —
    different workloads, scenarios, checkpoint models — and partitions
    them into homogeneous groups, pricing each group through one
    vectorized :func:`evaluate_batch` sweep.  Results come back in
    request order and are bit-identical to calling
    ``evaluate(fidelity="analytical")`` per request.

    This is the pricing engine behind the evaluation service's
    micro-batcher (:mod:`repro.serve`): whatever mix of requests a
    flush drains, each compatibility group costs one sweep.
    """
    requests = list(requests)
    if not requests:
        return []
    resolved = []
    groups: Dict[tuple, List[int]] = {}
    for index, request in enumerate(requests):
        network = _resolve_workload(request.workload)
        envs = _resolve_environments(request.scenario, request.environments)
        resolved.append((network, envs, request.checkpoint))
        groups.setdefault((network, envs, request.checkpoint),
                          []).append(index)

    def _run() -> List[Optional[EvaluationReport]]:
        reports: List[Optional[EvaluationReport]] = [None] * len(requests)
        for (network, envs, checkpoint), indices in groups.items():
            batch = evaluate_batch(
                [requests[i].design for i in indices], network,
                environments=envs, checkpoint=checkpoint)
            for i, report in zip(indices, batch):
                reports[i] = report
        return reports

    enabled_here = False
    if obs and not obs_state.OBS.enabled:
        obs_state.enable(profile=True)
        enabled_here = True
    try:
        if obs_state.OBS.enabled:
            with obs_state.run_scope("api.evaluate_many",
                                     requests=len(requests),
                                     groups=len(groups)) as scope:
                reports = _run()
            snapshot = scope.snapshot()
            for report in reports:
                report.obs = snapshot
        else:
            reports = _run()
    finally:
        if enabled_here:
            obs_state.disable()
            obs_state.reset()
    return reports


def serve(**config_knobs: Any):
    """Build the always-on evaluation service (front door for traffic).

    Returns an unstarted
    :class:`~repro.serve.service.EvaluationService`; drive it as an
    async context manager::

        import asyncio
        from repro.api import serve

        async def main():
            async with serve(max_wait_ms=2.0) as service:
                report = await service.submit(design, "har")
                print(report.metrics.e2e_latency)

        asyncio.run(main())

    Keyword arguments are :class:`~repro.serve.service.ServeConfig`
    fields (``max_batch_size``, ``max_wait_ms``, ``max_queue``,
    ``default_deadline_s``, ``drain_timeout_s``).  Identical in-flight
    requests coalesce onto one evaluation, analytical requests
    micro-batch through :func:`evaluate_many`'s vectorized sweeps, and
    responses stay bit-identical to :func:`evaluate` — see
    ``docs/SERVING.md``.
    """
    # Imported lazily: repro.serve imports this module's evaluators.
    from repro.serve.service import EvaluationService, ServeConfig

    return EvaluationService(ServeConfig(**config_knobs))


__all__ = ["FIDELITIES", "EvalRequest", "EvaluationReport", "evaluate",
           "evaluate_batch", "evaluate_many", "serve"]
