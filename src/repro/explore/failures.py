"""Structured per-candidate failure records for hardened searches.

A design-space search evaluates thousands of machine-generated
candidates; some of them are simply broken (unmappable tilings,
impossible simulations, runaway step counts).  A broken *candidate*
must never kill the *search*: the hardened explorer absorbs the error,
penalizes the candidate's fitness, and appends a :class:`FailureRecord`
here so the run's :class:`FailureLog` can answer "what failed, why, and
what did it cost" after the fact — the AutoDNNchip/AgentDSE lesson that
DSE predictors are only trustworthy when candidate failures are
reported rather than fatal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping


@dataclass(frozen=True)
class FailureRecord:
    """One absorbed candidate failure."""

    #: Human-readable identification of the candidate (genome knobs).
    candidate: str
    #: Error family — the exception class name (``MappingError``, ...).
    family: str
    #: The exception message.
    message: str
    #: Fitness assigned in place of a real score (``inf`` = discarded).
    penalty: float
    #: Which search stage absorbed it (``sw-lowering``, ``hw-fitness``...).
    stage: str

    def render(self) -> str:
        return (f"[{self.stage}] {self.family}: {self.message} "
                f"(candidate {self.candidate}, penalty {self.penalty:g})")


def describe_genome(genome: Mapping[str, object]) -> str:
    """Stable one-line rendering of a genome for failure records."""
    parts = []
    for name in sorted(genome):
        value = genome[name]
        if isinstance(value, float):
            parts.append(f"{name}={value:.6g}")
        else:
            parts.append(f"{name}={getattr(value, 'value', value)}")
    return " ".join(parts)


@dataclass
class FailureLog:
    """Append-only log of every failure a search absorbed."""

    records: List[FailureRecord] = field(default_factory=list)

    def record(self, candidate: str, error: BaseException,
               penalty: float, stage: str) -> FailureRecord:
        entry = FailureRecord(
            candidate=candidate,
            family=type(error).__name__,
            message=str(error),
            penalty=penalty,
            stage=stage,
        )
        self.records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self.records)

    def by_family(self) -> Dict[str, int]:
        """Failure counts keyed by error family, most frequent first."""
        counts = Counter(record.family for record in self.records)
        return dict(counts.most_common())

    def render(self, limit: int | None = 10) -> str:
        """Readable summary: family histogram plus the first records."""
        if not self.records:
            return "no candidate failures absorbed"
        lines = [
            f"{len(self.records)} candidate failure(s) absorbed: "
            + ", ".join(f"{family} x{count}"
                        for family, count in self.by_family().items())
        ]
        shown = self.records if limit is None else self.records[:limit]
        lines += [f"  {record.render()}" for record in shown]
        if limit is not None and len(self.records) > limit:
            lines.append(f"  ... {len(self.records) - limit} more")
        return "\n".join(lines)
