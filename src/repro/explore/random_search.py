"""Random search — the simplest HW-level strategy, used as an ablation
baseline against the genetic algorithm (DESIGN.md §7)."""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.errors import SearchError
from repro.explore.ga import Fitness, GAHistory
from repro.explore.space import DesignSpace, Genome


class RandomSearch:
    """Uniformly samples the space and keeps the best genome."""

    def __init__(self, space: DesignSpace, fitness: Fitness,
                 budget: int = 160, seed: int = 0) -> None:
        if budget < 1:
            raise SearchError("budget must be at least 1")
        self.space = space
        self.fitness = fitness
        self.budget = budget
        self.rng = random.Random(seed)
        self.history = GAHistory()

    def run(self) -> Tuple[Genome, float]:
        best: Optional[Genome] = None
        best_fitness = math.inf
        for _ in range(self.budget):
            genome = self.space.sample(self.rng)
            fitness = self.fitness(genome)
            self.history.evaluations += 1
            if fitness < best_fitness:
                best, best_fitness = genome, fitness
            self.history.best.append(best_fitness)
            self.history.mean.append(fitness if math.isfinite(fitness)
                                     else math.inf)
        if best is None or math.isinf(best_fitness):
            raise SearchError(
                "no feasible genome found within the random-search budget"
            )
        return best, best_fitness
