"""Pareto-front extraction for (latency, size) tradeoff plots (Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point in objective space.

    ``values`` are the coordinates being minimised (e.g. (solar-panel
    cm^2, latency s)); ``payload`` carries the design that produced them.
    """

    values: Tuple[float, ...]
    payload: Any = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good everywhere and strictly
        better somewhere (minimisation)."""
        if len(self.values) != len(other.values):
            raise ValueError("points have different dimensionality")
        at_least_as_good = all(a <= b for a, b in zip(self.values, other.values))
        strictly_better = any(a < b for a, b in zip(self.values, other.values))
        return at_least_as_good and strictly_better


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by the first coordinate.

    O(n log n) sweep for the common 2-D case, O(n^2) fallback otherwise.
    """
    if not points:
        return []
    dim = len(points[0].values)
    if dim == 2:
        return _front_2d(points)
    front = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points):
            front.append(candidate)
    return sorted(front, key=lambda p: p.values)


def _front_2d(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    ordered = sorted(points, key=lambda p: (p.values[0], p.values[1]))
    front: List[ParetoPoint] = []
    best_second = float("inf")
    for point in ordered:
        if point.values[1] < best_second:
            front.append(point)
            best_second = point.values[1]
    return front


def hypervolume_2d(points: Sequence[ParetoPoint],
                   reference: Tuple[float, float]) -> float:
    """Dominated hypervolume of a 2-D minimisation front.

    The area between the front and the ``reference`` (worst-corner)
    point — the standard scalar quality measure for Pareto fronts.
    Points beyond the reference contribute nothing.
    """
    front = pareto_front([p for p in points
                          if p.values[0] < reference[0]
                          and p.values[1] < reference[1]])
    if not front:
        return 0.0
    area = 0.0
    previous_y = reference[1]
    for point in front:  # sorted by x, y strictly decreasing
        width = reference[0] - point.values[0]
        height = previous_y - point.values[1]
        area += width * height
        previous_y = point.values[1]
    return area


def hypervolume_3d(points: Sequence[ParetoPoint],
                   reference: Tuple[float, float, float]) -> float:
    """Exact dominated hypervolume of a 3-D minimisation front.

    Slab sweep: sort the (strictly inside-reference) points by the third
    coordinate; between consecutive z-levels the dominated region's
    cross-section is constant, so the volume is the 2-D hypervolume of
    the points introduced so far times the slab thickness.  O(n^2 log n)
    — exact, and plenty for report-sized fronts.
    """
    inside = [p for p in points
              if all(v < r for v, r in zip(p.values, reference))]
    if not inside:
        return 0.0
    ordered = sorted(inside, key=lambda p: p.values[2])
    volume = 0.0
    seen: List[ParetoPoint] = []
    for index, point in enumerate(ordered):
        seen.append(ParetoPoint(values=point.values[:2]))
        z_low = point.values[2]
        z_high = (ordered[index + 1].values[2]
                  if index + 1 < len(ordered) else reference[2])
        if z_high > z_low:
            volume += (z_high - z_low) * hypervolume_2d(
                seen, (reference[0], reference[1]))
    return volume


def hypervolume(points: Sequence[ParetoPoint],
                reference: Sequence[float]) -> float:
    """Dominated hypervolume, dispatching on the reference dimension.

    Exact for 2-D and 3-D minimisation fronts; higher dimensions raise
    (no approximation is silently substituted).
    """
    reference = tuple(reference)
    if len(reference) == 2:
        return hypervolume_2d(points, reference)
    if len(reference) == 3:
        return hypervolume_3d(points, reference)
    raise ValueError(
        f"exact hypervolume supports 2-D and 3-D fronts, got "
        f"{len(reference)}-D reference")
