"""Bi-level HW/SW search — the CHRYSALIS Explorer of §III-C.

The HW-level optimizer (a genetic algorithm by default) proposes a
hardware genome; for each proposal the SW-level optimizer
(:class:`~repro.explore.mapper_search.MappingOptimizer`) finds the best
per-layer mappings achievable on that hardware; the resulting design is
priced by the evaluator under the paper's two-environment protocol and
scored by the chosen objective.  The HW-level optimizer then continues
from the returned score.

Every evaluated point is retained as a :class:`ParetoPoint` of
(panel area, latency) so the Fig. 6 tradeoff scatter can be regenerated.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import (
    DesignSpaceError,
    EvaluationTimeout,
    InfeasibleDesignError,
    MappingError,
    SearchError,
    SimulationError,
)
from repro.explore.failures import FailureLog, describe_genome
from repro.explore.ga import GAConfig, GAHistory, GeneticAlgorithm
from repro.explore.mapper_search import MappingOptimizer
from repro.explore.objectives import Objective
from repro.explore.pareto import ParetoPoint
from repro.explore.space import DesignSpace, Genome
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network

logger = logging.getLogger(__name__)

#: Error families absorbed per candidate: anything a machine-generated
#: genome can plausibly trip over.  Configuration mistakes made by the
#: *caller* (bad objective, bad GA config) still raise.
_CANDIDATE_ERRORS = (
    MappingError,
    SimulationError,
    InfeasibleDesignError,
    DesignSpaceError,
    EvaluationTimeout,
)


@dataclass
class SearchResult:
    """Outcome of one bi-level search."""

    design: AuTDesign
    score: float
    average: InferenceMetrics
    metrics_by_env: Dict[str, InferenceMetrics]
    history: GAHistory
    evaluated: List[ParetoPoint] = field(default_factory=list)
    #: Every candidate failure the search absorbed instead of crashing.
    failures: FailureLog = field(default_factory=FailureLog)

    def summary(self) -> str:
        lines = [
            f"best design : {self.design.describe()}",
            f"score       : {self.score:.4g}",
            f"avg latency : {self.average.e2e_latency:.4g} s",
            f"avg eff.    : {self.average.system_efficiency:.3f}",
            f"evaluations : {self.history.evaluations}",
            f"absorbed    : {len(self.failures)} candidate failure(s)",
        ]
        return "\n".join(lines)


class BilevelExplorer:
    """Searches a design space for the best AuT architecture."""

    def __init__(self, network: Network, space: DesignSpace,
                 objective: Objective,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 ga_config: Optional[GAConfig] = None,
                 checkpoint: Optional[CheckpointModel] = None,
                 candidate_time_budget_s: Optional[float] = None) -> None:
        self.network = network
        self.space = space
        self.objective = objective
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        self.ga_config = ga_config or GAConfig()
        self.checkpoint = checkpoint
        #: Wall-clock budget of one candidate evaluation; an over-budget
        #: candidate is penalized as an :class:`EvaluationTimeout`.
        self.candidate_time_budget_s = candidate_time_budget_s
        self.mapper = MappingOptimizer(network, self.environments,
                                       checkpoint=checkpoint)
        self.evaluator = ChrysalisEvaluator(network, self.environments,
                                            checkpoint=checkpoint)
        self.evaluated: List[ParetoPoint] = []
        self.failures = FailureLog()
        self._design_cache: Dict[int, AuTDesign] = {}

    # -- fitness ---------------------------------------------------------------

    def evaluate_genome(self, genome: Genome) -> float:
        """Full bi-level fitness of one HW genome (lower is better).

        Candidate-level failures (unmappable tilings, impossible
        simulations, exhausted step budgets, ...) never propagate: they
        become an infinite-fitness penalty plus a structured record in
        :attr:`failures`, so one broken genome cannot abort a long run.
        """
        started = time.monotonic()
        try:
            design = self.lower_genome(genome)
            if design is None:
                return math.inf
            metrics = self.evaluator.evaluate_average(design)
        except _CANDIDATE_ERRORS as error:
            self.failures.record(
                candidate=describe_genome(genome), error=error,
                penalty=math.inf, stage="sw-lowering",
            )
            logger.warning("absorbed %s for candidate %s: %s",
                           type(error).__name__, describe_genome(genome),
                           error)
            return math.inf
        if (self.candidate_time_budget_s is not None
                and time.monotonic() - started
                > self.candidate_time_budget_s):
            timeout = EvaluationTimeout(
                f"candidate evaluation exceeded its "
                f"{self.candidate_time_budget_s:.3g} s budget"
            )
            self.failures.record(
                candidate=describe_genome(genome), error=timeout,
                penalty=math.inf, stage="hw-fitness",
            )
            return math.inf
        score = self.objective.score(design, metrics)
        if metrics.feasible and math.isfinite(metrics.e2e_latency):
            latency = metrics.sustained_period or metrics.e2e_latency
            self.evaluated.append(ParetoPoint(
                values=(design.energy.panel_area_cm2, latency),
                payload=design,
            ))
        if math.isfinite(score):
            self._design_cache[id(design.mappings)] = design
        return score

    def lower_genome(self, genome: Genome) -> Optional[AuTDesign]:
        """Run the SW-level search for a genome; ``None`` if unmappable."""
        seed_mappings = tuple(
            LayerMapping.default(layer) for layer in self.network
        )
        seeded = self.space.to_design(genome, seed_mappings)
        mappings = self.mapper.optimize(seeded.energy, seeded.inference)
        if mappings is None:
            return None
        return self.space.to_design(genome, mappings)

    # -- search ------------------------------------------------------------------

    def _seed_genomes(self) -> List[Genome]:
        """Space anchors plus objective-aware variants.

        Under a panel-size cap the best designs sit at the cap (a bigger
        panel is never slower), so seed copies pinned there.
        """
        seeds = self.space.seed_genomes()
        cap = self.objective.sp_constraint_cm2
        if cap is not None and "panel_area_cm2" in self.space.names:
            spec = self.space.spec("panel_area_cm2")
            pinned = min(max(cap, spec.low), spec.high)
            seeds += [dict(seed, panel_area_cm2=pinned)
                      for seed in seeds[:2]]
        return seeds

    def run(self) -> SearchResult:
        algorithm = GeneticAlgorithm(self.space, self.evaluate_genome,
                                     self.ga_config,
                                     seeds=self._seed_genomes(),
                                     failure_log=self.failures)
        try:
            best_genome, best_score = algorithm.run()
        except SearchError:
            detail = ""
            if self.failures:
                families = ", ".join(
                    f"{family} x{count}"
                    for family, count in self.failures.by_family().items())
                detail = (f" ({len(self.failures)} candidate failure(s) "
                          f"absorbed: {families})")
            raise SearchError(
                f"bi-level search found no feasible design for "
                f"{self.network.name!r} under "
                f"{self.objective.kind.value!r}{detail}"
            ) from None
        if not self.objective.is_compliant_score(best_score):
            raise SearchError(
                f"bi-level search found no design satisfying the "
                f"{self.objective.kind.value!r} constraint for "
                f"{self.network.name!r} (best score {best_score:.3g} is in "
                "the penalty band)"
            )
        design = self.lower_genome(best_genome)
        if design is None:
            raise SearchError("winning genome failed to re-lower")
        logger.info(
            "bi-level search for %s/%s: best score %.6g after %d HW "
            "evaluations (%s)",
            self.network.name, self.objective.kind.value, best_score,
            algorithm.history.evaluations, design.describe(),
        )
        metrics_by_env = {
            env.name: self.evaluator.evaluate(design, env)
            for env in self.environments
        }
        average = self.evaluator.evaluate_average(design)
        return SearchResult(
            design=design,
            score=best_score,
            average=average,
            metrics_by_env=metrics_by_env,
            history=algorithm.history,
            evaluated=self.evaluated,
            failures=self.failures,
        )
