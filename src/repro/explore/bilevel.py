"""Bi-level HW/SW search — the CHRYSALIS Explorer of §III-C.

The HW-level optimizer (a genetic algorithm by default) proposes a
hardware genome; for each proposal the SW-level optimizer
(:class:`~repro.explore.mapper_search.MappingOptimizer`) finds the best
per-layer mappings achievable on that hardware; the resulting design is
priced by the evaluator under the paper's two-environment protocol and
scored by the chosen objective.  The HW-level optimizer then continues
from the returned score.

Every evaluated point is retained as a :class:`ParetoPoint` of
(panel area, latency) so the Fig. 6 tradeoff scatter can be regenerated.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.cost_model import (layer_cost_cache_stats,
                                       merge_layer_cost_entries)
from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import (
    ChrysalisError,
    DesignSpaceError,
    EvaluationTimeout,
    InfeasibleDesignError,
    MappingError,
    SearchError,
    SimulationError,
)
from repro.explore.failures import FailureLog, FailureRecord, describe_genome
from repro.explore.ga import GAConfig, GAHistory, GeneticAlgorithm, genome_key
from repro.explore.mapper_search import MappingOptimizer, merge_mapper_entries
from repro.explore.objectives import Objective
from repro.explore.pareto import ParetoPoint
from repro.explore.space import DesignSpace, Genome
from repro.explore.stats import GenomeOutcome, SearchStats
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import merge_snapshot, span
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network

logger = logging.getLogger(__name__)

#: Error families absorbed per candidate: anything a machine-generated
#: genome can plausibly trip over.  Configuration mistakes made by the
#: *caller* (bad objective, bad GA config) still raise.
_CANDIDATE_ERRORS = (
    MappingError,
    SimulationError,
    InfeasibleDesignError,
    DesignSpaceError,
    EvaluationTimeout,
)


@dataclass
class SearchResult:
    """Outcome of one bi-level search."""

    design: AuTDesign
    score: float
    average: InferenceMetrics
    metrics_by_env: Dict[str, InferenceMetrics]
    history: GAHistory
    evaluated: List[ParetoPoint] = field(default_factory=list)
    #: Every candidate failure the search absorbed instead of crashing.
    failures: FailureLog = field(default_factory=FailureLog)
    #: Throughput / cache observability of the run.
    stats: SearchStats = field(default_factory=SearchStats)

    def summary(self) -> str:
        lines = [
            f"best design : {self.design.describe()}",
            f"score       : {self.score:.4g}",
            f"avg latency : {self.average.e2e_latency:.4g} s",
            f"avg eff.    : {self.average.system_efficiency:.3f}",
            f"evaluations : {self.history.evaluations}",
            f"absorbed    : {len(self.failures)} candidate failure(s)",
        ]
        lines.append(self.stats.render())
        return "\n".join(lines)


class BilevelExplorer:
    """Searches a design space for the best AuT architecture."""

    def __init__(self, network: Network, space: DesignSpace,
                 objective: Objective,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 ga_config: Optional[GAConfig] = None,
                 checkpoint: Optional[CheckpointModel] = None,
                 candidate_time_budget_s: Optional[float] = None) -> None:
        self.network = network
        self.space = space
        self.objective = objective
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        self.ga_config = ga_config or GAConfig()
        self.checkpoint = checkpoint
        #: Wall-clock budget of one candidate evaluation; an over-budget
        #: candidate is penalized as an :class:`EvaluationTimeout`.
        self.candidate_time_budget_s = candidate_time_budget_s
        self.mapper = MappingOptimizer(network, self.environments,
                                       checkpoint=checkpoint)
        self.evaluator = ChrysalisEvaluator(network, self.environments,
                                            checkpoint=checkpoint)
        self.evaluated: List[ParetoPoint] = []
        self.failures = FailureLog()
        #: Observability of the most recent (or in-flight) run.
        self.stats = SearchStats()
        #: Lowered designs keyed by :func:`genome_key` — lets ``run()``
        #: reuse the winner instead of re-running the SW-level search
        #: (the pre-v1.1 cache was keyed by ``id(design.mappings)`` and
        #: never read).
        self._design_cache: Dict[tuple, AuTDesign] = {}
        # Whole SW-level search results live in the *process-wide*
        # mapper memo (see repro.explore.mapper_search._MapperMemo),
        # probed through self.mapper.  PR 2 kept an equivalent dict per
        # explorer, which is why the bench never saw a mapper hit: every
        # run builds a fresh explorer, so the memo died with it.
        self._mapper_hits = 0
        self._mapper_misses = 0
        self._design_cache_hits = 0

    # -- fitness ---------------------------------------------------------------

    def evaluate_genome(self, genome: Genome) -> float:
        """Full bi-level fitness of one HW genome (lower is better).

        Candidate-level failures (unmappable tilings, impossible
        simulations, exhausted step budgets, ...) never propagate: they
        become an infinite-fitness penalty plus a structured record in
        :attr:`failures`, so one broken genome cannot abort a long run.
        """
        return self.apply_outcome(genome, self.compute_outcome(genome))

    def compute_outcome(self, genome: Genome) -> GenomeOutcome:
        """Evaluate one genome without touching shared search state.

        This is the function worker processes run: every side effect the
        serial path would have applied (failure records, Pareto points,
        cache warming) is returned as data for :meth:`apply_outcome` to
        replay in deterministic order.
        """
        with span("search.genome"):
            return self._compute_outcome(genome)

    def _compute_outcome(self, genome: Genome) -> GenomeOutcome:
        started = time.monotonic()
        layer_hits0, layer_misses0 = layer_cost_cache_stats()
        mapper_hits0, mapper_misses0 = self._mapper_hits, self._mapper_misses
        score = math.inf
        design: Optional[AuTDesign] = None
        point: Optional[Tuple[float, float]] = None
        failure: Optional[FailureRecord] = None
        try:
            design = self.lower_genome(genome)
            if design is not None:
                metrics = self.evaluator.evaluate_average(design)
        except _CANDIDATE_ERRORS as error:
            failure = self._failure(genome, error, stage="sw-lowering")
            design = None
        except ChrysalisError as error:
            # Non-candidate library errors were historically absorbed by
            # the GA layer; absorbing them here keeps the serial and
            # parallel paths byte-identical.
            failure = self._failure(genome, error, stage="hw-fitness")
            design = None
        else:
            if design is not None:
                elapsed = time.monotonic() - started
                if (self.candidate_time_budget_s is not None
                        and elapsed > self.candidate_time_budget_s):
                    timeout = EvaluationTimeout(
                        f"candidate evaluation exceeded its "
                        f"{self.candidate_time_budget_s:.3g} s budget"
                    )
                    failure = self._failure(genome, timeout,
                                            stage="hw-fitness")
                    design = None
                else:
                    score = self.objective.score(design, metrics)
                    if (metrics.feasible
                            and math.isfinite(metrics.e2e_latency)):
                        latency = (metrics.sustained_period
                                   or metrics.e2e_latency)
                        point = (design.energy.panel_area_cm2, latency)
        layer_hits1, layer_misses1 = layer_cost_cache_stats()
        return GenomeOutcome(
            score=score,
            design=design if math.isfinite(score) else None,
            point=point,
            failure=failure,
            eval_seconds=time.monotonic() - started,
            mapper_hits=self._mapper_hits - mapper_hits0,
            mapper_misses=self._mapper_misses - mapper_misses0,
            layer_cost_hits=layer_hits1 - layer_hits0,
            layer_cost_misses=layer_misses1 - layer_misses0,
        )

    def apply_outcome(self, genome: Genome, outcome: GenomeOutcome) -> float:
        """Fold one evaluation's side effects back into the search."""
        if outcome.obs is not None:
            # Merge-on-return: graft the worker's spans under the
            # currently-open span (ga.generation) and add its metrics.
            merge_snapshot(outcome.obs)
        self.stats.hw_evaluations += 1
        self.stats.eval_seconds += outcome.eval_seconds
        mapper_hits = outcome.mapper_hits
        mapper_misses = outcome.mapper_misses
        layer_hits = outcome.layer_cost_hits
        layer_misses = outcome.layer_cost_misses
        if outcome.layer_cost_entries:
            # Merge the worker's cache journal.  Entries the parent
            # already held were worker-local misses that a serial run
            # would have scored as hits; because outcomes are applied in
            # submission order, reclassifying them pins the parallel
            # hit/miss totals to the serial run's, key for key.
            reclassified = merge_layer_cost_entries(outcome.layer_cost_entries)
            layer_hits += reclassified
            layer_misses -= reclassified
        if outcome.mapper_entries:
            reclassified = merge_mapper_entries(outcome.mapper_entries)
            mapper_hits += reclassified
            mapper_misses -= reclassified
        self.stats.mapper_hits += mapper_hits
        self.stats.mapper_misses += mapper_misses
        self.stats.layer_cost_hits += layer_hits
        self.stats.layer_cost_misses += layer_misses
        if outcome.failure is not None:
            self.failures.records.append(outcome.failure)
            logger.warning("absorbed %s for candidate %s: %s",
                           outcome.failure.family, outcome.failure.candidate,
                           outcome.failure.message)
        if outcome.design is not None:
            self._design_cache[genome_key(genome)] = outcome.design
            # Warm the projection memo too (insert-if-absent): belt and
            # braces for outcomes whose journal was unavailable.
            self.mapper.memo_fill(
                (outcome.design.energy, outcome.design.inference),
                outcome.design.mappings,
            )
        if outcome.point is not None:
            self.evaluated.append(ParetoPoint(
                values=outcome.point, payload=outcome.design,
            ))
        return outcome.score

    def _failure(self, genome: Genome, error: BaseException,
                 stage: str) -> FailureRecord:
        return FailureRecord(
            candidate=describe_genome(genome),
            family=type(error).__name__,
            message=str(error),
            penalty=math.inf,
            stage=stage,
        )

    def lower_genome(self, genome: Genome) -> Optional[AuTDesign]:
        """Run the SW-level search for a genome; ``None`` if unmappable.

        Memoized on the genome's canonical ``(energy, inference)``
        projection: two genomes that lower to the same hardware reuse
        the whole mapper result.
        """
        seed_mappings = tuple(
            LayerMapping.default(layer) for layer in self.network
        )
        seeded = self.space.to_design(genome, seed_mappings)
        key = (seeded.energy, seeded.inference)
        hit, mappings = self.mapper.memo_probe(key)
        if hit:
            self._mapper_hits += 1
        else:
            self._mapper_misses += 1
            mappings = self.mapper.optimize(seeded.energy, seeded.inference)
            self.mapper.memo_fill(key, mappings)
        if mappings is None:
            return None
        return self.space.to_design(genome, mappings)

    # -- search ------------------------------------------------------------------

    def _seed_genomes(self) -> List[Genome]:
        """Space anchors plus objective-aware variants.

        Under a panel-size cap the best designs sit at the cap (a bigger
        panel is never slower), so seed copies pinned there.
        """
        seeds = self.space.seed_genomes()
        cap = self.objective.sp_constraint_cm2
        if cap is not None and "panel_area_cm2" in self.space.names:
            spec = self.space.spec("panel_area_cm2")
            pinned = min(max(cap, spec.low), spec.high)
            seeds += [dict(seed, panel_area_cm2=pinned)
                      for seed in seeds[:2]]
        return seeds

    def _reset_run_state(self) -> None:
        """Fresh per-run accumulators (results, failures, stats).

        A reused explorer must not leak one run's Pareto points or
        failure records into the next ``run()``'s :class:`SearchResult`.
        The memoization caches survive on purpose: they are keyed by
        value and only ever return what a cold evaluation would.
        """
        self.evaluated = []
        self.failures = FailureLog()
        self.stats = SearchStats(workers=self.ga_config.workers)

    def run(self) -> SearchResult:
        with span("search.run", network=self.network.name,
                  objective=self.objective.kind.value):
            return self._run_search()

    def _build_batch_evaluator(self):
        """The batch evaluator this run hands the GA (``None`` = serial).

        Subclasses override this to interpose on generation evaluation
        (the surrogate-guided explorer wraps the evaluator returned
        here); the default selection is workers > 1 -> process pool,
        ``batched`` -> vectorized sweeps, else serial.
        """
        if self.ga_config.workers > 1:
            # Imported lazily: parallel.py imports this module.
            from repro.explore.parallel import ParallelGenomeEvaluator

            return ParallelGenomeEvaluator(self,
                                           workers=self.ga_config.workers)
        if self.ga_config.batched:
            # Imported lazily: batch_eval.py imports this module.
            from repro.explore.batch_eval import VectorizedGenomeEvaluator

            return VectorizedGenomeEvaluator(self)
        return None

    def _finalize_best(self, best_genome: Genome,
                       best_score: float) -> Tuple[Genome, float]:
        """Last chance to adjust the GA's winner before final pricing.

        The base explorer prices every candidate with the oracle, so the
        GA's answer already is the answer.  Subclasses that score some
        candidates with estimates override this to guarantee the
        *reported* winner was oracle-priced.
        """
        return best_genome, best_score

    def _run_search(self) -> SearchResult:
        self._reset_run_state()
        run_started = time.monotonic()
        batch_evaluator = self._build_batch_evaluator()
        algorithm = GeneticAlgorithm(self.space, self.evaluate_genome,
                                     self.ga_config,
                                     seeds=self._seed_genomes(),
                                     failure_log=self.failures,
                                     batch_evaluator=batch_evaluator)
        try:
            best_genome, best_score = algorithm.run()
        except SearchError:
            detail = ""
            if self.failures:
                families = ", ".join(
                    f"{family} x{count}"
                    for family, count in self.failures.by_family().items())
                detail = (f" ({len(self.failures)} candidate failure(s) "
                          f"absorbed: {families})")
            raise SearchError(
                f"bi-level search found no feasible design for "
                f"{self.network.name!r} under "
                f"{self.objective.kind.value!r}{detail}"
            ) from None
        finally:
            if batch_evaluator is not None:
                batch_evaluator.close()
        best_genome, best_score = self._finalize_best(best_genome, best_score)
        if not self.objective.is_compliant_score(best_score):
            raise SearchError(
                f"bi-level search found no design satisfying the "
                f"{self.objective.kind.value!r} constraint for "
                f"{self.network.name!r} (best score {best_score:.3g} is in "
                "the penalty band)"
            )
        design = self._design_cache.get(genome_key(best_genome))
        if design is not None:
            self._design_cache_hits += 1
            self.stats.design_cache_hits += 1
        else:
            design = self.lower_genome(best_genome)
        if design is None:
            raise SearchError("winning genome failed to re-lower")
        logger.info(
            "bi-level search for %s/%s: best score %.6g after %d HW "
            "evaluations (%s)",
            self.network.name, self.objective.kind.value, best_score,
            algorithm.history.evaluations, design.describe(),
        )
        with span("search.final_pricing"):
            metrics_by_env = {
                env.name: self.evaluator.evaluate(design, env)
                for env in self.environments
            }
            average = self.evaluator.evaluate_average(design)
        self.stats.search_seconds = time.monotonic() - run_started
        return SearchResult(
            design=design,
            score=best_score,
            average=average,
            metrics_by_env=metrics_by_env,
            history=algorithm.history,
            evaluated=self.evaluated,
            failures=self.failures,
            stats=self.stats,
        )
