"""Bi-level HW/SW search — the CHRYSALIS Explorer of §III-C.

The HW-level optimizer (a genetic algorithm by default) proposes a
hardware genome; for each proposal the SW-level optimizer
(:class:`~repro.explore.mapper_search.MappingOptimizer`) finds the best
per-layer mappings achievable on that hardware; the resulting design is
priced by the evaluator under the paper's two-environment protocol and
scored by the chosen objective.  The HW-level optimizer then continues
from the returned score.

Every evaluated point is retained as a :class:`ParetoPoint` of
(panel area, latency) so the Fig. 6 tradeoff scatter can be regenerated.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

logger = logging.getLogger(__name__)

from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import SearchError
from repro.explore.ga import GAConfig, GAHistory, GeneticAlgorithm
from repro.explore.mapper_search import MappingOptimizer
from repro.explore.objectives import Objective
from repro.explore.pareto import ParetoPoint
from repro.explore.space import DesignSpace, Genome
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network


@dataclass
class SearchResult:
    """Outcome of one bi-level search."""

    design: AuTDesign
    score: float
    average: InferenceMetrics
    metrics_by_env: Dict[str, InferenceMetrics]
    history: GAHistory
    evaluated: List[ParetoPoint] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"best design : {self.design.describe()}",
            f"score       : {self.score:.4g}",
            f"avg latency : {self.average.e2e_latency:.4g} s",
            f"avg eff.    : {self.average.system_efficiency:.3f}",
            f"evaluations : {self.history.evaluations}",
        ]
        return "\n".join(lines)


class BilevelExplorer:
    """Searches a design space for the best AuT architecture."""

    def __init__(self, network: Network, space: DesignSpace,
                 objective: Objective,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 ga_config: Optional[GAConfig] = None,
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        self.network = network
        self.space = space
        self.objective = objective
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        self.ga_config = ga_config or GAConfig()
        self.checkpoint = checkpoint
        self.mapper = MappingOptimizer(network, self.environments,
                                       checkpoint=checkpoint)
        self.evaluator = ChrysalisEvaluator(network, self.environments,
                                            checkpoint=checkpoint)
        self.evaluated: List[ParetoPoint] = []
        self._design_cache: Dict[int, AuTDesign] = {}

    # -- fitness ---------------------------------------------------------------

    def evaluate_genome(self, genome: Genome) -> float:
        """Full bi-level fitness of one HW genome (lower is better)."""
        design = self.lower_genome(genome)
        if design is None:
            return math.inf
        metrics = self.evaluator.evaluate_average(design)
        score = self.objective.score(design, metrics)
        if metrics.feasible and math.isfinite(metrics.e2e_latency):
            latency = metrics.sustained_period or metrics.e2e_latency
            self.evaluated.append(ParetoPoint(
                values=(design.energy.panel_area_cm2, latency),
                payload=design,
            ))
        if math.isfinite(score):
            self._design_cache[id(design.mappings)] = design
        return score

    def lower_genome(self, genome: Genome) -> Optional[AuTDesign]:
        """Run the SW-level search for a genome; ``None`` if unmappable."""
        seed_mappings = tuple(
            LayerMapping.default(layer) for layer in self.network
        )
        seeded = self.space.to_design(genome, seed_mappings)
        mappings = self.mapper.optimize(seeded.energy, seeded.inference)
        if mappings is None:
            return None
        return self.space.to_design(genome, mappings)

    # -- search ------------------------------------------------------------------

    def _seed_genomes(self) -> List[Genome]:
        """Space anchors plus objective-aware variants.

        Under a panel-size cap the best designs sit at the cap (a bigger
        panel is never slower), so seed copies pinned there.
        """
        seeds = self.space.seed_genomes()
        cap = self.objective.sp_constraint_cm2
        if cap is not None and "panel_area_cm2" in self.space.names:
            spec = self.space.spec("panel_area_cm2")
            pinned = min(max(cap, spec.low), spec.high)
            seeds += [dict(seed, panel_area_cm2=pinned)
                      for seed in seeds[:2]]
        return seeds

    def run(self) -> SearchResult:
        algorithm = GeneticAlgorithm(self.space, self.evaluate_genome,
                                     self.ga_config,
                                     seeds=self._seed_genomes())
        try:
            best_genome, best_score = algorithm.run()
        except SearchError:
            raise SearchError(
                f"bi-level search found no feasible design for "
                f"{self.network.name!r} under {self.objective.kind.value!r}"
            ) from None
        if not self.objective.is_compliant_score(best_score):
            raise SearchError(
                f"bi-level search found no design satisfying the "
                f"{self.objective.kind.value!r} constraint for "
                f"{self.network.name!r} (best score {best_score:.3g} is in "
                "the penalty band)"
            )
        design = self.lower_genome(best_genome)
        if design is None:
            raise SearchError("winning genome failed to re-lower")
        logger.info(
            "bi-level search for %s/%s: best score %.6g after %d HW "
            "evaluations (%s)",
            self.network.name, self.objective.kind.value, best_score,
            algorithm.history.evaluations, design.describe(),
        )
        metrics_by_env = {
            env.name: self.evaluator.evaluate(design, env)
            for env in self.environments
        }
        average = self.evaluator.evaluate_average(design)
        return SearchResult(
            design=design,
            score=best_score,
            average=average,
            metrics_by_env=metrics_by_env,
            history=algorithm.history,
            evaluated=self.evaluated,
        )
