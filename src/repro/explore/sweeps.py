"""Structured parameter sweeps — the Figs. 8/9 methodology as an API.

The paper validates its model by sweeping one energy knob while pinning
the other and reading off the energy breakdown.  :func:`sweep` does
exactly that for any knob the design space knows, re-optimising the
SW-level mapping at every point (as the paper does), and returns rows
ready for tabulation or plotting.

Grid construction goes through the library's single expansion code
path, :func:`repro.campaign.spec.expand_grid` — the same product that
turns a :class:`~repro.campaign.spec.CampaignSpec` into run keys — so
sweeps and campaigns cannot drift apart on cell ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.campaign.spec import expand_grid
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.errors import DesignSpaceError
from repro.explore.mapper_search import MappingOptimizer
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network

#: Knobs sweep() understands, with how they land in the design.
_ENERGY_KNOBS = ("panel_area_cm2", "capacitance_f")
_INFERENCE_KNOBS = ("n_pes", "cache_bytes_per_pe", "clock_scale")


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    value: float
    metrics: Optional[InferenceMetrics]  # None when unmappable
    n_tiles_total: int = 0

    @property
    def feasible(self) -> bool:
        return self.metrics is not None and self.metrics.feasible


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, in input order."""

    knob: str
    points: List[SweepPoint]

    def feasible_points(self) -> List[SweepPoint]:
        return [p for p in self.points if p.feasible]

    def best(self, key=lambda m: m.sustained_period) -> SweepPoint:
        """The feasible point minimising ``key`` (default latency)."""
        candidates = self.feasible_points()
        if not candidates:
            raise DesignSpaceError(f"sweep over {self.knob!r} has no "
                                   "feasible points")
        return min(candidates, key=lambda p: key(p.metrics))

    def render(self) -> str:
        lines = [f"{self.knob:>18}{'latency s':>12}{'energy mJ':>11}"
                 f"{'ckpt mJ':>9}{'eff':>7}{'tiles':>7}"]
        for point in self.points:
            if not point.feasible:
                lines.append(f"{point.value:>18.6g}{'(unavailable)':>12}")
                continue
            m = point.metrics
            lines.append(
                f"{point.value:>18.6g}{m.sustained_period:>12.3f}"
                f"{m.total_energy * 1e3:>11.3f}"
                f"{m.energy.checkpoint * 1e3:>9.4f}"
                f"{m.system_efficiency:>7.3f}{point.n_tiles_total:>7}")
        return "\n".join(lines)


def sweep(network: Network, knob: str, values: Sequence[float],
          base_energy: EnergyDesign, base_inference: InferenceDesign,
          environments: Optional[Sequence[LightEnvironment]] = None,
          checkpoint: Optional[CheckpointModel] = None) -> SweepResult:
    """Sweep one knob, re-optimising the mapping at every point.

    ``knob`` is one of ``panel_area_cm2``, ``capacitance_f`` (energy
    side) or ``n_pes``, ``cache_bytes_per_pe``, ``clock_scale``
    (inference side); the other knobs stay at their ``base_*`` values.
    """
    if knob not in _ENERGY_KNOBS + _INFERENCE_KNOBS:
        raise DesignSpaceError(
            f"unknown sweep knob {knob!r}; expected one of "
            f"{_ENERGY_KNOBS + _INFERENCE_KNOBS}"
        )
    evaluator = ChrysalisEvaluator(network, environments=environments,
                                   checkpoint=checkpoint)
    optimizer = MappingOptimizer(network, environments=environments,
                                 checkpoint=checkpoint)
    points: List[SweepPoint] = []
    for cell in expand_grid({knob: values}):
        value = cell[knob]
        energy, inference = _apply(knob, value, base_energy, base_inference)
        mappings = optimizer.optimize(energy, inference)
        if mappings is None:
            points.append(SweepPoint(value=value, metrics=None))
            continue
        design = AuTDesign(energy=energy, inference=inference,
                           mappings=mappings)
        metrics = evaluator.evaluate_average(design)
        n_tiles = sum(m.effective_n_tiles(layer)
                      for m, layer in zip(mappings, network))
        points.append(SweepPoint(value=value, metrics=metrics,
                                 n_tiles_total=n_tiles))
    return SweepResult(knob=knob, points=points)


def _apply(knob: str, value: float, energy: EnergyDesign,
           inference: InferenceDesign):
    from dataclasses import replace

    if knob in _ENERGY_KNOBS:
        return replace(energy, **{knob: value}), inference
    if knob in ("n_pes", "cache_bytes_per_pe"):
        return energy, replace(inference, **{knob: int(value)})
    return energy, replace(inference, **{knob: float(value)})


def grid_sweep(network: Network, knob_a: str, values_a: Sequence[float],
               knob_b: str, values_b: Sequence[float],
               base_energy: EnergyDesign, base_inference: InferenceDesign,
               environments: Optional[Sequence[LightEnvironment]] = None,
               ) -> Dict[float, SweepResult]:
    """2-D sweep: for each value of ``knob_a``, a full sweep of ``knob_b``.

    Returns ``{value_a: SweepResult over knob_b}``.
    """
    if knob_a == knob_b:
        raise DesignSpaceError(
            f"grid_sweep needs two distinct knobs, got {knob_a!r} twice")
    columns: Dict[float, List[float]] = {}
    for cell in expand_grid({knob_a: values_a, knob_b: values_b}):
        columns.setdefault(cell[knob_a], []).append(cell[knob_b])
    results: Dict[float, SweepResult] = {}
    for value_a, column in columns.items():
        energy, inference = _apply(knob_a, value_a, base_energy,
                                   base_inference)
        results[value_a] = sweep(network, knob_b, column, energy,
                                 inference, environments=environments)
    return results
