"""NSGA-II multi-objective search over AuT design spaces.

The scalar objectives (lat / sp / lat*sp) answer one question each; the
Fig. 6 scatter answers the broader one — *what does the whole
latency-vs-panel tradeoff look like?*  This module implements the
standard NSGA-II machinery (fast non-dominated sorting + crowding
distance) so the tradeoff curve is produced directly rather than
harvested from a scalarised search's evaluation log.

Usage mirrors :class:`~repro.explore.ga.GeneticAlgorithm`, but fitness
returns a *tuple* of minimised values and :meth:`NSGA2.run` returns the
final non-dominated front.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.explore.ga import GAConfig
from repro.explore.pareto import ParetoPoint, pareto_front
from repro.explore.space import DesignSpace, Genome

MultiFitness = Callable[[Genome], Tuple[float, ...]]


@dataclass
class _Individual:
    genome: Genome
    values: Tuple[float, ...]
    rank: int = 0
    crowding: float = 0.0


def fast_non_dominated_sort(
    population: Sequence[_Individual],
) -> List[List[_Individual]]:
    """Deb's fast non-dominated sort; returns fronts, best first."""
    dominates = _dominates
    s: List[List[int]] = [[] for _ in population]
    n = [0] * len(population)
    fronts: List[List[int]] = [[]]
    for i, p in enumerate(population):
        for j, q in enumerate(population):
            if i == j:
                continue
            if dominates(p.values, q.values):
                s[i].append(j)
            elif dominates(q.values, p.values):
                n[i] += 1
        if n[i] == 0:
            p.rank = 0
            fronts[0].append(i)
    k = 0
    while fronts[k]:
        next_front: List[int] = []
        for i in fronts[k]:
            for j in s[i]:
                n[j] -= 1
                if n[j] == 0:
                    population[j].rank = k + 1
                    next_front.append(j)
        fronts.append(next_front)
        k += 1
    return [[population[i] for i in front] for front in fronts if front]


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def crowding_distance(front: Sequence[_Individual]) -> None:
    """Assign Deb's crowding distance in place."""
    if not front:
        return
    dims = len(front[0].values)
    for individual in front:
        individual.crowding = 0.0
    for d in range(dims):
        ordered = sorted(front, key=lambda ind: ind.values[d])
        ordered[0].crowding = math.inf
        ordered[-1].crowding = math.inf
        span = ordered[-1].values[d] - ordered[0].values[d]
        if span <= 0:
            continue
        for prev_ind, ind, next_ind in zip(ordered, ordered[1:], ordered[2:]):
            ind.crowding += (next_ind.values[d] - prev_ind.values[d]) / span


class NSGA2:
    """Multi-objective genetic search returning a Pareto front."""

    def __init__(self, space: DesignSpace, fitness: MultiFitness,
                 config: Optional[GAConfig] = None,
                 seeds: Optional[List[Genome]] = None) -> None:
        self.space = space
        self.fitness = fitness
        self.config = config or GAConfig()
        self.seeds = list(seeds) if seeds else []
        self.rng = random.Random(self.config.seed)
        self.evaluations = 0

    # -- public API -----------------------------------------------------------

    def run(self) -> List[ParetoPoint]:
        """Returns the final population's non-dominated front, sorted by
        the first objective.  Raises :class:`SearchError` if every
        candidate was infeasible (all-inf objective vectors)."""
        cfg = self.config
        population = self._initial_population()
        for _ in range(cfg.generations - 1):
            offspring = self._make_offspring(population)
            merged = population + offspring
            population = self._select_survivors(merged)
        finite = [ind for ind in population
                  if all(math.isfinite(v) for v in ind.values)]
        if not finite:
            raise SearchError("NSGA-II found no feasible design")
        points = [ParetoPoint(values=ind.values, payload=ind.genome)
                  for ind in finite]
        return pareto_front(points)

    # -- internals ----------------------------------------------------------------

    def _evaluate(self, genome: Genome) -> _Individual:
        self.evaluations += 1
        return _Individual(genome=genome, values=tuple(self.fitness(genome)))

    def _initial_population(self) -> List[_Individual]:
        cfg = self.config
        genomes = [dict(seed) for seed in self.seeds[:cfg.population_size]]
        while len(genomes) < cfg.population_size:
            genomes.append(self.space.sample(self.rng))
        population = [self._evaluate(g) for g in genomes]
        self._rank(population)
        return population

    def _rank(self, population: List[_Individual]) -> None:
        for front in fast_non_dominated_sort(population):
            crowding_distance(front)

    def _tournament(self, population: Sequence[_Individual]) -> Genome:
        a, b = self.rng.sample(list(population), 2)
        if a.rank != b.rank:
            return (a if a.rank < b.rank else b).genome
        return (a if a.crowding > b.crowding else b).genome

    def _make_offspring(
        self, population: Sequence[_Individual]
    ) -> List[_Individual]:
        cfg = self.config
        offspring = []
        while len(offspring) < cfg.population_size:
            parent_a = self._tournament(population)
            if self.rng.random() < cfg.crossover_rate:
                parent_b = self._tournament(population)
                child = self.space.crossover(parent_a, parent_b, self.rng)
            else:
                child = dict(parent_a)
            child = self.space.mutate(child, self.rng,
                                      rate=cfg.mutation_rate,
                                      scale=cfg.mutation_scale)
            offspring.append(self._evaluate(child))
        return offspring

    def _select_survivors(
        self, merged: List[_Individual]
    ) -> List[_Individual]:
        cfg = self.config
        survivors: List[_Individual] = []
        for front in fast_non_dominated_sort(merged):
            crowding_distance(front)
            if len(survivors) + len(front) <= cfg.population_size:
                survivors.extend(front)
            else:
                remaining = cfg.population_size - len(survivors)
                front.sort(key=lambda ind: ind.crowding, reverse=True)
                survivors.extend(front[:remaining])
                break
        return survivors


class ParetoExplorer:
    """Bi-level NSGA-II over (panel area, sustained latency).

    The multi-objective sibling of
    :class:`~repro.explore.bilevel.BilevelExplorer`: the SW level stays
    the exact per-layer mapping optimisation; the HW level evolves a
    population toward the (sp, lat) Pareto front directly.
    """

    def __init__(self, network, space: DesignSpace,
                 environments=None, ga_config: Optional[GAConfig] = None,
                 checkpoint=None) -> None:
        from repro.explore.bilevel import BilevelExplorer
        from repro.explore.objectives import Objective

        # Reuse the scalar explorer's lowering machinery; its objective
        # is irrelevant here (we read metrics, not scores).
        self._bilevel = BilevelExplorer(
            network, space, Objective.lat_sp(),
            environments=environments, ga_config=ga_config,
            checkpoint=checkpoint,
        )
        self.ga_config = ga_config or GAConfig()

    def _fitness(self, genome: Genome) -> Tuple[float, float]:
        design = self._bilevel.lower_genome(genome)
        if design is None:
            return (math.inf, math.inf)
        metrics = self._bilevel.evaluator.evaluate_average(design)
        if not metrics.feasible:
            return (math.inf, math.inf)
        latency = metrics.sustained_period or metrics.e2e_latency
        return (design.energy.panel_area_cm2, latency)

    def run(self) -> List[ParetoPoint]:
        """The (panel cm^2, sustained latency s) front; payloads are the
        lowered :class:`~repro.design.AuTDesign` objects."""
        return self.search().evaluated

    def search(self):
        """Run NSGA-II and package the outcome as a ``SearchResult``.

        The scalar slots hold a *representative* point — the front
        member with the smallest panel x latency product, i.e. the
        ``lat*sp`` sweet spot — fully priced per environment, while the
        whole front rides in ``evaluated``.  This is the shape campaign
        stores persist for ``objective: pareto`` runs.
        """
        from repro.explore.bilevel import SearchResult
        from repro.explore.ga import GAHistory

        algorithm = NSGA2(self._bilevel.space, self._fitness,
                          config=self.ga_config,
                          seeds=self._bilevel.space.seed_genomes())
        front = algorithm.run()
        lowered = [
            ParetoPoint(values=point.values,
                        payload=self._bilevel.lower_genome(point.payload))
            for point in front
        ]
        best = min(lowered,
                   key=lambda p: (p.values[0] * p.values[1], p.values))
        design = best.payload
        evaluator = self._bilevel.evaluator
        return SearchResult(
            design=design,
            score=best.values[0] * best.values[1],
            average=evaluator.evaluate_average(design),
            metrics_by_env={
                env.name: evaluator.evaluate(design, env)
                for env in self._bilevel.environments
            },
            history=GAHistory(evaluations=algorithm.evaluations),
            evaluated=lowered,
        )
