"""SW-level mapping search (the inner level of the bi-level strategy).

For a *fixed* hardware configuration, find the best intermittent mapping
of every layer: dataflow style, spatial dimension, and the number of
energy-cycle tiles (``N_tile``).  This is the role GAMMA [37] plays in
the paper's CHRYSALIS-GAMMA realization.

Layers are independent given the hardware, and the whole-inference
objectives are additive in per-layer energy (Eq. 7 divides total energy
by harvest power), so per-layer enumeration is *exact* for this model:

* styles x spatial dimensions form a small product;
* for each combination, tile energy rises monotonically with ``N_tile``
  (more checkpoints, re-fetched halos), so the best feasible ``N_tile``
  is the smallest one satisfying Eq. 8 and the VM-capacity constraint —
  found with a geometric scan.

Feasibility follows the paper's two-environment protocol: a mapping must
execute in *every* configured environment; its score is the mean energy
across them.
"""

from __future__ import annotations

import logging
import math
import time as _time
from typing import List, Optional, Sequence, Tuple

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.dataflow.tiling import pick_intermittent_dim
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError, MappingError
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import OBS, span
from repro.sim.analytical import AnalyticalModel
from repro.workloads.layers import Layer
from repro.workloads.network import Network

logger = logging.getLogger(__name__)

#: Sentinel distinguishing "never searched" from a memoized
#: ``None`` ("searched, unmappable") in the mapper memo.
_ABSENT = object()


class _MapperMemo:
    """Process-wide memo of whole SW-level search results.

    Keyed like the layer-cost cache: a hashable *prefix* — ``(network,
    environments, styles, checkpoint)``, everything that changes what
    :meth:`MappingOptimizer.optimize` would return — resolved once per
    optimizer to a per-prefix dict, then probed with the ``(EnergyDesign,
    InferenceDesign)`` genome projection.  Values are the full mapping
    tuple, or ``None`` for a projection whose SW-level search proved
    unmappable (caching the *failure* matters: the GA revisits hopeless
    corners).

    This replaces PR 2's per-explorer ``_mapper_cache``, whose lifetime
    was the bug behind ``mapper_hit_rate: 0.0`` in every bench mode:
    the projection key was fine, but each run built a fresh explorer
    (and the GA deduplicates identical genomes before fitness), so no
    realistic population ever probed a warm dict.  Process scope makes
    repeat runs — the memoized bench mode, campaign re-runs, warm
    workers — actually hit.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._size = 0
        self._maps: dict = {}
        #: When a list, every organic insert is appended as
        #: ``(prefix, key, mappings)`` — drained per genome by parallel
        #: workers, merged back by the parent (same protocol as the
        #: layer-cost cache journal).
        self.journal: Optional[list] = None

    def map_for(self, prefix: tuple) -> dict:
        entries = self._maps.get(prefix)
        if entries is None:
            entries = self._maps[prefix] = {}
        return entries

    def insert(self, prefix: tuple, entries: dict, key: tuple,
               mappings: Optional[Tuple[LayerMapping, ...]],
               record: bool = True) -> None:
        entries[key] = mappings
        self._size += 1
        if record and self.journal is not None:
            self.journal.append((prefix, key, mappings))
        if self._size > self.maxsize:
            self._flush()

    def _flush(self) -> None:
        for entries in self._maps.values():
            entries.clear()
        self._size = 0

    def clear(self) -> None:
        self._flush()
        self._maps.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._size


_MAPPER_MEMO = _MapperMemo()


def configure_mapper_memo(enabled: Optional[bool] = None,
                          maxsize: Optional[int] = None) -> None:
    """Tune the process-wide mapper memo (bench/testing hook)."""
    if maxsize is not None:
        if maxsize < 1:
            raise ConfigurationError(
                f"mapper memo maxsize must be positive, got {maxsize}"
            )
        _MAPPER_MEMO.maxsize = maxsize
    if enabled is not None:
        _MAPPER_MEMO.enabled = enabled


def clear_mapper_memo() -> None:
    """Drop all memoized SW-level searches, reset the counters."""
    _MAPPER_MEMO.clear()


def mapper_memo_enabled() -> bool:
    """Whether the process-wide mapper memo is currently on."""
    return _MAPPER_MEMO.enabled


def mapper_memo_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of the process-wide mapper memo."""
    return _MAPPER_MEMO.hits, _MAPPER_MEMO.misses


def start_mapper_journal() -> None:
    """Record every subsequent insert (worker-process hook)."""
    _MAPPER_MEMO.journal = []


def drain_mapper_journal() -> Tuple[tuple, ...]:
    """Return and clear the recorded inserts, keeping recording on."""
    journal = _MAPPER_MEMO.journal
    if not journal:
        return ()
    entries = tuple(journal)
    journal.clear()
    return entries


def snapshot_mapper_entries() -> Tuple[tuple, ...]:
    """Every memo entry as ``(prefix, key, mappings)`` tuples."""
    memo = _MAPPER_MEMO
    return tuple(
        (prefix, key, mappings)
        for prefix, entries in memo._maps.items()
        for key, mappings in entries.items()
    )


def seed_mapper_memo(entries: Sequence[tuple]) -> None:
    """Insert-if-absent without touching the hit/miss counters."""
    memo = _MAPPER_MEMO
    if not memo.enabled:
        return
    for prefix, key, mappings in entries:
        entry_map = memo.map_for(prefix)
        if key not in entry_map:
            memo.insert(prefix, entry_map, key, mappings, record=False)


def merge_mapper_entries(entries: Sequence[tuple]) -> int:
    """Merge worker journal entries; return how many were already held.

    Mirror of :func:`repro.dataflow.cost_model.merge_layer_cost_entries`:
    the return value is the number of worker misses a serial run would
    have scored as hits, so the caller reclassifies exactly that many.
    """
    memo = _MAPPER_MEMO
    already_present = 0
    if not memo.enabled:
        return already_present
    for prefix, key, mappings in entries:
        entry_map = memo.map_for(prefix)
        if key in entry_map:
            already_present += 1
        else:
            memo.insert(prefix, entry_map, key, mappings, record=False)
    return already_present


class MappingOptimizer:
    """Optimises per-layer mappings for a fixed hardware configuration."""

    def __init__(self, network: Network,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 styles: Sequence[DataflowStyle] = tuple(DataflowStyle),
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        self.network = network
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        self.styles = tuple(styles)
        self.checkpoint = checkpoint
        #: Everything that changes what :meth:`optimize` returns —
        #: resolved to this optimizer's memo bucket once, so the per
        #: -genome probe is a single dict lookup.
        self._memo_prefix = (self.network, self.environments, self.styles,
                             self.checkpoint)
        self._memo_map = _MAPPER_MEMO.map_for(self._memo_prefix)

    # -- public API -----------------------------------------------------------

    def memo_probe(self, key: tuple
                   ) -> Tuple[bool, Optional[Tuple[LayerMapping, ...]]]:
        """``(hit, mappings)`` for a ``(EnergyDesign, InferenceDesign)`` key.

        ``hit`` distinguishes a memoized unmappable result (``True,
        None``) from a projection never searched (``False, None``).
        """
        if not _MAPPER_MEMO.enabled:
            return False, None
        value = self._memo_map.get(key, _ABSENT)
        if value is _ABSENT:
            _MAPPER_MEMO.misses += 1
            return False, None
        _MAPPER_MEMO.hits += 1
        return True, value

    def memo_note_hit(self) -> None:
        """Count a hit served without a dict probe.

        The vectorized evaluator resolves duplicate projections within
        one generation from its local scan state instead of re-probing
        the memo (the fill happens after the sweep).  Serially those
        probes would all have been memo hits, so noting them here keeps
        :func:`mapper_memo_stats` identical probe-for-probe across the
        scalar and batched modes — the process-wide counters are what
        mixed batched/scalar runs (and the serving layer) report from.
        """
        if _MAPPER_MEMO.enabled:
            _MAPPER_MEMO.hits += 1

    def memo_fill(self, key: tuple,
                  mappings: Optional[Tuple[LayerMapping, ...]]) -> None:
        """Memoize one SW-level search result (insert-if-absent)."""
        if not _MAPPER_MEMO.enabled:
            return
        if key not in self._memo_map:
            _MAPPER_MEMO.insert(self._memo_prefix, self._memo_map, key,
                                mappings)

    def optimize(self, energy: EnergyDesign,
                 inference: InferenceDesign
                 ) -> Optional[Tuple[LayerMapping, ...]]:
        """Best mapping per layer, or ``None`` if any layer is unmappable."""
        if not OBS.enabled:
            return self._optimize(energy, inference)
        start = _time.perf_counter() if OBS.profile else 0.0
        with span("mapper.optimize"):
            mappings = self._optimize(energy, inference)
        if OBS.profile:
            OBS.registry.histogram("mapper.optimize_seconds").observe(
                _time.perf_counter() - start)
        if mappings is None:
            OBS.registry.counter("mapper.unmappable").inc()
        return mappings

    def _optimize(self, energy: EnergyDesign,
                  inference: InferenceDesign
                  ) -> Optional[Tuple[LayerMapping, ...]]:
        models = self._models(energy, inference)
        mappings: List[LayerMapping] = []
        for layer in self.network:
            best = self._best_for_layer(layer, models)
            if best is None:
                return None
            mappings.append(best)
        return tuple(mappings)

    # -- internals ----------------------------------------------------------------

    def _models(self, energy: EnergyDesign,
                inference: InferenceDesign) -> List[AnalyticalModel]:
        """One analytical model per environment, sharing the hardware.

        The models carry placeholder mappings — per-layer queries go
        through ``layer_cost`` directly, which takes the mapping as an
        argument.
        """
        placeholder = AuTDesign.with_default_mappings(
            energy, inference, self.network
        )
        return [
            AnalyticalModel(placeholder, self.network, environment,
                            checkpoint=self.checkpoint)
            for environment in self.environments
        ]

    def _best_for_layer(self, layer: Layer,
                        models: Sequence[AnalyticalModel]
                        ) -> Optional[LayerMapping]:
        best: Optional[LayerMapping] = None
        best_score = math.inf
        for style in self.styles:
            for tile_dim, spatial_dim in self._dim_pairs(layer):
                # A (style, dims) combination that the cost model rejects
                # outright is just an invalid corner of the mapping
                # space — skip it rather than abort the layer search.
                try:
                    mapping = self._min_feasible(layer, style, tile_dim,
                                                 spatial_dim, models)
                    if mapping is None:
                        continue
                    score = self._mean_energy(layer, mapping, models)
                except MappingError as error:
                    logger.debug(
                        "skipping %s %s/%s on %s: %s", style.value,
                        tile_dim, spatial_dim, layer.name, error)
                    continue
                if score < best_score:
                    best, best_score = mapping, score
        return best

    def _dim_pairs(self, layer: Layer) -> List[Tuple[str, str]]:
        """(tile_dim, spatial_dim) combinations worth trying."""
        dims = layer.dims()
        preferred_tile = pick_intermittent_dim(dims)
        tile_dims = [preferred_tile]
        if dims.get("K", 1) > 1 and "K" not in tile_dims:
            tile_dims.append("K")
        pairs: List[Tuple[str, str]] = []
        for tile_dim in tile_dims:
            for spatial_dim in ("K", "Y", "C"):
                if spatial_dim == tile_dim or dims.get(spatial_dim, 1) <= 1:
                    continue
                pairs.append((tile_dim, spatial_dim))
            if not any(t == tile_dim for t, _ in pairs):
                # Degenerate layer: every other dimension is 1.  Any
                # distinct spatial dim works (one PE active).
                fallback = next(name for name in ("K", "C", "Y", "X", "R", "S")
                                if name != tile_dim)
                pairs.append((tile_dim, fallback))
        return pairs

    def _min_feasible(self, layer: Layer, style: DataflowStyle,
                      tile_dim: str, spatial_dim: str,
                      models: Sequence[AnalyticalModel]
                      ) -> Optional[LayerMapping]:
        """Smallest N_tile feasible in every environment (geometric scan).

        When even single-iteration chunks of ``tile_dim`` exceed one
        energy cycle, the scan escalates to a multi-dimensional cpkt
        tile by splitting a secondary dimension as well.
        """
        dims = layer.dims()
        bound = dims[tile_dim]
        n = 1
        while True:
            mapping = LayerMapping(style=style, n_tiles=n, tile_dim=tile_dim,
                                   spatial_dim=spatial_dim)
            if self._feasible_everywhere(layer, mapping, models):
                return mapping
            if n >= bound:
                break
            n = min(n * 2, bound)
        secondary = self._secondary_dim(dims, tile_dim, spatial_dim)
        if secondary is None:
            return None
        bound2 = dims[secondary]
        n2 = 2
        while True:
            mapping = LayerMapping(style=style, n_tiles=bound,
                                   tile_dim=tile_dim,
                                   spatial_dim=spatial_dim,
                                   secondary_dim=secondary,
                                   n_tiles_2=min(n2, bound2))
            if self._feasible_everywhere(layer, mapping, models):
                return mapping
            if n2 >= bound2:
                return None
            n2 = min(n2 * 2, bound2)

    @staticmethod
    def _secondary_dim(dims, tile_dim: str, spatial_dim: str) -> Optional[str]:
        candidates = [name for name in ("K", "C", "Y", "X")
                      if name not in (tile_dim, spatial_dim)
                      and dims.get(name, 1) > 1]
        if not candidates:
            return None
        return max(candidates, key=lambda name: dims[name])

    @staticmethod
    def _feasible_everywhere(layer: Layer, mapping: LayerMapping,
                             models: Sequence[AnalyticalModel]) -> bool:
        # Tiles stream through VM, so only the energy-cycle bound (Eq. 8)
        # constrains feasibility; VM pressure shows up as NVM re-read
        # energy in the cost itself.
        for model in models:
            cost = model.layer_cost(layer, mapping)
            if not model.tile_feasible(cost):
                return False
        return True

    @staticmethod
    def _mean_energy(layer: Layer, mapping: LayerMapping,
                     models: Sequence[AnalyticalModel]) -> float:
        total = 0.0
        for model in models:
            total += model.layer_cost(layer, mapping).energy
        return total / len(models)
