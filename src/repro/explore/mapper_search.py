"""SW-level mapping search (the inner level of the bi-level strategy).

For a *fixed* hardware configuration, find the best intermittent mapping
of every layer: dataflow style, spatial dimension, and the number of
energy-cycle tiles (``N_tile``).  This is the role GAMMA [37] plays in
the paper's CHRYSALIS-GAMMA realization.

Layers are independent given the hardware, and the whole-inference
objectives are additive in per-layer energy (Eq. 7 divides total energy
by harvest power), so per-layer enumeration is *exact* for this model:

* styles x spatial dimensions form a small product;
* for each combination, tile energy rises monotonically with ``N_tile``
  (more checkpoints, re-fetched halos), so the best feasible ``N_tile``
  is the smallest one satisfying Eq. 8 and the VM-capacity constraint —
  found with a geometric scan.

Feasibility follows the paper's two-environment protocol: a mapping must
execute in *every* configured environment; its score is the mean energy
across them.
"""

from __future__ import annotations

import logging
import math
import time as _time
from typing import List, Optional, Sequence, Tuple

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.dataflow.tiling import pick_intermittent_dim
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.errors import MappingError
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import OBS, span
from repro.sim.analytical import AnalyticalModel
from repro.workloads.layers import Layer
from repro.workloads.network import Network

logger = logging.getLogger(__name__)


class MappingOptimizer:
    """Optimises per-layer mappings for a fixed hardware configuration."""

    def __init__(self, network: Network,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 styles: Sequence[DataflowStyle] = tuple(DataflowStyle),
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        self.network = network
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        self.styles = tuple(styles)
        self.checkpoint = checkpoint

    # -- public API -----------------------------------------------------------

    def optimize(self, energy: EnergyDesign,
                 inference: InferenceDesign
                 ) -> Optional[Tuple[LayerMapping, ...]]:
        """Best mapping per layer, or ``None`` if any layer is unmappable."""
        if not OBS.enabled:
            return self._optimize(energy, inference)
        start = _time.perf_counter() if OBS.profile else 0.0
        with span("mapper.optimize"):
            mappings = self._optimize(energy, inference)
        if OBS.profile:
            OBS.registry.histogram("mapper.optimize_seconds").observe(
                _time.perf_counter() - start)
        if mappings is None:
            OBS.registry.counter("mapper.unmappable").inc()
        return mappings

    def _optimize(self, energy: EnergyDesign,
                  inference: InferenceDesign
                  ) -> Optional[Tuple[LayerMapping, ...]]:
        models = self._models(energy, inference)
        mappings: List[LayerMapping] = []
        for layer in self.network:
            best = self._best_for_layer(layer, models)
            if best is None:
                return None
            mappings.append(best)
        return tuple(mappings)

    # -- internals ----------------------------------------------------------------

    def _models(self, energy: EnergyDesign,
                inference: InferenceDesign) -> List[AnalyticalModel]:
        """One analytical model per environment, sharing the hardware.

        The models carry placeholder mappings — per-layer queries go
        through ``layer_cost`` directly, which takes the mapping as an
        argument.
        """
        placeholder = AuTDesign.with_default_mappings(
            energy, inference, self.network
        )
        return [
            AnalyticalModel(placeholder, self.network, environment,
                            checkpoint=self.checkpoint)
            for environment in self.environments
        ]

    def _best_for_layer(self, layer: Layer,
                        models: Sequence[AnalyticalModel]
                        ) -> Optional[LayerMapping]:
        best: Optional[LayerMapping] = None
        best_score = math.inf
        for style in self.styles:
            for tile_dim, spatial_dim in self._dim_pairs(layer):
                # A (style, dims) combination that the cost model rejects
                # outright is just an invalid corner of the mapping
                # space — skip it rather than abort the layer search.
                try:
                    mapping = self._min_feasible(layer, style, tile_dim,
                                                 spatial_dim, models)
                    if mapping is None:
                        continue
                    score = self._mean_energy(layer, mapping, models)
                except MappingError as error:
                    logger.debug(
                        "skipping %s %s/%s on %s: %s", style.value,
                        tile_dim, spatial_dim, layer.name, error)
                    continue
                if score < best_score:
                    best, best_score = mapping, score
        return best

    def _dim_pairs(self, layer: Layer) -> List[Tuple[str, str]]:
        """(tile_dim, spatial_dim) combinations worth trying."""
        dims = layer.dims()
        preferred_tile = pick_intermittent_dim(dims)
        tile_dims = [preferred_tile]
        if dims.get("K", 1) > 1 and "K" not in tile_dims:
            tile_dims.append("K")
        pairs: List[Tuple[str, str]] = []
        for tile_dim in tile_dims:
            for spatial_dim in ("K", "Y", "C"):
                if spatial_dim == tile_dim or dims.get(spatial_dim, 1) <= 1:
                    continue
                pairs.append((tile_dim, spatial_dim))
            if not any(t == tile_dim for t, _ in pairs):
                # Degenerate layer: every other dimension is 1.  Any
                # distinct spatial dim works (one PE active).
                fallback = next(name for name in ("K", "C", "Y", "X", "R", "S")
                                if name != tile_dim)
                pairs.append((tile_dim, fallback))
        return pairs

    def _min_feasible(self, layer: Layer, style: DataflowStyle,
                      tile_dim: str, spatial_dim: str,
                      models: Sequence[AnalyticalModel]
                      ) -> Optional[LayerMapping]:
        """Smallest N_tile feasible in every environment (geometric scan).

        When even single-iteration chunks of ``tile_dim`` exceed one
        energy cycle, the scan escalates to a multi-dimensional cpkt
        tile by splitting a secondary dimension as well.
        """
        dims = layer.dims()
        bound = dims[tile_dim]
        n = 1
        while True:
            mapping = LayerMapping(style=style, n_tiles=n, tile_dim=tile_dim,
                                   spatial_dim=spatial_dim)
            if self._feasible_everywhere(layer, mapping, models):
                return mapping
            if n >= bound:
                break
            n = min(n * 2, bound)
        secondary = self._secondary_dim(dims, tile_dim, spatial_dim)
        if secondary is None:
            return None
        bound2 = dims[secondary]
        n2 = 2
        while True:
            mapping = LayerMapping(style=style, n_tiles=bound,
                                   tile_dim=tile_dim,
                                   spatial_dim=spatial_dim,
                                   secondary_dim=secondary,
                                   n_tiles_2=min(n2, bound2))
            if self._feasible_everywhere(layer, mapping, models):
                return mapping
            if n2 >= bound2:
                return None
            n2 = min(n2 * 2, bound2)

    @staticmethod
    def _secondary_dim(dims, tile_dim: str, spatial_dim: str) -> Optional[str]:
        candidates = [name for name in ("K", "C", "Y", "X")
                      if name not in (tile_dim, spatial_dim)
                      and dims.get(name, 1) > 1]
        if not candidates:
            return None
        return max(candidates, key=lambda name: dims[name])

    @staticmethod
    def _feasible_everywhere(layer: Layer, mapping: LayerMapping,
                             models: Sequence[AnalyticalModel]) -> bool:
        # Tiles stream through VM, so only the energy-cycle bound (Eq. 8)
        # constrains feasibility; VM pressure shows up as NVM re-read
        # energy in the cost itself.
        for model in models:
            cost = model.layer_cost(layer, mapping)
            if not model.tile_feasible(cost):
                return False
        return True

    @staticmethod
    def _mean_energy(layer: Layer, mapping: LayerMapping,
                     models: Sequence[AnalyticalModel]) -> float:
        total = 0.0
        for model in models:
            total += model.layer_cost(layer, mapping).energy
        return total / len(models)
