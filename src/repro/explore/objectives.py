"""The paper's three objective functions (§IV, last paragraph).

* ``lat``    — minimise latency subject to a solar-panel-size cap
  (stringent hardware-size scenarios, as in HAWAII / iNAS);
* ``sp``     — minimise solar-panel size subject to a latency cap
  (application-deadline scenarios, as in [4]);
* ``lat*sp`` — minimise the latency x panel-area product, "a direct
  measure of the throughput achievable per unit area of the solar
  panel" — the overall-efficiency objective.

Scores are *lower-is-better*; infeasible designs and constraint
violations score infinity so that any feasible point beats them.
Constraint violations are additionally penalised proportionally to the
violation so the GA can climb back into the feasible region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.design import AuTDesign
from repro.errors import ConfigurationError
from repro.sim.metrics import InferenceMetrics


class ObjectiveKind(Enum):
    LATENCY = "lat"
    SOLAR_PANEL = "sp"
    LATENCY_X_PANEL = "lat*sp"


@dataclass(frozen=True)
class Objective:
    """A scoring rule over (design, metrics) pairs.

    Parameters
    ----------
    kind:
        Which of the paper's three objectives.
    sp_constraint_cm2:
        Panel-area cap, required by ``lat``.
    latency_constraint_s:
        Latency cap, required by ``sp``.
    """

    kind: ObjectiveKind
    sp_constraint_cm2: Optional[float] = None
    latency_constraint_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind is ObjectiveKind.LATENCY and self.sp_constraint_cm2 is None:
            raise ConfigurationError(
                "the 'lat' objective needs sp_constraint_cm2"
            )
        if (self.kind is ObjectiveKind.SOLAR_PANEL
                and self.latency_constraint_s is None):
            raise ConfigurationError(
                "the 'sp' objective needs latency_constraint_s"
            )

    # -- constructors matching the paper's spellings -------------------------

    @classmethod
    def lat(cls, sp_constraint_cm2: float) -> "Objective":
        return cls(ObjectiveKind.LATENCY, sp_constraint_cm2=sp_constraint_cm2)

    @classmethod
    def sp(cls, latency_constraint_s: float) -> "Objective":
        return cls(ObjectiveKind.SOLAR_PANEL,
                   latency_constraint_s=latency_constraint_s)

    @classmethod
    def lat_sp(cls) -> "Objective":
        return cls(ObjectiveKind.LATENCY_X_PANEL)

    # -- scoring --------------------------------------------------------------

    def score(self, design: AuTDesign, metrics: InferenceMetrics) -> float:
        """Lower-is-better fitness; ``inf`` for hard infeasibility.

        Latency here is the paper's Eq. 7 quantity — the sustained
        per-inference period including recharging the energy bank —
        falling back to the one-shot e2e latency when a metrics source
        does not compute it.
        """
        if not metrics.feasible or math.isinf(metrics.e2e_latency):
            return math.inf
        latency = metrics.sustained_period or metrics.e2e_latency
        area = design.energy.panel_area_cm2

        if self.kind is ObjectiveKind.LATENCY:
            cap = self.sp_constraint_cm2
            if area > cap:
                # Soft penalty: still orders violating points so the GA
                # can repair them, but never beats a compliant point.
                return _PENALTY_BASE + latency * (1.0 + area / cap)
            return latency

        if self.kind is ObjectiveKind.SOLAR_PANEL:
            cap = self.latency_constraint_s
            if latency > cap:
                return _PENALTY_BASE + area * (1.0 + latency / cap)
            return area

        return latency * area

    @staticmethod
    def is_compliant_score(score: float) -> bool:
        """True when ``score`` came from a constraint-compliant design.

        Violating designs score in the penalty band (``>= 1e9``) so the
        GA can still rank and repair them; callers use this to tell a
        repaired search from one that never found a compliant point.
        """
        return math.isfinite(score) and score < _PENALTY_BASE

    def value_label(self) -> str:
        """Axis label for reports."""
        if self.kind is ObjectiveKind.LATENCY:
            return f"latency [s] (SP <= {self.sp_constraint_cm2} cm^2)"
        if self.kind is ObjectiveKind.SOLAR_PANEL:
            return f"panel [cm^2] (lat <= {self.latency_constraint_s} s)"
        return "latency x panel [s*cm^2]"


#: Offset separating constraint-violating scores from compliant ones.
_PENALTY_BASE = 1e9
