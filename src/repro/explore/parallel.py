"""Process-parallel evaluation of GA generations.

The HW-level genetic algorithm proposes a whole generation of genomes
before it needs any of their fitnesses, and each bi-level fitness is an
independent pure function of the genome — the classic fan-out shape.
:class:`ParallelGenomeEvaluator` plugs into
:class:`~repro.explore.ga.GeneticAlgorithm` as its ``batch_evaluator``
and runs each generation's *uncached* genomes on a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Design constraints, all in the name of serial/parallel bit-equality:

* **generation-synchronous** — the GA's RNG stream is consumed entirely
  while breeding, before any evaluation, so fanning the evaluations out
  cannot perturb selection, crossover, or mutation;
* **deterministic replay** — workers return
  :class:`~repro.explore.stats.GenomeOutcome` records (scores, Pareto
  points, failure records, cache-counter deltas); the parent explorer
  applies them in submission order, exactly as the serial loop would;
* **marshalled failures** — candidate errors are absorbed *inside* the
  worker (``BilevelExplorer.compute_outcome``) into structured
  :class:`~repro.explore.failures.FailureRecord` payloads, so the
  existing penalty machinery sees them unchanged.  Genuine programming
  errors (non-``ChrysalisError``) still propagate and abort the search,
  matching serial behaviour.

Workers are initialized once per process with a picklable
:class:`WorkerSpec` and build their own explorer (with process-local
caches); per-task payloads are just genomes.
"""

from __future__ import annotations

import logging
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.dataflow import cost_model as _cost_cache
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore import mapper_search as _mapper_memo
from repro.explore.objectives import Objective
from repro.explore.space import DesignSpace, Genome
from repro.explore.stats import GenomeOutcome
from repro.hardware.checkpoint import CheckpointModel
from repro.obs import state as obs_state
from repro.workloads.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.explore.bilevel import BilevelExplorer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild the evaluator."""

    network: Network
    space: DesignSpace
    objective: Objective
    environments: Tuple[LightEnvironment, ...]
    checkpoint: Optional[CheckpointModel]
    candidate_time_budget_s: Optional[float]
    #: Mirror of the parent's observability switches at pool creation,
    #: so workers record (and ship back) the same telemetry.
    obs_enabled: bool = False
    obs_profile: bool = False
    #: Snapshots of the parent's layer-cost cache and mapper memo at
    #: pool creation.  On a warm start (second run in one process) they
    #: stop every worker from re-missing keys the parent already holds;
    #: on a cold start they are simply empty.
    layer_cost_seed: Tuple[tuple, ...] = ()
    mapper_seed: Tuple[tuple, ...] = ()

    @classmethod
    def from_explorer(cls, explorer: "BilevelExplorer") -> "WorkerSpec":
        return cls(
            network=explorer.network,
            space=explorer.space,
            objective=explorer.objective,
            environments=tuple(explorer.environments),
            checkpoint=explorer.checkpoint,
            candidate_time_budget_s=explorer.candidate_time_budget_s,
            obs_enabled=obs_state.OBS.enabled,
            obs_profile=obs_state.OBS.profile,
            layer_cost_seed=_cost_cache.snapshot_layer_cost_entries(),
            mapper_seed=_mapper_memo.snapshot_mapper_entries(),
        )

    def build(self) -> "BilevelExplorer":
        from repro.explore.bilevel import BilevelExplorer

        return BilevelExplorer(
            network=self.network,
            space=self.space,
            objective=self.objective,
            environments=self.environments,
            checkpoint=self.checkpoint,
            candidate_time_budget_s=self.candidate_time_budget_s,
        )


#: Per-process evaluator, built once by the pool initializer.
_WORKER: Optional["BilevelExplorer"] = None


def _init_worker(spec: WorkerSpec) -> None:
    global _WORKER
    _WORKER = spec.build()
    # Warm the process-local caches with the parent's state, then start
    # journaling so every insert this worker makes ships home inside its
    # GenomeOutcome (seeded entries are not journaled — no echo).
    _cost_cache.seed_layer_cost_cache(spec.layer_cost_seed)
    _mapper_memo.seed_mapper_memo(spec.mapper_seed)
    _cost_cache.start_layer_cost_journal()
    _mapper_memo.start_mapper_journal()
    if spec.obs_enabled:
        obs_state.enable(profile=spec.obs_profile)


def _compute_outcome(genome: Genome) -> GenomeOutcome:
    assert _WORKER is not None, "worker pool was not initialized"
    if not obs_state.OBS.enabled:
        outcome = _WORKER.compute_outcome(genome)
    else:
        # Merge-on-return: record this task into a fresh scope, ship the
        # snapshot with the result, and drop the worker-local copy (the
        # parent process owns aggregation).
        with obs_state.run_scope() as scope:
            outcome = _WORKER.compute_outcome(genome)
        outcome.obs = scope.snapshot()
        obs_state.reset()
    outcome.layer_cost_entries = _cost_cache.drain_layer_cost_journal()
    outcome.mapper_entries = _mapper_memo.drain_mapper_journal()
    return outcome


class ParallelGenomeEvaluator:
    """Evaluates genome batches on a process pool, in submission order.

    Satisfies the :class:`~repro.explore.ga.BatchEvaluator` protocol.
    The pool is created lazily on the first batch and must be released
    with :meth:`close` (or by using the evaluator as a context manager);
    ``BilevelExplorer.run()`` does both automatically when
    ``GAConfig.workers > 1``.
    """

    def __init__(self, explorer: "BilevelExplorer", workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {workers}")
        self.explorer = explorer
        self.workers = workers
        self._executor: Optional[Executor] = None

    # -- BatchEvaluator protocol ---------------------------------------------

    def evaluate_many(self, genomes: List[Genome]) -> List[float]:
        """Fitnesses of ``genomes``, side effects replayed in order."""
        executor = self._ensure_executor()
        outcomes = list(executor.map(_compute_outcome, genomes))
        return [self.explorer.apply_outcome(genome, outcome)
                for genome, outcome in zip(genomes, outcomes)]

    # -- lifecycle ------------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            spec = WorkerSpec.from_explorer(self.explorer)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(spec,),
            )
            logger.debug("started %d evaluation worker(s)", self.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelGenomeEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
