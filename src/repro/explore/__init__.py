"""The CHRYSALIS Explorer: design-space definitions and search.

* :mod:`repro.explore.space` — Table IV / Table V parameter spaces;
* :mod:`repro.explore.objectives` — the paper's three objectives
  (``lat``, ``sp``, ``lat*sp``);
* :mod:`repro.explore.ga` — the genetic-algorithm engine (the offline
  substitute for Optuna's GA sampler);
* :mod:`repro.explore.mapper_search` — SW-level per-layer mapping
  optimisation (the GAMMA-like inner search);
* :mod:`repro.explore.bilevel` — the bi-level HW/SW strategy of §III-C;
* :mod:`repro.explore.parallel` — process-parallel generation
  evaluation (opt-in via ``GAConfig.workers``);
* :mod:`repro.explore.stats` — throughput / cache observability;
* :mod:`repro.explore.baselines` — the six ablated methods of Table VI;
* :mod:`repro.explore.random_search` / :mod:`repro.explore.grid` —
  alternative strategies for the search-ablation benchmarks;
* :mod:`repro.explore.pareto` — non-dominated front extraction (Fig. 6).
"""

from repro.explore.baselines import BASELINE_METHODS, baseline_space
from repro.explore.bilevel import BilevelExplorer, SearchResult
from repro.explore.failures import FailureLog, FailureRecord
from repro.explore.ga import GeneticAlgorithm, GAConfig
from repro.explore.grid import GridSearch
from repro.explore.mapper_search import MappingOptimizer
from repro.explore.objectives import Objective, ObjectiveKind
from repro.explore.parallel import ParallelGenomeEvaluator
from repro.explore.pareto import ParetoPoint, pareto_front
from repro.explore.random_search import RandomSearch
from repro.explore.space import DesignSpace, ParameterSpec
from repro.explore.stats import SearchStats

__all__ = [
    "BASELINE_METHODS",
    "BilevelExplorer",
    "DesignSpace",
    "FailureLog",
    "FailureRecord",
    "GAConfig",
    "GeneticAlgorithm",
    "GridSearch",
    "MappingOptimizer",
    "Objective",
    "ObjectiveKind",
    "ParallelGenomeEvaluator",
    "ParameterSpec",
    "ParetoPoint",
    "RandomSearch",
    "SearchResult",
    "SearchStats",
    "baseline_space",
    "pareto_front",
]
