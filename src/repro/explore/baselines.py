"""The six ablated search methods of Table VI.

Each baseline removes design dimensions from the full CHRYSALIS search
and pins them at a representative fixed value (the paper: "do not
perform a search ... but instead provide a fixed value"):

============  =====================================================
method        frozen dimensions
============  =====================================================
``wo/Cap``    capacitor size (fixed 100 uF)
``wo/SP``     solar-panel size (fixed 10 cm^2) — the iNAS approach
``wo/EA``     both energy knobs — the SONIC / HAWAII approach
``wo/PE``     PE count (fixed 64)
``wo/Cache``  per-PE cache (fixed 512 B)
``wo/IA``     both inference knobs
``full``      nothing — CHRYSALIS itself
============  =====================================================

The PE-side ablations only exist in the future-AuT space (Table V); on
the existing-AuT space (Table IV) they degenerate to the full search
because the MSP430's inference hardware is not searchable anyway.
"""

from __future__ import annotations



from repro.errors import DesignSpaceError
from repro.explore.space import DesignSpace
from repro.units import uF

#: Fixed values a baseline pins its frozen dimensions to.
FIXED_CAPACITANCE_F = uF(100)
FIXED_PANEL_CM2 = 10.0
FIXED_N_PES = 64
FIXED_CACHE_BYTES = 512

#: Table VI rows, in the paper's order ("full" is CHRYSALIS itself).
BASELINE_METHODS = (
    "wo/Cap", "wo/SP", "wo/EA", "wo/PE", "wo/Cache", "wo/IA", "full",
)


def baseline_space(method: str, base: DesignSpace) -> DesignSpace:
    """Restrict ``base`` according to a Table VI method name."""
    searchable = set(base.names)

    def freeze(**values: object) -> DesignSpace:
        applicable = {name: value for name, value in values.items()
                      if name in searchable}
        if not applicable:
            return base
        return base.restricted(**applicable)

    if method == "full":
        return base
    if method == "wo/Cap":
        return freeze(capacitance_f=FIXED_CAPACITANCE_F)
    if method == "wo/SP":
        return freeze(panel_area_cm2=FIXED_PANEL_CM2)
    if method == "wo/EA":
        return freeze(capacitance_f=FIXED_CAPACITANCE_F,
                      panel_area_cm2=FIXED_PANEL_CM2)
    if method == "wo/PE":
        return freeze(n_pes=FIXED_N_PES)
    if method == "wo/Cache":
        return freeze(cache_bytes_per_pe=FIXED_CACHE_BYTES)
    if method == "wo/IA":
        return freeze(n_pes=FIXED_N_PES,
                      cache_bytes_per_pe=FIXED_CACHE_BYTES)
    raise DesignSpaceError(
        f"unknown baseline {method!r}; expected one of {BASELINE_METHODS}"
    )
