"""Throughput observability for the bi-level search.

The explorer calls the analytical cost model millions of times, so the
PR that made evaluation parallel and memoized also has to make its
effect *visible*: :class:`SearchStats` aggregates evaluation counts,
cache hit/miss counters and per-stage wall-clock so that
``SearchResult.summary()``, the CLI and ``benchmarks/bench_search.py``
can all report the same numbers.

:class:`GenomeOutcome` is the marshalable result of evaluating one HW
genome.  It exists so the evaluation itself can run in a worker process
(:mod:`repro.explore.parallel`) while the explorer in the parent process
replays the side effects — Pareto points, failure records, cache warming
— in deterministic submission order.  The serial path uses the exact
same compute/apply split, which is what makes serial and parallel runs
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.design import AuTDesign
from repro.explore.failures import FailureRecord


@dataclass
class SearchStats:
    """Counters and timings of one ``BilevelExplorer.run()``.

    Cache semantics:

    * ``layer_cost_*`` — the process-wide LRU over
      ``(hardware, checkpoint, layer, mapping)`` tile costs
      (:func:`repro.dataflow.cost_model.layer_cost_cache_stats`);
    * ``mapper_*`` — the process-wide memo of whole SW-level mapping
      searches, keyed by the canonical ``(EnergyDesign,
      InferenceDesign)`` projection of a genome;
    * ``design_cache_hits`` — reuses of a fully lowered design by
      genome key (e.g. the winner re-lowering at the end of ``run()``);
    * ``batched_*`` — work routed through the vectorized population
      evaluator (``GAConfig.batched``): sweeps is the number of
      generation-sized numpy passes, genomes how many candidates they
      priced, and ``scalar_fallbacks`` how many candidates dropped back
      to the scalar oracle path (errors, or re-pricing one at a time);
    * ``surrogate_*`` — work routed through the surrogate-guided
      explorer (``repro.explore.guided``): ``surrogate_priced`` is how
      many candidates the ranking forwarded to full oracle pricing,
      ``surrogate_pruned`` how many got estimated fitness instead, and
      ``surrogate_refits`` how many times the model was (re)fit from
      freshly priced rows mid-run.
    """

    hw_evaluations: int = 0
    eval_seconds: float = 0.0
    search_seconds: float = 0.0
    workers: int = 1
    mapper_hits: int = 0
    mapper_misses: int = 0
    layer_cost_hits: int = 0
    layer_cost_misses: int = 0
    design_cache_hits: int = 0
    batched_sweeps: int = 0
    batched_genomes: int = 0
    scalar_fallbacks: int = 0
    surrogate_pruned: int = 0
    surrogate_priced: int = 0
    surrogate_refits: int = 0

    # -- derived rates -------------------------------------------------------

    @property
    def evals_per_second(self) -> float:
        """HW-genome evaluations per wall-clock second of the search."""
        if self.search_seconds <= 0.0:
            return 0.0
        return self.hw_evaluations / self.search_seconds

    @property
    def mapper_hit_rate(self) -> float:
        total = self.mapper_hits + self.mapper_misses
        return self.mapper_hits / total if total else 0.0

    @property
    def layer_cost_hit_rate(self) -> float:
        total = self.layer_cost_hits + self.layer_cost_misses
        return self.layer_cost_hits / total if total else 0.0

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Multi-line human-readable block for CLI / summary output."""
        lines = [
            f"workers     : {self.workers}",
            f"throughput  : {self.evals_per_second:.2f} evals/s "
            f"({self.hw_evaluations} evals in {self.search_seconds:.3f} s)",
            f"mapper cache: {self.mapper_hits} hit(s) / "
            f"{self.mapper_misses} miss(es) "
            f"({self.mapper_hit_rate:.1%} hit rate, "
            f"{self.design_cache_hits} design reuse(s))",
            f"layer cache : {self.layer_cost_hits} hit(s) / "
            f"{self.layer_cost_misses} miss(es) "
            f"({self.layer_cost_hit_rate:.1%} hit rate)",
        ]
        if self.batched_sweeps:
            lines.append(
                f"batched     : {self.batched_genomes} genome(s) in "
                f"{self.batched_sweeps} sweep(s), "
                f"{self.scalar_fallbacks} scalar fallback(s)")
        if self.surrogate_pruned or self.surrogate_priced:
            lines.append(
                f"surrogate   : {self.surrogate_priced} priced / "
                f"{self.surrogate_pruned} pruned, "
                f"{self.surrogate_refits} refit(s)")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly snapshot (used by ``bench_search.py``)."""
        return {
            "hw_evaluations": self.hw_evaluations,
            "eval_seconds": self.eval_seconds,
            "search_seconds": self.search_seconds,
            "workers": self.workers,
            "evals_per_second": self.evals_per_second,
            "mapper_hits": self.mapper_hits,
            "mapper_misses": self.mapper_misses,
            "mapper_hit_rate": self.mapper_hit_rate,
            "layer_cost_hits": self.layer_cost_hits,
            "layer_cost_misses": self.layer_cost_misses,
            "layer_cost_hit_rate": self.layer_cost_hit_rate,
            "design_cache_hits": self.design_cache_hits,
            "batched_sweeps": self.batched_sweeps,
            "batched_genomes": self.batched_genomes,
            "scalar_fallbacks": self.scalar_fallbacks,
            "surrogate_pruned": self.surrogate_pruned,
            "surrogate_priced": self.surrogate_priced,
            "surrogate_refits": self.surrogate_refits,
        }


@dataclass
class GenomeOutcome:
    """Everything one genome evaluation produced, in marshalable form.

    ``design`` is the lowered design when the score is finite (it doubles
    as the Pareto-point payload and warms the parent's caches);
    ``failure`` is the absorbed candidate failure, if any.  The cache
    counters are *deltas* accumulated during this evaluation — worker
    processes keep local caches, so only deltas aggregate correctly.
    """

    score: float
    design: Optional[AuTDesign] = None
    point: Optional[Tuple[float, float]] = None
    failure: Optional[FailureRecord] = None
    eval_seconds: float = 0.0
    mapper_hits: int = 0
    mapper_misses: int = 0
    layer_cost_hits: int = 0
    layer_cost_misses: int = 0
    design_cache_hits: int = 0
    #: Journal entries a worker process's caches recorded while this
    #: genome evaluated — ``(prefix, key, value)`` tuples the parent
    #: merges back (and uses to reclassify worker-local misses that a
    #: serial run would have scored as hits).  Empty for in-process
    #: evaluation, where the caches are already shared.
    layer_cost_entries: Tuple[tuple, ...] = ()
    mapper_entries: Tuple[tuple, ...] = ()
    #: Observability snapshot of the evaluation when it ran in a worker
    #: process with observability on (``None`` otherwise, so the common
    #: disabled path adds no pickle weight).  The parent merges it via
    #: :func:`repro.obs.state.merge_snapshot`.
    obs: Optional[Dict[str, Any]] = None
