"""Grid search — exhaustive sweep over a discretised design space.

Used by the rationality-validation experiments (Figs. 8 and 9), which
sweep one energy knob while pinning the other, and by the search-
strategy ablation bench.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Tuple

from repro.errors import SearchError
from repro.explore.ga import Fitness, GAHistory
from repro.explore.space import DesignSpace, Genome, ParameterSpec


def _grid_values(spec: ParameterSpec, points: int) -> List[object]:
    if spec.kind == "choice":
        return list(spec.choices)
    if points < 2:
        raise SearchError("grid needs at least 2 points per axis")
    if spec.kind in ("float", "int"):
        step = (spec.high - spec.low) / (points - 1)
        values = [spec.low + i * step for i in range(points)]
    else:  # log scales
        log_low, log_high = math.log(spec.low), math.log(spec.high)
        step = (log_high - log_low) / (points - 1)
        values = [math.exp(log_low + i * step) for i in range(points)]
    if spec.kind.startswith("int"):
        deduped: List[object] = []
        for value in values:
            rounded = max(int(spec.low), min(int(spec.high), round(value)))
            if rounded not in deduped:
                deduped.append(rounded)
        return deduped
    return values


class GridSearch:
    """Cartesian-product sweep; also exposes every evaluated point."""

    def __init__(self, space: DesignSpace, fitness: Fitness,
                 points_per_axis: int = 6) -> None:
        self.space = space
        self.fitness = fitness
        self.points_per_axis = points_per_axis
        self.history = GAHistory()
        self.evaluated: List[Tuple[Genome, float]] = []

    def axes(self) -> Dict[str, List[object]]:
        return {spec.name: _grid_values(spec, self.points_per_axis)
                for spec in self.space.parameters}

    def run(self) -> Tuple[Genome, float]:
        axes = self.axes()
        names = list(axes)
        best: Genome | None = None
        best_fitness = math.inf
        for combo in itertools.product(*(axes[name] for name in names)):
            genome: Genome = dict(zip(names, combo))
            genome.update(self.space.fixed)
            fitness = self.fitness(genome)
            self.history.evaluations += 1
            self.evaluated.append((genome, fitness))
            if fitness < best_fitness:
                best, best_fitness = genome, fitness
            self.history.best.append(best_fitness)
        if best is None or math.isinf(best_fitness):
            raise SearchError("no feasible genome found on the grid")
        return best, best_fitness
