"""Vectorized in-process evaluation of GA generations.

:class:`VectorizedGenomeEvaluator` plugs into
:class:`~repro.explore.ga.GeneticAlgorithm` as its ``batch_evaluator``
(``GAConfig.batched``) and prices each generation's uncached genomes as
numpy sweeps instead of one-candidate-at-a-time Python:

* genomes are grouped by their :class:`InferenceDesign` projection, so
  hardware is built once per distinct accelerator configuration;
* the SW-level mapping search is replaced by a per-layer *rung table* —
  every ``(style, tile_dim, spatial_dim, N_tile)`` candidate the scalar
  :class:`~repro.explore.mapper_search.MappingOptimizer` could ever
  visit, priced once per hardware via
  :meth:`~repro.dataflow.cost_model.DataflowCostModel.layer_cost_batch`
  and reused across generations (the candidate ladder only depends on
  the layer, not on the energy design);
* per generation, Eq. 8 feasibility and the first-feasible /
  lowest-energy selection run as boolean/argmin array operations over
  ``genomes x rungs``;
* whole-design pricing goes through
  :class:`~repro.sim.analytical.BatchAnalyticalModel`, one call per
  environment for the entire generation, followed by the paper's
  first-infeasible-environment averaging protocol per genome.

Bit-identity contract: scores, lowered designs, Pareto points, failure
records and mapper hit/miss accounting are exactly what the serial
scalar path produces for the same genomes — the selection mirrors the
scalar scan's iteration order and strict-``<`` tie-breaking, and every
float chain reuses either pure-Python arithmetic or the (bit-exact)
batched models.  The scalar path stays available as the oracle: any
:class:`~repro.errors.ChrysalisError` escaping the vectorized machinery
drops the affected genomes back to ``BilevelExplorer.compute_outcome``
(counted in ``SearchStats.scalar_fallbacks``).

Layer-cost cache *totals* differ from the serial mode by design: the
rung tables price whole ladders up front (a superset of the rungs the
lazy scalar scan visits) and then reuse them without re-probing, so the
batched mode reports far fewer cache events for the same search.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.dataflow.cost_model import (DataflowCostModel, LayerCost,
                                       layer_cost_cache_stats)
from repro.dataflow.mapping import LayerMapping
from repro.errors import ChrysalisError, EvaluationTimeout, MappingError
from repro.explore.bilevel import _CANDIDATE_ERRORS
from repro.explore.mapper_search import mapper_memo_enabled
from repro.explore.space import Genome
from repro.explore.stats import GenomeOutcome
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import span
from repro.sim.analytical import BatchAnalyticalModel
from repro.sim.evaluator import _average_metrics
from repro.sim.metrics import InferenceMetrics
from repro.workloads.layers import Layer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.design import AuTDesign
    from repro.explore.bilevel import BilevelExplorer

logger = logging.getLogger(__name__)


@dataclass
class _RungTable:
    """Every mapping candidate of one layer on one hardware, priced.

    ``slices`` delimits one ``(style, tile_dim, spatial_dim)`` combo per
    entry, in the scalar scan's iteration order (styles outer, dim pairs
    inner); within a combo the rungs follow the scalar geometric ladder
    (primary ``N_tile`` doubling, then the secondary-dimension split).
    ``score`` is the combo-selection score of each rung — the mean
    layer energy over the configured environments, accumulated exactly
    like ``MappingOptimizer._mean_energy``.
    """

    mappings: List[LayerMapping]
    costs: List[LayerCost]
    tile_energy: np.ndarray
    tile_time: np.ndarray
    score: np.ndarray
    slices: List[Tuple[int, int]]


class VectorizedGenomeEvaluator:
    """Prices GA generations as numpy sweeps; scalar-oracle-identical.

    Satisfies the :class:`~repro.explore.ga.BatchEvaluator` protocol.
    In-process: the shared layer-cost cache and mapper memo are used
    directly, so no journaling/merge-back is needed (unlike
    :class:`~repro.explore.parallel.ParallelGenomeEvaluator`).
    """

    def __init__(self, explorer: "BilevelExplorer") -> None:
        self.explorer = explorer
        self.network = explorer.network
        self.environments = explorer.environments
        self._seed_mappings = tuple(
            LayerMapping.default(layer) for layer in self.network
        )
        #: Rung tables keyed by :class:`InferenceDesign` — one list of
        #: per-layer tables per distinct hardware, reused across
        #: generations.
        self._tables: Dict[object, List[_RungTable]] = {}

    # -- BatchEvaluator protocol ---------------------------------------------

    def evaluate_many(self, genomes: List[Genome]) -> List[float]:
        """Fitnesses of ``genomes``, side effects replayed in order."""
        if not genomes:
            return []
        with span("search.batch", genomes=len(genomes)):
            outcomes = self._compute_outcomes(genomes)
        return [self.explorer.apply_outcome(genome, outcome)
                for genome, outcome in zip(genomes, outcomes)]

    def close(self) -> None:
        """Protocol parity with the process-pool evaluator (no-op)."""

    # -- one generation ----------------------------------------------------------

    def _compute_outcomes(self, genomes: List[Genome]) -> List[GenomeOutcome]:
        explorer = self.explorer
        started = time.monotonic()
        layer_hits0, layer_misses0 = layer_cost_cache_stats()
        n = len(genomes)
        outcomes: List[Optional[GenomeOutcome]] = [None] * n
        fallback: List[int] = []

        # 1. Project every genome to its (energy, inference) key.  The
        # same errors the scalar path absorbs per candidate are absorbed
        # here with the same stage labels.
        seeded: List[Optional["AuTDesign"]] = [None] * n
        keys: List[Optional[tuple]] = [None] * n
        for i, genome in enumerate(genomes):
            try:
                design = explorer.space.to_design(genome, self._seed_mappings)
            except _CANDIDATE_ERRORS as error:
                outcomes[i] = GenomeOutcome(
                    score=math.inf,
                    failure=explorer._failure(genome, error,
                                              stage="sw-lowering"))
                continue
            except ChrysalisError as error:
                outcomes[i] = GenomeOutcome(
                    score=math.inf,
                    failure=explorer._failure(genome, error,
                                              stage="hw-fitness"))
                continue
            seeded[i] = design
            keys[i] = (design.energy, design.inference)

        # 2. Group by hardware and resolve mappings (memo probe + one
        # vectorized mapper sweep per group of unseen projections).
        groups: Dict[object, List[int]] = {}
        for i in range(n):
            if seeded[i] is not None:
                groups.setdefault(seeded[i].inference, []).append(i)
        mappings_by_index: Dict[int, Optional[Tuple[LayerMapping, ...]]] = {}
        probe_hits: Dict[int, bool] = {}
        for inference, indices in groups.items():
            try:
                self._resolve_group(inference, indices, seeded, keys,
                                    mappings_by_index, probe_hits)
            except ChrysalisError as error:
                logger.warning(
                    "batched mapper sweep failed (%s: %s); falling back to "
                    "scalar evaluation for %d genome(s)",
                    type(error).__name__, error, len(indices))
                for i in indices:
                    probe_hits.pop(i, None)
                    mappings_by_index.pop(i, None)
                    fallback.append(i)

        # 3. Lower the mappable genomes and price them — one batched
        # analytical sweep per environment over the whole generation.
        with_design: List[int] = []
        designs: Dict[int, "AuTDesign"] = {}
        for i in sorted(mappings_by_index):
            mappings = mappings_by_index[i]
            if mappings is None:
                continue
            try:
                designs[i] = explorer.space.to_design(genomes[i], mappings)
            except _CANDIDATE_ERRORS as error:
                outcomes[i] = GenomeOutcome(
                    score=math.inf,
                    failure=explorer._failure(genomes[i], error,
                                              stage="sw-lowering"))
                mappings_by_index.pop(i)
                continue
            except ChrysalisError as error:
                outcomes[i] = GenomeOutcome(
                    score=math.inf,
                    failure=explorer._failure(genomes[i], error,
                                              stage="hw-fitness"))
                mappings_by_index.pop(i)
                continue
            with_design.append(i)
        metrics_by_env: List[List[InferenceMetrics]] = []
        if with_design:
            design_list = [designs[i] for i in with_design]
            try:
                for environment in self.environments:
                    model = BatchAnalyticalModel(self.network, environment,
                                                 explorer.checkpoint)
                    metrics_by_env.append(model.evaluate_many(design_list))
            except ChrysalisError as error:
                logger.warning(
                    "batched pricing failed (%s: %s); falling back to scalar "
                    "evaluation for %d genome(s)",
                    type(error).__name__, error, len(with_design))
                for i in with_design:
                    probe_hits.pop(i, None)
                    mappings_by_index.pop(i, None)
                    fallback.append(i)
                with_design = []
                metrics_by_env = []

        # 4. Assemble outcomes: the first-infeasible-environment
        # protocol, objective scoring, Pareto points and the per-genome
        # time-budget check, mirroring BilevelExplorer._compute_outcome.
        vector_count = n - len(fallback)
        share = ((time.monotonic() - started) / vector_count
                 if vector_count else 0.0)
        budget = explorer.candidate_time_budget_s
        for position, i in enumerate(with_design):
            design: Optional["AuTDesign"] = designs[i]
            score = math.inf
            point: Optional[Tuple[float, float]] = None
            failure = None
            if budget is not None and share > budget:
                timeout = EvaluationTimeout(
                    f"candidate evaluation exceeded its "
                    f"{budget:.3g} s budget"
                )
                failure = explorer._failure(genomes[i], timeout,
                                            stage="hw-fitness")
                design = None
            else:
                collected: List[InferenceMetrics] = []
                final: Optional[InferenceMetrics] = None
                for env_metrics in metrics_by_env:
                    metrics = env_metrics[position]
                    if not metrics.feasible:
                        final = metrics
                        break
                    collected.append(metrics)
                if final is None:
                    final = _average_metrics(collected)
                score = explorer.objective.score(design, final)
                if final.feasible and math.isfinite(final.e2e_latency):
                    latency = final.sustained_period or final.e2e_latency
                    point = (design.energy.panel_area_cm2, latency)
            outcomes[i] = GenomeOutcome(
                score=score,
                design=design if math.isfinite(score) else None,
                point=point,
                failure=failure,
            )
        for i, mappings in mappings_by_index.items():
            if mappings is None and outcomes[i] is None:
                # Unmappable projection: infinite score, no failure
                # record — exactly what lower_genome() returning None
                # produces on the scalar path.
                outcomes[i] = GenomeOutcome(score=math.inf)

        # 5. Per-genome bookkeeping.  Mapper counters replay the scalar
        # accounting probe-for-probe; the generation's layer-cost cache
        # activity (rung tables + final pricing) is attributed to the
        # first vectorized outcome — apply_outcome() only ever sums
        # these deltas, so totals are what matters.
        layer_hits1, layer_misses1 = layer_cost_cache_stats()
        layer_delta: Optional[Tuple[int, int]] = (
            layer_hits1 - layer_hits0, layer_misses1 - layer_misses0)
        for i in range(n):
            outcome = outcomes[i]
            if outcome is None:
                continue
            outcome.eval_seconds = share
            if i in probe_hits:
                if probe_hits[i]:
                    outcome.mapper_hits = 1
                else:
                    outcome.mapper_misses = 1
            if layer_delta is not None:
                outcome.layer_cost_hits, outcome.layer_cost_misses = (
                    layer_delta)
                layer_delta = None

        # 6. Scalar oracle fallback for anything the sweep could not
        # price; compute_outcome re-does its own accounting from scratch.
        for i in fallback:
            outcomes[i] = explorer.compute_outcome(genomes[i])
        explorer.stats.batched_sweeps += 1
        explorer.stats.batched_genomes += vector_count
        explorer.stats.scalar_fallbacks += len(fallback)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- SW-level search, vectorized ------------------------------------------

    def _resolve_group(self, inference: object, indices: List[int],
                       seeded: List[Optional["AuTDesign"]],
                       keys: List[Optional[tuple]],
                       out_mappings: Dict[int, Optional[Tuple[LayerMapping,
                                                              ...]]],
                       probe_hits: Dict[int, bool]) -> None:
        """Memo-probe one hardware group; sweep the unseen projections.

        Counter semantics mirror the serial path exactly: the first
        occurrence of an unseen key is a miss, later occurrences in the
        same generation are hits (serially, the memo is filled before
        they probe) — unless the memo is disabled, in which case every
        genome is a miss and the scan result is merely shared.
        """
        explorer = self.explorer
        memo_on = mapper_memo_enabled()
        resolved: Dict[tuple, Optional[Tuple[LayerMapping, ...]]] = {}
        pending: Dict[tuple, List[int]] = {}
        scan_keys: List[tuple] = []
        scan_designs: List["AuTDesign"] = []
        for i in indices:
            key = keys[i]
            if key in resolved:
                probe_hits[i] = memo_on
                if memo_on:
                    explorer.mapper.memo_note_hit()
                out_mappings[i] = resolved[key]
                continue
            if key in pending:
                probe_hits[i] = memo_on
                if memo_on:
                    explorer.mapper.memo_note_hit()
                pending[key].append(i)
                continue
            hit, mappings = explorer.mapper.memo_probe(key)
            probe_hits[i] = hit
            if hit:
                resolved[key] = mappings
                out_mappings[i] = mappings
            else:
                pending[key] = [i]
                scan_keys.append(key)
                scan_designs.append(seeded[i])  # type: ignore[arg-type]
        if not scan_keys:
            return
        scanned = self._scan(inference, scan_designs)
        for key, mappings in zip(scan_keys, scanned):
            explorer.mapper.memo_fill(key, mappings)
            for i in pending[key]:
                out_mappings[i] = mappings

    def _scan(self, inference: object, designs: List["AuTDesign"]
              ) -> List[Optional[Tuple[LayerMapping, ...]]]:
        """Best mapping per layer per design — the vectorized optimizer.

        Equivalent to ``MappingOptimizer.optimize`` for every design:
        per layer, a rung is usable when Eq. 8 holds in *every*
        environment; within each (style, dims) combo the first feasible
        ladder rung wins; across combos the lowest mean energy wins with
        strict-``<`` (first combo in scan order on ties).  A layer with
        no usable rung makes the design unmappable (``None``).
        """
        tables = self._tables_for(inference)
        count = len(designs)
        n_env = len(self.environments)
        stored = np.empty(count)
        buck = np.empty(count)
        net = np.empty((n_env, count))
        for g, design in enumerate(designs):
            energy = design.energy
            pmic = energy.pmic
            # Pure Python on purpose: the ** must be CPython's pow for
            # bit-identity with AnalyticalModel's properties.
            stored[g] = 0.5 * energy.capacitance_f * (
                pmic.v_on**2 - pmic.v_off**2)
            buck[g] = pmic.buck_efficiency
            leak = energy.k_cap * energy.capacitance_f * pmic.v_on**2
            for e, environment in enumerate(self.environments):
                p_eh = energy.build_panel().power(environment.k_eh)
                net[e, g] = pmic.charge_power(p_eh) - leak

        results: List[Optional[List[LayerMapping]]] = [
            [] for _ in range(count)]
        for table in tables:
            rungs = len(table.mappings)
            if rungs == 0:
                # No valid (style, dims) combo at all: the layer is
                # unmappable on this hardware for every energy design.
                return [None] * count
            tile_time = table.tile_time[None, :]
            tile_energy = table.tile_energy[None, :]
            feasible = np.ones((count, rungs), dtype=bool)
            for e in range(n_env):
                available = (stored[:, None] + np.maximum(
                    net[e][:, None] * tile_time, 0.0)) * buck[:, None]
                feasible &= tile_energy <= available
            best_score = np.full(count, math.inf)
            best_rung = np.full(count, -1, dtype=np.int64)
            for start, end in table.slices:
                window = feasible[:, start:end]
                usable = window.any(axis=1)
                if not usable.any():
                    continue
                first = np.argmax(window, axis=1) + start
                score = np.where(usable, table.score[first], math.inf)
                better = score < best_score
                best_score = np.where(better, score, best_score)
                best_rung = np.where(better, first, best_rung)
            for g in range(count):
                row = results[g]
                if row is None:
                    continue
                rung = int(best_rung[g])
                if rung < 0:
                    results[g] = None
                else:
                    row.append(table.mappings[rung])
        return [tuple(row) if row is not None else None for row in results]

    def _tables_for(self, inference: object) -> List[_RungTable]:
        tables = self._tables.get(inference)
        if tables is None:
            hardware = inference.build()  # type: ignore[attr-defined]
            checkpoint = self.explorer.checkpoint or CheckpointModel(
                nvm=hardware.nvm.technology
            )
            cost_model = DataflowCostModel(hardware, checkpoint)
            tables = [self._build_table(cost_model, layer)
                      for layer in self.network]
            self._tables[inference] = tables
        return tables

    def _build_table(self, cost_model: DataflowCostModel,
                     layer: Layer) -> _RungTable:
        """Price every candidate the scalar scan could visit, once."""
        mapper = self.explorer.mapper
        dims = layer.dims()
        mappings: List[LayerMapping] = []
        costs: List[LayerCost] = []
        slices: List[Tuple[int, int]] = []
        for style in mapper.styles:
            for tile_dim, spatial_dim in mapper._dim_pairs(layer):
                # Pricing errors are n_tiles-independent (style/layer
                # geometry), so one failure invalidates the whole combo
                # — the same corner _best_for_layer skips.
                try:
                    ladder = _ladder(mapper, dims, style, tile_dim,
                                     spatial_dim)
                    priced = cost_model.layer_cost_batch(layer, ladder)
                except MappingError as error:
                    logger.debug(
                        "skipping %s %s/%s on %s: %s", style.value,
                        tile_dim, spatial_dim, layer.name, error)
                    continue
                start = len(mappings)
                mappings.extend(ladder)
                costs.extend(priced)
                slices.append((start, len(mappings)))
        scores: List[float] = []
        for cost in costs:
            total = 0.0  # _mean_energy's accumulation, verbatim
            for _ in range(len(self.environments)):
                total += cost.energy
            scores.append(total / len(self.environments))
        return _RungTable(
            mappings=mappings,
            costs=costs,
            tile_energy=np.array([cost.tile.energy for cost in costs]),
            tile_time=np.array([cost.tile.total_time for cost in costs]),
            score=np.array(scores),
            slices=slices,
        )


def _ladder(mapper, dims: Dict[str, int], style, tile_dim: str,
            spatial_dim: str) -> List[LayerMapping]:
    """The exact rung sequence ``_min_feasible`` scans, materialized."""
    bound = dims[tile_dim]
    rungs: List[LayerMapping] = []
    n = 1
    while True:
        rungs.append(LayerMapping(style=style, n_tiles=n, tile_dim=tile_dim,
                                  spatial_dim=spatial_dim))
        if n >= bound:
            break
        n = min(n * 2, bound)
    secondary = mapper._secondary_dim(dims, tile_dim, spatial_dim)
    if secondary is not None:
        bound2 = dims[secondary]
        n2 = 2
        while True:
            rungs.append(LayerMapping(style=style, n_tiles=bound,
                                      tile_dim=tile_dim,
                                      spatial_dim=spatial_dim,
                                      secondary_dim=secondary,
                                      n_tiles_2=min(n2, bound2)))
            if n2 >= bound2:
                break
            n2 = min(n2 * 2, bound2)
    return rungs
