"""Genetic-algorithm engine — the HW-level optimizer's search core.

The paper implements its explorer "based on the open-source library
Optuna and utilize[s] a genetic algorithm to generate potential
architecture configurations".  Optuna is unavailable offline, so this is
a self-contained GA with the standard ingredients: tournament selection,
uniform crossover, per-gene gaussian mutation, and elitism.

The engine is generic over genomes: it only needs a
:class:`~repro.explore.space.DesignSpace` (sample / mutate / crossover)
and a fitness callable (lower is better).
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ChrysalisError, ConfigurationError, SearchError
from repro.explore.failures import FailureLog, describe_genome
from repro.explore.space import DesignSpace, Genome

Fitness = Callable[[Genome], float]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    Invalid hyper-parameters raise :class:`ConfigurationError` (they
    describe a malformed *configuration*, not a failed *search*); until
    v1.0 they raised :class:`SearchError` — both remain catchable as
    :class:`~repro.errors.ChrysalisError`.
    """

    population_size: int = 16
    generations: int = 10
    tournament_size: int = 3
    elite_count: int = 2
    crossover_rate: float = 0.7
    mutation_rate: float = 0.4
    mutation_scale: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be at least 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size outside [1, population_size]")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count outside [0, population_size)")


@dataclass
class EvaluatedGenome:
    genome: Genome
    fitness: float


@dataclass
class GAHistory:
    """Per-generation best/mean fitness, for convergence plots."""

    best: List[float] = field(default_factory=list)
    mean: List[float] = field(default_factory=list)
    evaluations: int = 0


class GeneticAlgorithm:
    """Minimises ``fitness`` over ``space``."""

    def __init__(self, space: DesignSpace, fitness: Fitness,
                 config: Optional[GAConfig] = None,
                 seeds: Optional[List[Genome]] = None,
                 failure_log: Optional[FailureLog] = None) -> None:
        self.space = space
        self.fitness = fitness
        self.config = config or GAConfig()
        self.seeds = list(seeds) if seeds else []
        self.rng = random.Random(self.config.seed)
        self.history = GAHistory()
        #: Candidate failures absorbed during this run; pass a shared
        #: log to aggregate across search layers (the bi-level explorer
        #: does) or read this run-local one afterwards.
        self.failures = failure_log if failure_log is not None else FailureLog()
        self._cache: dict = {}

    # -- public API -----------------------------------------------------------

    def run(self) -> Tuple[Genome, float]:
        """Returns (best genome, best fitness).

        Raises :class:`SearchError` if every evaluated genome scored
        infinity (nothing in the space is feasible).
        """
        cfg = self.config
        initial = [dict(seed) for seed in self.seeds[:cfg.population_size]]
        while len(initial) < cfg.population_size:
            initial.append(self.space.sample(self.rng))
        population = [self._evaluate(genome) for genome in initial]
        best = min(population, key=lambda e: e.fitness)
        self._record(population)

        for _ in range(cfg.generations - 1):
            population = self._next_generation(population)
            generation_best = min(population, key=lambda e: e.fitness)
            if generation_best.fitness < best.fitness:
                best = generation_best
            self._record(population)

        if math.isinf(best.fitness):
            raise SearchError(
                "no feasible genome found: every candidate scored infinity"
            )
        return best.genome, best.fitness

    # -- internals ----------------------------------------------------------------

    def _evaluate(self, genome: Genome) -> EvaluatedGenome:
        key = tuple(sorted((k, _hashable(v)) for k, v in genome.items()))
        if key not in self._cache:
            try:
                fitness = self.fitness(genome)
            except ChrysalisError as error:
                # One broken candidate must not kill the whole search:
                # absorb, penalize, and keep an auditable record.
                fitness = math.inf
                self.failures.record(
                    candidate=describe_genome(genome), error=error,
                    penalty=fitness, stage="hw-fitness",
                )
                logger.warning("absorbed %s for candidate %s: %s",
                               type(error).__name__,
                               describe_genome(genome), error)
            self._cache[key] = fitness
            self.history.evaluations += 1
        return EvaluatedGenome(genome, self._cache[key])

    def _select(self, population: List[EvaluatedGenome]) -> Genome:
        contenders = self.rng.sample(population, self.config.tournament_size)
        return min(contenders, key=lambda e: e.fitness).genome

    def _next_generation(
        self, population: List[EvaluatedGenome]
    ) -> List[EvaluatedGenome]:
        cfg = self.config
        ranked = sorted(population, key=lambda e: e.fitness)
        next_pop = list(ranked[:cfg.elite_count])
        while len(next_pop) < cfg.population_size:
            parent_a = self._select(population)
            if self.rng.random() < cfg.crossover_rate:
                parent_b = self._select(population)
                child = self.space.crossover(parent_a, parent_b, self.rng)
            else:
                child = dict(parent_a)
            child = self.space.mutate(child, self.rng,
                                      rate=cfg.mutation_rate,
                                      scale=cfg.mutation_scale)
            next_pop.append(self._evaluate(child))
        return next_pop

    def _record(self, population: List[EvaluatedGenome]) -> None:
        finite = [e.fitness for e in population if math.isfinite(e.fitness)]
        self.history.best.append(min((e.fitness for e in population),
                                     default=math.inf))
        self.history.mean.append(
            sum(finite) / len(finite) if finite else math.inf
        )
        logger.debug(
            "generation %d: best=%.6g mean=%.6g evaluations=%d",
            len(self.history.best), self.history.best[-1],
            self.history.mean[-1], self.history.evaluations,
        )


def _hashable(value: object) -> object:
    """Genome values are floats/ints/enums; round floats for cache keys."""
    if isinstance(value, float):
        return round(value, 12)
    return value
