"""Genetic-algorithm engine — the HW-level optimizer's search core.

The paper implements its explorer "based on the open-source library
Optuna and utilize[s] a genetic algorithm to generate potential
architecture configurations".  Optuna is unavailable offline, so this is
a self-contained GA with the standard ingredients: tournament selection,
uniform crossover, per-gene gaussian mutation, and elitism.

The engine is generic over genomes: it only needs a
:class:`~repro.explore.space.DesignSpace` (sample / mutate / crossover)
and a fitness callable (lower is better).
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

from repro.errors import ChrysalisError, ConfigurationError, SearchError
from repro.explore.failures import FailureLog, describe_genome
from repro.explore.space import DesignSpace, Genome
from repro.obs.state import span

Fitness = Callable[[Genome], float]

logger = logging.getLogger(__name__)


def genome_key(genome: Genome) -> tuple:
    """Canonical hashable key of a genome (order-insensitive).

    Floats are rounded to 12 significant decimals so that values which
    only differ by representation noise share a cache entry.  Shared by
    the GA's fitness cache and the bi-level explorer's design cache.
    """
    return tuple(sorted((k, _hashable(v)) for k, v in genome.items()))


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    Invalid hyper-parameters raise :class:`ConfigurationError` (they
    describe a malformed *configuration*, not a failed *search*); until
    v1.0 they raised :class:`SearchError` — both remain catchable as
    :class:`~repro.errors.ChrysalisError`.
    """

    population_size: int = 16
    generations: int = 10
    tournament_size: int = 3
    elite_count: int = 2
    crossover_rate: float = 0.7
    mutation_rate: float = 0.4
    mutation_scale: float = 0.3
    seed: int = 0
    #: Worker processes for fitness evaluation.  1 = serial (default);
    #: N > 1 evaluates each generation's uncached genomes concurrently
    #: (generation-synchronous, so results are identical to serial).
    workers: int = 1
    #: Vectorized in-process evaluation: each generation's uncached
    #: genomes are priced as one numpy sweep
    #: (:class:`repro.explore.batch_eval.VectorizedGenomeEvaluator`),
    #: bit-identical to the scalar path.  Mutually exclusive with
    #: ``workers > 1`` — the sweep already amortizes what the pool
    #: parallelizes, and combining them would interleave two different
    #: cache-accounting protocols.
    batched: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be at least 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError(
                "tournament_size outside [1, population_size]")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count outside [0, population_size)")
        if self.workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if self.batched and self.workers > 1:
            raise ConfigurationError(
                "batched evaluation is in-process; use batched=True with "
                "workers=1, or workers>1 without batched")


class BatchEvaluator(Protocol):
    """Evaluates a batch of genomes; owns its own error absorption.

    ``evaluate_many`` must return one lower-is-better fitness per
    genome, in order (``math.inf`` for penalized candidates).  See
    :class:`repro.explore.parallel.ParallelGenomeEvaluator`.
    """

    def evaluate_many(self, genomes: List[Genome]) -> List[float]:
        ...


@dataclass
class EvaluatedGenome:
    genome: Genome
    fitness: float


@dataclass
class GAHistory:
    """Per-generation best/mean fitness, for convergence plots."""

    best: List[float] = field(default_factory=list)
    mean: List[float] = field(default_factory=list)
    evaluations: int = 0


class GeneticAlgorithm:
    """Minimises ``fitness`` over ``space``."""

    def __init__(self, space: DesignSpace, fitness: Fitness,
                 config: Optional[GAConfig] = None,
                 seeds: Optional[List[Genome]] = None,
                 failure_log: Optional[FailureLog] = None,
                 batch_evaluator: Optional["BatchEvaluator"] = None) -> None:
        self.space = space
        self.fitness = fitness
        self.config = config or GAConfig()
        self.seeds = list(seeds) if seeds else []
        self.rng = random.Random(self.config.seed)
        self.history = GAHistory()
        #: Candidate failures absorbed during this run; pass a shared
        #: log to aggregate across search layers (the bi-level explorer
        #: does) or read this run-local one afterwards.
        self.failures = failure_log if failure_log is not None else FailureLog()
        #: Optional batch evaluator (e.g. a process pool).  When given,
        #: each generation's *uncached* genomes are handed over in one
        #: call; the evaluator owns error absorption for that path.
        self.batch_evaluator = batch_evaluator
        self._cache: dict = {}

    # -- public API -----------------------------------------------------------

    def run(self) -> Tuple[Genome, float]:
        """Returns (best genome, best fitness).

        Raises :class:`SearchError` if every evaluated genome scored
        infinity (nothing in the space is feasible).
        """
        with span("ga.run"):
            return self._run()

    def _run(self) -> Tuple[Genome, float]:
        cfg = self.config
        initial = [dict(seed) for seed in self.seeds[:cfg.population_size]]
        while len(initial) < cfg.population_size:
            initial.append(self.space.sample(self.rng))
        with span("ga.generation", gen=0):
            population = self._evaluate_batch(initial)
        best = min(population, key=lambda e: e.fitness)
        self._record(population)

        for gen in range(1, cfg.generations):
            with span("ga.generation", gen=gen):
                population = self._next_generation(population)
            generation_best = min(population, key=lambda e: e.fitness)
            if generation_best.fitness < best.fitness:
                best = generation_best
            self._record(population)

        if math.isinf(best.fitness):
            raise SearchError(
                "no feasible genome found: every candidate scored infinity"
            )
        return best.genome, best.fitness

    # -- internals ----------------------------------------------------------------

    def _evaluate(self, genome: Genome) -> EvaluatedGenome:
        return self._evaluate_batch([genome])[0]

    def _evaluate_batch(self, genomes: List[Genome]) -> List[EvaluatedGenome]:
        """Evaluate one generation's genomes, deduplicated and cached.

        Only genomes whose key is neither cached nor repeated earlier in
        the batch reach the fitness function — exactly the set the
        serial one-at-a-time path would have evaluated, so counters and
        failure records are identical in both modes.
        """
        keys = [genome_key(genome) for genome in genomes]
        fresh: List[Genome] = []
        fresh_keys: List[tuple] = []
        seen = set()
        for genome, key in zip(genomes, keys):
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            fresh.append(genome)
            fresh_keys.append(key)
        if fresh:
            scores = self._evaluate_fresh(fresh)
            for key, score in zip(fresh_keys, scores):
                self._cache[key] = score
                self.history.evaluations += 1
        return [EvaluatedGenome(genome, self._cache[key])
                for genome, key in zip(genomes, keys)]

    def _evaluate_fresh(self, genomes: List[Genome]) -> List[float]:
        if self.batch_evaluator is not None:
            return self.batch_evaluator.evaluate_many(genomes)
        return [self._evaluate_one(genome) for genome in genomes]

    def _evaluate_one(self, genome: Genome) -> float:
        try:
            return self.fitness(genome)
        except ChrysalisError as error:
            # One broken candidate must not kill the whole search:
            # absorb, penalize, and keep an auditable record.
            self.failures.record(
                candidate=describe_genome(genome), error=error,
                penalty=math.inf, stage="hw-fitness",
            )
            logger.warning("absorbed %s for candidate %s: %s",
                           type(error).__name__,
                           describe_genome(genome), error)
            return math.inf

    def _select(self, population: List[EvaluatedGenome]) -> Genome:
        contenders = self.rng.sample(population, self.config.tournament_size)
        return min(contenders, key=lambda e: e.fitness).genome

    def _next_generation(
        self, population: List[EvaluatedGenome]
    ) -> List[EvaluatedGenome]:
        cfg = self.config
        ranked = sorted(population, key=lambda e: e.fitness)
        next_pop = list(ranked[:cfg.elite_count])
        # Breed the full generation first (the RNG stream only depends
        # on the parent population), then evaluate it as one batch so a
        # parallel evaluator can fan the uncached genomes out.
        children: List[Genome] = []
        while len(next_pop) + len(children) < cfg.population_size:
            parent_a = self._select(population)
            if self.rng.random() < cfg.crossover_rate:
                parent_b = self._select(population)
                child = self.space.crossover(parent_a, parent_b, self.rng)
            else:
                child = dict(parent_a)
            child = self.space.mutate(child, self.rng,
                                      rate=cfg.mutation_rate,
                                      scale=cfg.mutation_scale)
            children.append(child)
        next_pop.extend(self._evaluate_batch(children))
        return next_pop

    def _record(self, population: List[EvaluatedGenome]) -> None:
        finite = [e.fitness for e in population if math.isfinite(e.fitness)]
        self.history.best.append(min((e.fitness for e in population),
                                     default=math.inf))
        self.history.mean.append(
            sum(finite) / len(finite) if finite else math.inf
        )
        logger.debug(
            "generation %d: best=%.6g mean=%.6g evaluations=%d",
            len(self.history.best), self.history.best[-1],
            self.history.mean[-1], self.history.evaluations,
        )


def _hashable(value: object) -> object:
    """Genome values are floats/ints/enums; round floats for cache keys."""
    if isinstance(value, float):
        return round(value, 12)
    return value
