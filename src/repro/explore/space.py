"""Design-space definitions (Tables IV and V of the paper).

A :class:`DesignSpace` is an ordered set of :class:`ParameterSpec`
genes.  The HW-level optimizer works on *genomes*: plain dictionaries
mapping gene names to values.  :meth:`DesignSpace.to_design` lowers a
genome (plus per-layer mappings from the SW-level search) into the
:class:`~repro.design.AuTDesign` the evaluator prices.

Spaces:

* :meth:`DesignSpace.existing_aut` — Table IV: solar panel 1-30 cm^2,
  capacitor 1 uF - 10 mF; the inference hardware is the fixed
  MSP430FR5994 (tile sizes are the SW level's job).
* :meth:`DesignSpace.future_aut` — Table V: the same energy knobs plus
  architecture {TPU, Eyeriss}, PE count 1-168 and per-PE cache
  128 B - 2 KB.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.errors import DesignSpaceError
from repro.hardware.accelerators import AcceleratorFamily
from repro.units import mF, uF

Genome = Dict[str, object]


@dataclass(frozen=True)
class ParameterSpec:
    """One searchable gene.

    ``kind`` selects the sampling law:

    * ``"float_log"`` / ``"int_log"`` — log-uniform over [low, high]
      (capacitors span four decades; linear sampling would almost never
      propose a small one);
    * ``"float"`` / ``"int"`` — uniform over [low, high];
    * ``"choice"`` — uniform over ``choices``.
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 0.0
    choices: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.kind in ("float", "float_log", "int", "int_log"):
            if not self.low < self.high:
                raise DesignSpaceError(
                    f"{self.name}: need low < high, got [{self.low}, {self.high}]"
                )
            if self.kind.endswith("_log") and self.low <= 0:
                raise DesignSpaceError(
                    f"{self.name}: log-scale parameters need low > 0"
                )
        elif self.kind == "choice":
            if not self.choices:
                raise DesignSpaceError(f"{self.name}: empty choice list")
        else:
            raise DesignSpaceError(f"{self.name}: unknown kind {self.kind!r}")

    # -- sampling ---------------------------------------------------------------

    def sample(self, rng: random.Random) -> object:
        if self.kind == "choice":
            return rng.choice(self.choices)
        if self.kind == "float":
            return rng.uniform(self.low, self.high)
        if self.kind == "float_log":
            return math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        if self.kind == "int":
            return rng.randint(int(self.low), int(self.high))
        # int_log
        value = math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        return max(int(self.low), min(int(self.high), round(value)))

    def mutate(self, value: object, rng: random.Random,
               scale: float = 0.3) -> object:
        """Local perturbation of ``value`` (gaussian in the gene's metric)."""
        if self.kind == "choice":
            return rng.choice(self.choices)
        if self.kind in ("float", "int"):
            span = (self.high - self.low) * scale
            perturbed = float(value) + rng.gauss(0.0, span)
        else:
            log_span = (math.log(self.high) - math.log(self.low)) * scale
            perturbed = math.exp(math.log(max(float(value), self.low))
                                 + rng.gauss(0.0, log_span))
        perturbed = min(max(perturbed, self.low), self.high)
        if self.kind.startswith("int"):
            return max(int(self.low), min(int(self.high), round(perturbed)))
        return perturbed


@dataclass(frozen=True)
class DesignSpace:
    """An ordered collection of genes plus the lowering to AuTDesign."""

    parameters: Tuple[ParameterSpec, ...]
    fixed: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.parameters]
        if len(names) != len(set(names)):
            raise DesignSpaceError(f"duplicate parameter names in {names}")
        overlap = set(names) & {name for name, _ in self.fixed}
        if overlap:
            raise DesignSpaceError(
                f"parameters both searched and fixed: {sorted(overlap)}"
            )

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def existing_aut(cls) -> "DesignSpace":
        """Table IV: EH knobs only; the platform is the MSP430."""
        return cls(parameters=(
            ParameterSpec("panel_area_cm2", "float", 1.0, 30.0),
            ParameterSpec("capacitance_f", "float_log", uF(1), mF(10)),
        ), fixed=(("family", AcceleratorFamily.MSP430),))

    @classmethod
    def future_aut(cls,
                   families: Sequence[AcceleratorFamily] = (
                       AcceleratorFamily.TPU, AcceleratorFamily.EYERISS,
                   ),
                   dvfs: bool = False) -> "DesignSpace":
        """Table V: EH knobs + accelerator architecture knobs.

        ``dvfs=True`` adds the clock-scaling gene (an extension beyond
        the paper's space): 0.25x-2x the nominal clock, with quadratic
        per-MAC energy scaling.
        """
        parameters = [
            ParameterSpec("panel_area_cm2", "float", 1.0, 30.0),
            ParameterSpec("capacitance_f", "float_log", uF(1), mF(10)),
            ParameterSpec("family", "choice", choices=tuple(families)),
            ParameterSpec("n_pes", "int_log", 1, 168),
            ParameterSpec("cache_bytes_per_pe", "int_log", 128, 2048),
        ]
        if dvfs:
            parameters.append(
                ParameterSpec("clock_scale", "float_log", 0.25, 2.0))
        return cls(parameters=tuple(parameters))

    # -- genome plumbing ----------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [spec.name for spec in self.parameters]

    def spec(self, name: str) -> ParameterSpec:
        for candidate in self.parameters:
            if candidate.name == name:
                return candidate
        raise DesignSpaceError(f"no parameter named {name!r}")

    def sample(self, rng: random.Random) -> Genome:
        genome: Genome = {spec.name: spec.sample(rng) for spec in self.parameters}
        genome.update(self.fixed)
        return genome

    def seed_genomes(self) -> List[Genome]:
        """Deterministic warm-start genomes for the HW-level search.

        Three anchors: the mid-point of every range (geometric mid for
        log-scaled genes), the literature configuration (10 cm^2 panel,
        100 uF capacitor, 64 PEs, 512 B caches — the values published
        EH-IoT systems deploy), and the upper-bound corner.  Seeding the
        GA with these makes small search budgets behave like the paper's
        much larger ones: the search starts from known-reasonable points
        and spends its evaluations improving, not rediscovering, them.
        """
        literature = {
            "panel_area_cm2": 10.0,
            "capacitance_f": 1e-4,
            "n_pes": 64,
            "cache_bytes_per_pe": 512,
            "clock_scale": 1.0,
        }

        def build(pick) -> Genome:
            genome: Genome = {}
            for spec in self.parameters:
                genome[spec.name] = pick(spec)
            genome.update(self.fixed)
            return genome

        def mid(spec: ParameterSpec) -> object:
            if spec.kind == "choice":
                return spec.choices[0]
            if spec.kind.endswith("_log"):
                value = math.exp((math.log(spec.low) + math.log(spec.high))
                                 / 2.0)
            else:
                value = (spec.low + spec.high) / 2.0
            if spec.kind.startswith("int"):
                return max(int(spec.low), min(int(spec.high), round(value)))
            return value

        def from_literature(spec: ParameterSpec) -> object:
            if spec.name in literature:
                value = literature[spec.name]
                return (min(max(value, spec.low), spec.high)
                        if spec.kind != "choice" else value)
            return mid(spec)

        def high(spec: ParameterSpec) -> object:
            if spec.kind == "choice":
                return spec.choices[-1]
            if spec.kind.startswith("int"):
                return int(spec.high)
            return spec.high

        def low_energy_corner(spec: ParameterSpec) -> object:
            # Smallest harvester with workable storage and mid-range
            # compute: the anchor the "minimise panel" objective needs
            # in the pool (a minimum-capacitance corner would be
            # infeasible for every real workload).
            if spec.name == "panel_area_cm2":
                return spec.low
            return from_literature(spec)

        return [build(mid), build(from_literature), build(high),
                build(low_energy_corner)]

    def mutate(self, genome: Genome, rng: random.Random,
               rate: float = 0.4, scale: float = 0.3) -> Genome:
        child = dict(genome)
        for spec in self.parameters:
            if rng.random() < rate:
                child[spec.name] = spec.mutate(genome[spec.name], rng, scale)
        return child

    def crossover(self, a: Genome, b: Genome, rng: random.Random) -> Genome:
        child = dict(a)
        for spec in self.parameters:
            if rng.random() < 0.5:
                child[spec.name] = b[spec.name]
        return child

    def restricted(self, **fixed_values: object) -> "DesignSpace":
        """A copy with some genes frozen — how Table VI ablations are built.

        ``restricted(capacitance_f=1e-4)`` removes the capacitor gene
        from the search and pins it at 100 uF.
        """
        known = set(self.names) | {name for name, _ in self.fixed}
        unknown = set(fixed_values) - known
        if unknown:
            raise DesignSpaceError(
                f"cannot fix unknown parameters: {sorted(unknown)}"
            )
        remaining = tuple(spec for spec in self.parameters
                          if spec.name not in fixed_values)
        fixed = dict(self.fixed)
        fixed.update(fixed_values)
        return DesignSpace(parameters=remaining,
                           fixed=tuple(sorted(fixed.items(), key=lambda kv: kv[0])))

    # -- lowering ------------------------------------------------------------------------

    def to_design(self, genome: Genome,
                  mappings: Tuple[LayerMapping, ...]) -> AuTDesign:
        """Combine a HW genome with SW-level mappings into a design."""
        family = genome.get("family", AcceleratorFamily.MSP430)
        if family is AcceleratorFamily.MSP430:
            inference = InferenceDesign.msp430()
        else:
            inference = InferenceDesign(
                family=family,
                n_pes=int(genome.get("n_pes", 64)),
                cache_bytes_per_pe=int(genome.get("cache_bytes_per_pe", 512)),
                clock_scale=float(genome.get("clock_scale", 1.0)),
            )
        energy = EnergyDesign(
            panel_area_cm2=float(genome["panel_area_cm2"]),
            capacitance_f=float(genome["capacitance_f"]),
        )
        return AuTDesign(energy=energy, inference=inference, mappings=mappings)
