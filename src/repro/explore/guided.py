"""Surrogate-guided bi-level search: price only the promising slice.

:class:`SurrogateGuidedExplorer` subclasses the bi-level explorer and
interposes on generation evaluation: each generation's fresh genomes
are featurized and ranked by a :class:`~repro.surrogate.model.
SurrogateModel`; only the top ``keep_fraction`` slice is priced by the
full (optionally batched) oracle path, while the rest receive
*estimated* fitness values constructed to sit strictly above every
oracle-priced score of that generation.  The estimates preserve the
surrogate's ordering — the GA can still breed from "second tier"
candidates — but can never win a tournament against an oracle-priced
candidate, an elite slot, or the reported optimum.

Guarantees, by construction:

* **Winners are oracle-priced.**  Estimated scores are strictly worse
  than every finite oracle score of their generation, so the GA's
  global best is always an oracle score; :meth:`_finalize_best`
  additionally re-prices the winner if it ever was estimated and falls
  back to the best oracle-priced candidate seen.  Pareto points
  (``explorer.evaluated``) only ever come from oracle pricing.
* **``keep_fraction=1.0`` is bit-identical to plain bi-level search.**
  The pruning evaluator delegates wholesale (to the inner batched
  evaluator or the exact serial loop), performs no featurization
  before the oracle runs, and consumes no extra RNG — pinned by
  ``tests/test_guided_search.py``.

The model refits periodically from the rows the run itself priced
(censored at infinity for absorbed failures), so a cold start needs no
campaign store — and a store-trained model
(:func:`repro.surrogate.dataset.fit_from_store`) skips the warmup.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.bilevel import BilevelExplorer
from repro.explore.ga import GAConfig, genome_key
from repro.explore.objectives import Objective
from repro.explore.space import DesignSpace, Genome
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import OBS
from repro.surrogate.features import FeatureContext, Featurizer
from repro.surrogate.model import SurrogateModel
from repro.workloads.network import Network

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of the surrogate-guided search.

    ``keep_fraction`` is the oracle-priced share of each generation
    (1.0 = guide nothing, bit-identical to plain search); ``min_keep``
    floors the kept count so tiny populations never starve the oracle;
    ``warmup_generations`` are fully priced before pruning starts
    (they are also the model's first training data);
    ``explore_weight`` scales the distance-to-training-set exploration
    bonus during ranking; ``refit_every`` is the generation stride of
    in-run refits; ``min_train`` is the fewest finite examples worth
    fitting on.
    """

    keep_fraction: float = 0.3
    min_keep: int = 4
    warmup_generations: int = 1
    explore_weight: float = 0.5
    refit_every: int = 2
    min_train: int = 8
    kind: str = "ridge"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ConfigurationError("keep_fraction must be in (0, 1]")
        if self.min_keep < 1:
            raise ConfigurationError("min_keep must be at least 1")
        if self.warmup_generations < 0:
            raise ConfigurationError("warmup_generations must be >= 0")
        if self.explore_weight < 0.0:
            raise ConfigurationError("explore_weight must be >= 0")
        if self.refit_every < 1:
            raise ConfigurationError("refit_every must be at least 1")
        if self.min_train < 2:
            raise ConfigurationError("min_train must be at least 2")
        SurrogateModel(self.kind)  # validates the kind


class _SurrogatePruningEvaluator:
    """The batch evaluator the guided explorer hands the GA.

    Wraps the explorer's regular evaluator (vectorized, pooled, or the
    serial loop) and decides, per generation, which genomes reach it.
    """

    def __init__(self, explorer: "SurrogateGuidedExplorer", inner) -> None:
        self.explorer = explorer
        self.inner = inner
        self._generation = -1

    # -- the BatchEvaluator protocol ----------------------------------------

    def evaluate_many(self, genomes: List[Genome]) -> List[float]:
        self._generation += 1
        explorer = self.explorer
        config = explorer.surrogate_config
        if (config.keep_fraction >= 1.0
                or self._generation < config.warmup_generations
                or not explorer.model_ready()):
            scores = self._oracle(genomes)
            explorer.observe_oracle(genomes, scores)
            if config.keep_fraction < 1.0:
                explorer.maybe_refit(self._generation)
            return scores
        return self._evaluate_pruned(genomes)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    # -- internals -----------------------------------------------------------

    def _oracle(self, genomes: List[Genome]) -> List[float]:
        if not genomes:
            return []
        if self.inner is not None:
            return self.inner.evaluate_many(genomes)
        return [self.explorer.evaluate_genome(genome) for genome in genomes]

    def _evaluate_pruned(self, genomes: List[Genome]) -> List[float]:
        explorer = self.explorer
        config = explorer.surrogate_config
        order = explorer.rank_genomes(genomes)
        keep = max(config.min_keep,
                   math.ceil(config.keep_fraction * len(genomes)))
        kept_positions = sorted(order[:keep])  # original relative order
        pruned_positions = order[keep:]  # surrogate order, worst last
        kept = [genomes[i] for i in kept_positions]
        kept_scores = self._oracle(kept)
        explorer.observe_oracle(kept, kept_scores)

        scores: List[float] = [math.inf] * len(genomes)
        for position, score in zip(kept_positions, kept_scores):
            scores[position] = score
        finite = [s for s in kept_scores if math.isfinite(s)]
        if finite:
            # Estimates sit strictly above the generation's worst
            # oracle-priced score, spaced in surrogate rank order, so
            # pruned candidates stay breedable but can never outrank an
            # oracle-priced one.
            base = max(finite)
            spacing = max(abs(base) * 1e-6, 1e-9)
            for rank, position in enumerate(pruned_positions):
                scores[position] = base + spacing * (rank + 1)
        explorer.stats.surrogate_priced += len(kept)
        explorer.stats.surrogate_pruned += len(pruned_positions)
        if OBS.enabled:
            OBS.registry.counter("surrogate.priced").inc(len(kept))
            OBS.registry.counter("surrogate.pruned").inc(
                len(pruned_positions))
        explorer.maybe_refit(self._generation)
        return scores


class SurrogateGuidedExplorer(BilevelExplorer):
    """Bi-level search where a learned model triages each generation.

    Parameters beyond :class:`BilevelExplorer`'s:

    surrogate:
        The pruning/refit knobs (:class:`SurrogateConfig`).
    model:
        Optional pre-fitted :class:`~repro.surrogate.model.
        SurrogateModel` (e.g. from ``repro surrogate fit``).  A fitted
        model skips the in-run warmup: pruning starts at
        ``warmup_generations`` regardless, but with the store's
        knowledge instead of zero.
    """

    def __init__(self, network: Network, space: DesignSpace,
                 objective: Objective,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 ga_config: Optional[GAConfig] = None,
                 checkpoint: Optional[CheckpointModel] = None,
                 candidate_time_budget_s: Optional[float] = None,
                 surrogate: Optional[SurrogateConfig] = None,
                 model: Optional[SurrogateModel] = None) -> None:
        super().__init__(network, space, objective,
                         environments=environments, ga_config=ga_config,
                         checkpoint=checkpoint,
                         candidate_time_budget_s=candidate_time_budget_s)
        self.surrogate_config = surrogate or SurrogateConfig()
        self.model = model
        self.featurizer = Featurizer()
        self.feature_context = FeatureContext(
            network=self.network,
            environments=self.environments,
            objective=self.objective,
        )
        self._train_features: List = []
        self._train_labels: List[float] = []
        self._last_refit_generation = -1
        #: Every oracle-priced candidate of the current run, keyed by
        #: genome: the set reported winners must come from.
        self._oracle_scores: Dict[tuple, float] = {}
        self._best_oracle: Optional[Tuple[float, Genome]] = None

    # -- hooks into the base search ------------------------------------------

    def _reset_run_state(self) -> None:
        super()._reset_run_state()
        self._train_features = []
        self._train_labels = []
        self._last_refit_generation = -1
        self._oracle_scores = {}
        self._best_oracle = None

    def _build_batch_evaluator(self):
        return _SurrogatePruningEvaluator(self,
                                          super()._build_batch_evaluator())

    def _finalize_best(self, best_genome: Genome,
                       best_score: float) -> Tuple[Genome, float]:
        """Guarantee the reported winner was oracle-priced.

        The estimate construction already makes an estimated global
        best impossible; this closes the loop defensively — an
        estimated winner is re-priced, and the best oracle-priced
        candidate of the run wins any disagreement.
        """
        key = genome_key(best_genome)
        if key not in self._oracle_scores:
            logger.info("guided search: re-pricing estimated winner")
            best_score = self.evaluate_genome(best_genome)
            self.observe_oracle([best_genome], [best_score])
        else:
            best_score = self._oracle_scores[key]
        if self._best_oracle is not None and self._best_oracle[0] < best_score:
            best_score, best_genome = self._best_oracle
        return best_genome, best_score

    # -- surrogate plumbing (called by the pruning evaluator) ----------------

    def model_ready(self) -> bool:
        return self.model is not None and self.model.is_fitted

    def rank_genomes(self, genomes: List[Genome]) -> List[int]:
        """Candidate indices, most promising first."""
        features = self.featurizer.matrix_for_genomes(genomes,
                                                      self.feature_context)
        order = self.model.rank(features,
                                self.surrogate_config.explore_weight)
        return [int(index) for index in order]

    def observe_oracle(self, genomes: List[Genome],
                       scores: List[float]) -> None:
        """Fold oracle-priced candidates into the training buffer."""
        for genome, score in zip(genomes, scores):
            self._oracle_scores[genome_key(genome)] = score
            if (math.isfinite(score)
                    and (self._best_oracle is None
                         or score < self._best_oracle[0])):
                self._best_oracle = (score, dict(genome))
            self._train_features.append(
                self.featurizer.vector_for_genome(genome,
                                                  self.feature_context))
            self._train_labels.append(score)

    def maybe_refit(self, generation: int) -> None:
        """Refit from the run's own priced rows on the configured stride."""
        config = self.surrogate_config
        if generation + 1 < config.warmup_generations:
            return
        if (self.model_ready()
                and generation - self._last_refit_generation
                < config.refit_every):
            return
        finite = sum(1 for label in self._train_labels
                     if math.isfinite(label))
        if finite < config.min_train:
            return
        model = SurrogateModel(config.kind, seed=config.seed)
        try:
            model.fit(np.stack(self._train_features),
                      np.asarray(self._train_labels, dtype=np.float64))
        except ConfigurationError as error:
            logger.warning("surrogate refit failed, keeping previous "
                           "model: %s", error)
            return
        self.model = model
        self._last_refit_generation = generation
        self.stats.surrogate_refits += 1
        if OBS.enabled:
            OBS.registry.counter("surrogate.refits").inc()


__all__ = ["SurrogateConfig", "SurrogateGuidedExplorer"]
