"""Exception hierarchy for the CHRYSALIS reproduction.

Every error raised by the library derives from :class:`ChrysalisError`
so that callers can catch library failures with a single except clause
while still distinguishing the failure family when they need to.
"""

from __future__ import annotations


class ChrysalisError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ChrysalisError):
    """A component was constructed with physically meaningless parameters
    (negative capacitance, zero PEs, off-threshold above on-threshold, ...)."""


class DesignSpaceError(ChrysalisError):
    """A design-space definition or a sampled point is malformed."""


class MappingError(ChrysalisError):
    """A dataflow mapping is invalid for the layer or hardware it targets
    (tile does not divide the iteration space, buffer overflow, ...)."""


class SimulationError(ChrysalisError):
    """The step-based simulator reached an impossible state."""


class InfeasibleDesignError(ChrysalisError):
    """A candidate architecture can never complete the workload — for
    example the largest admissible tile still needs more energy than one
    full energy cycle can deliver (violates Eq. 8 of the paper)."""


class EvaluationTimeout(ChrysalisError):
    """A candidate evaluation exhausted its step or wall-clock budget.

    Raised by the step simulator when a run exceeds ``max_steps`` /
    ``time_budget_s``; the hardened explorer converts it into a fitness
    penalty instead of letting one runaway candidate stall the search."""


class FaultInjectionError(ChrysalisError):
    """A fault-injection configuration is malformed (negative rate,
    probability above one, non-positive correlation window, ...)."""


class SearchError(ChrysalisError):
    """The explorer could not produce a feasible solution (empty design
    space, every candidate infeasible, budget exhausted with no result)."""


class StoreError(ChrysalisError):
    """A campaign result store is unusable (corrupt SQLite file, schema
    version from a different library release, filesystem failure)."""


class ServeError(ChrysalisError):
    """Base class for evaluation-service failures (see repro.serve)."""


class ServiceOverloadError(ServeError):
    """The service's admission queue is full; the request was shed
    without being enqueued.  Clients should back off and retry."""


class ServiceClosedError(ServeError):
    """The service is not running (never started, draining, or
    stopped); the request was not accepted."""
