"""Processing-element array abstraction.

Both reconfigurable-accelerator families in the paper's Table V design
space are parameterised by the same two knobs CHRYSALIS searches:

* ``n_pes`` — the PE count (1 - 168 in the paper's space);
* ``cache_bytes_per_pe`` — the per-PE local buffer (128 B - 2 KB).

The per-MAC energy and throughput differ per family and are set by the
factories in :mod:`repro.hardware.accelerators`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PEArray:
    """An array of MAC processing elements with per-PE local caches.

    Parameters
    ----------
    n_pes:
        Number of processing elements.
    cache_bytes_per_pe:
        Local buffer per PE, bytes.
    mac_energy:
        Energy of one multiply-accumulate, J (datapath only; operand
        movement is charged by the dataflow cost model).
    clock_hz:
        PE clock.
    macs_per_cycle_per_pe:
        Issue width of one PE.
    cache_access_energy_per_byte:
        Energy to move one byte between a PE's cache and its datapath.
    static_power_per_pe:
        Leakage/clock overhead of one powered PE, W.
    """

    n_pes: int
    cache_bytes_per_pe: int
    mac_energy: float
    clock_hz: float
    macs_per_cycle_per_pe: int = 1
    cache_access_energy_per_byte: float = 0.01e-9
    static_power_per_pe: float = 5e-6

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ConfigurationError(f"n_pes must be positive, got {self.n_pes}")
        if self.cache_bytes_per_pe <= 0:
            raise ConfigurationError(
                f"cache_bytes_per_pe must be positive, got {self.cache_bytes_per_pe}"
            )
        if self.mac_energy < 0:
            raise ConfigurationError(
                f"mac_energy must be non-negative, got {self.mac_energy}"
            )
        if self.clock_hz <= 0:
            raise ConfigurationError(
                f"clock_hz must be positive, got {self.clock_hz}"
            )
        if self.macs_per_cycle_per_pe <= 0:
            raise ConfigurationError("macs_per_cycle_per_pe must be positive")

    @property
    def peak_macs_per_second(self) -> float:
        """Aggregate throughput with every PE busy, MACs/s."""
        return self.n_pes * self.macs_per_cycle_per_pe * self.clock_hz

    @property
    def macs_per_second_per_pe(self) -> float:
        return self.macs_per_cycle_per_pe * self.clock_hz

    @property
    def total_cache_bytes(self) -> int:
        return self.n_pes * self.cache_bytes_per_pe

    @property
    def static_power(self) -> float:
        """Leakage of the whole (powered) array, W."""
        return self.n_pes * self.static_power_per_pe

    def compute_time(self, macs: float, active_pes: int | None = None) -> float:
        """Seconds to execute ``macs`` on ``active_pes`` PEs (default all)."""
        if macs < 0:
            raise ConfigurationError(f"macs must be non-negative, got {macs}")
        pes = self.n_pes if active_pes is None else active_pes
        if not 0 < pes <= self.n_pes:
            raise ConfigurationError(
                f"active_pes={pes} outside [1, {self.n_pes}]"
            )
        return macs / (pes * self.macs_per_second_per_pe)

    def compute_energy(self, macs: float) -> float:
        """Datapath energy for ``macs`` multiply-accumulates, J."""
        return macs * self.mac_energy
