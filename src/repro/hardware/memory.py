"""Memory technologies and sized memory blocks.

Table II of the paper exposes three memory-related technology constants:

* ``e_r`` / ``e_w`` — energy to read / write one byte of NVM;
* ``p_mem`` — static power of each byte of (volatile) memory.

This module carries those constants per technology, plus bandwidths so
latency can be modelled too.  Default values are calibrated against the
MSP430FR5994 datasheet ballpark (FRAM at 8 MHz) and published SRAM
figures; they are ordinary constructor arguments, so experiments can
sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryTechnology:
    """Per-byte cost model of one memory technology.

    Parameters
    ----------
    name:
        Label used in traces and reports.
    read_energy_per_byte / write_energy_per_byte:
        ``e_r`` / ``e_w`` of the paper, joules per byte.
    static_power_per_byte:
        ``p_mem`` of the paper, watts per byte; non-zero only for
        volatile technologies (NVM retains for free).
    read_bandwidth / write_bandwidth:
        Bytes per second.
    volatile:
        Whether contents are lost on a power interruption.
    """

    name: str
    read_energy_per_byte: float
    write_energy_per_byte: float
    static_power_per_byte: float
    read_bandwidth: float
    write_bandwidth: float
    volatile: bool

    def __post_init__(self) -> None:
        for attr in ("read_energy_per_byte", "write_energy_per_byte",
                     "static_power_per_byte"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        for attr in ("read_bandwidth", "write_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")

    # -- cost helpers -------------------------------------------------------

    def read_energy(self, num_bytes: float) -> float:
        return num_bytes * self.read_energy_per_byte

    def write_energy(self, num_bytes: float) -> float:
        return num_bytes * self.write_energy_per_byte

    def read_time(self, num_bytes: float) -> float:
        return num_bytes / self.read_bandwidth

    def write_time(self, num_bytes: float) -> float:
        return num_bytes / self.write_bandwidth


#: FRAM as on the MSP430FR5994: non-volatile, byte-addressable, writes
#: cost more than reads, no retention power.  ~8 MHz access.
FRAM = MemoryTechnology(
    name="fram",
    read_energy_per_byte=0.3e-9,
    write_energy_per_byte=0.9e-9,
    static_power_per_byte=0.0,
    read_bandwidth=8e6,
    write_bandwidth=4e6,
    volatile=False,
)

#: On-chip SRAM: volatile, fast, cheap to access, leaks while powered.
SRAM = MemoryTechnology(
    name="sram",
    read_energy_per_byte=0.05e-9,
    write_energy_per_byte=0.05e-9,
    static_power_per_byte=2.5e-10,
    read_bandwidth=400e6,
    write_bandwidth=400e6,
    volatile=True,
)

#: A low-power external DRAM tier for the large future-AuT models whose
#: weights exceed on-chip NVM; used as backing store ("NVM" role) with
#: retention power folded into the access costs.
LPDDR_LIKE = MemoryTechnology(
    name="lpddr",
    read_energy_per_byte=0.15e-9,
    write_energy_per_byte=0.15e-9,
    static_power_per_byte=0.0,
    read_bandwidth=1.6e9,
    write_bandwidth=1.6e9,
    volatile=False,
)

#: Resistive RAM: fast cheap reads, expensive slow writes — the
#: asymmetry the ReRAM-crossbar intermittent accelerators the paper
#: cites (ResiRCA) are built around.
RERAM = MemoryTechnology(
    name="reram",
    read_energy_per_byte=0.1e-9,
    write_energy_per_byte=2.0e-9,
    static_power_per_byte=0.0,
    read_bandwidth=200e6,
    write_bandwidth=20e6,
    volatile=False,
)

#: Spin-transfer-torque MRAM: near-SRAM reads, moderate writes, dense —
#: a candidate unified NVM for future AuT inference hardware.
MRAM = MemoryTechnology(
    name="mram",
    read_energy_per_byte=0.08e-9,
    write_energy_per_byte=0.5e-9,
    static_power_per_byte=0.0,
    read_bandwidth=400e6,
    write_bandwidth=100e6,
    volatile=False,
)


@dataclass(frozen=True)
class MemoryBlock:
    """A memory of a given technology and capacity."""

    technology: MemoryTechnology
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"memory size must be positive, got {self.size_bytes}"
            )

    @property
    def static_power(self) -> float:
        """Retention power of the whole block, W (``N_mem * p_mem``)."""
        return self.size_bytes * self.technology.static_power_per_byte

    def fits(self, num_bytes: float) -> bool:
        return num_bytes <= self.size_bytes

    def read_energy(self, num_bytes: float) -> float:
        return self.technology.read_energy(num_bytes)

    def write_energy(self, num_bytes: float) -> float:
        return self.technology.write_energy(num_bytes)

    def read_time(self, num_bytes: float) -> float:
        return self.technology.read_time(num_bytes)

    def write_time(self, num_bytes: float) -> float:
        return self.technology.write_time(num_bytes)
