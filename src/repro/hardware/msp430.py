"""The MSP430FR5994 + LEA platform — the "existing AuT setup".

Every intermittent-inference system the paper surveys (SONIC, HAWAII,
iNAS, Stateful) runs on this part: a 16 MHz MCU with a Low-Energy
Accelerator (LEA) for vector MACs, 8 KB of SRAM shared with the LEA, and
256 KB of FRAM as byte-addressable NVM.

For uniformity with the future-AuT setups, the platform is expressed as
a degenerate :class:`~repro.hardware.accelerators.AcceleratorConfig`
whose "array" is the single LEA.  The energy/latency scale is calibrated
against the paper's Fig. 2(a) anchor — an MNIST CNN (1.6 MOPs) takes
~1.4 s at ~7.5 mW — which matches the published iNAS/HAWAII measurements
the paper adapted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.directives import DataflowStyle
from repro.errors import ConfigurationError
from repro.hardware.accelerators import AcceleratorConfig, AcceleratorFamily
from repro.hardware.memory import FRAM, SRAM, MemoryBlock
from repro.hardware.pe_array import PEArray
from repro.units import KB


@dataclass(frozen=True)
class MSP430Platform:
    """Factory for MSP430FR5994-based inference hardware descriptions.

    Parameters
    ----------
    sram_bytes / fram_bytes:
        Memory sizes; datasheet defaults (8 KB / 256 KB).
    lea_macs_per_second:
        Effective LEA MAC throughput including DMA and fixed-point
        overheads.  ~0.55 MMAC/s reproduces the Fig. 2(a) anchor.
    mac_energy:
        Energy per LEA MAC, J.  ~8 nJ reproduces the anchor's ~7.5 mW
        active power together with the memory-access energies.
    mcu_active_power:
        CPU + runtime power while the rail is on, W.
    """

    sram_bytes: int = KB(8)
    fram_bytes: int = KB(256)
    lea_macs_per_second: float = 0.55e6
    mac_energy: float = 8.0e-9
    mcu_active_power: float = 2.2e-3

    def __post_init__(self) -> None:
        if self.sram_bytes <= 0 or self.fram_bytes <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if self.lea_macs_per_second <= 0:
            raise ConfigurationError("lea_macs_per_second must be positive")
        if self.mac_energy < 0 or self.mcu_active_power < 0:
            raise ConfigurationError("energies/powers must be non-negative")

    def as_accelerator(self) -> AcceleratorConfig:
        """The platform expressed in the universal hardware description.

        One "PE" (the LEA) whose clock is folded into an effective
        1-MAC-per-cycle rate; its "cache" is the LEA-visible half of
        SRAM, the other half serving as the shared VM staging buffer.
        """
        lea = PEArray(
            n_pes=1,
            cache_bytes_per_pe=self.sram_bytes // 2,
            mac_energy=self.mac_energy,
            clock_hz=self.lea_macs_per_second,
            macs_per_cycle_per_pe=1,
            cache_access_energy_per_byte=0.05e-9,
            static_power_per_pe=0.3e-3,
        )
        return AcceleratorConfig(
            name="msp430fr5994",
            family=AcceleratorFamily.MSP430,
            pes=lea,
            vm=MemoryBlock(SRAM, self.sram_bytes // 2),
            nvm=MemoryBlock(FRAM, self.fram_bytes),
            noc_energy_per_byte=0.05e-9,
            dataflow_penalty={
                DataflowStyle.WEIGHT_STATIONARY: 1.0,
                DataflowStyle.OUTPUT_STATIONARY: 1.0,
                DataflowStyle.INPUT_STATIONARY: 1.2,
            },
            controller_power=self.mcu_active_power,
            native_style=DataflowStyle.OUTPUT_STATIONARY,
            overlapped_io=False,
        )
