"""Checkpoint save/resume cost model.

In the paper's hardware dataflow (Fig. 4), when energy runs out the
current state — "all data in VM and the processing hardware" — is saved
to NVM (step 6) and later resumed (step 7).  Eq. 5 charges the inference
``N_tile * (1 + r_exc) * N_ckpt * (e_r + e_w)`` for this: one planned
checkpoint per inter-tile boundary, plus a fraction ``r_exc`` of
unplanned mid-tile exceptions.

``N_ckpt`` is the volume of one checkpoint: the live VM working set plus
a fixed header for architectural state (register file, loop iterators,
progress counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.memory import MemoryTechnology


class CheckpointStrategy(enum.Enum):
    """How the runtime decides when to checkpoint.

    ``EAGER`` is the paper's iNAS-like strategy: a planned save at every
    inter-tile boundary, so a power failure costs at most one tile.
    ``JIT`` (just-in-time, in the HAWAII/DICE lineage) skips planned
    saves: a voltage monitor triggers one save right before the rail
    collapses, preserving the in-flight tile at the price of reserving
    save-energy headroom and trusting the detector.
    """

    EAGER = "eager"
    JIT = "jit"


@dataclass(frozen=True)
class CheckpointModel:
    """Cost model for saving/restoring intermittent-execution state.

    Parameters
    ----------
    nvm:
        Technology checkpoints are written to (FRAM on existing AuTs).
    header_bytes:
        Architectural state saved regardless of data volume.
    live_fraction:
        Fraction of the VM working set that is actually live at an
        inter-tile boundary (outputs were just flushed to NVM, so only
        cross-tile context — e.g. halo rows and iterator state — remains).
    exception_rate:
        The paper's ``r_exc``: expected number of unplanned energy
        exceptions per tile, each costing one extra save + resume.
    strategy:
        Eager boundary checkpoints (the paper's model) or just-in-time
        saves only when power actually fails.
    """

    nvm: MemoryTechnology
    header_bytes: int = 128
    live_fraction: float = 0.25
    exception_rate: float = 0.05
    strategy: CheckpointStrategy = CheckpointStrategy.EAGER

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ConfigurationError(
                f"header_bytes must be non-negative, got {self.header_bytes}"
            )
        if not 0.0 <= self.live_fraction <= 1.0:
            raise ConfigurationError(
                f"live_fraction must be in [0, 1], got {self.live_fraction}"
            )
        if self.exception_rate < 0:
            raise ConfigurationError(
                f"exception_rate must be non-negative, got {self.exception_rate}"
            )

    def checkpoint_bytes(self, working_set_bytes: float) -> float:
        """``N_ckpt`` for a tile with the given VM working set."""
        return self.header_bytes + self.live_fraction * working_set_bytes

    def save_energy(self, working_set_bytes: float) -> float:
        """Energy of one checkpoint save, J."""
        return self.nvm.write_energy(self.checkpoint_bytes(working_set_bytes))

    def resume_energy(self, working_set_bytes: float) -> float:
        """Energy of one checkpoint restore, J."""
        return self.nvm.read_energy(self.checkpoint_bytes(working_set_bytes))

    def save_time(self, working_set_bytes: float) -> float:
        return self.nvm.write_time(self.checkpoint_bytes(working_set_bytes))

    def resume_time(self, working_set_bytes: float) -> float:
        return self.nvm.read_time(self.checkpoint_bytes(working_set_bytes))

    def commit_retry_energy(self, working_set_bytes: float) -> float:
        """Energy of one failed-and-retried commit, J.

        A failed NVM write still consumed its energy; the read-back
        verify that detects the failure costs one extra read of the
        checkpoint volume.  The successful retry itself is charged as a
        normal save by the caller.
        """
        volume = self.checkpoint_bytes(working_set_bytes)
        return self.nvm.write_energy(volume) + self.nvm.read_energy(volume)

    def commit_retry_time(self, working_set_bytes: float) -> float:
        """Duration of one failed-and-retried commit, s."""
        volume = self.checkpoint_bytes(working_set_bytes)
        return self.nvm.write_time(volume) + self.nvm.read_time(volume)

    def expected_tile_overhead_energy(self, working_set_bytes: float) -> float:
        """Expected checkpoint energy charged to one tile (Eq. 5 term).

        Eager: one planned save+resume at the tile boundary, scaled by
        ``1 + r_exc`` for unplanned mid-tile exceptions.  JIT: only the
        ``r_exc`` emergency rounds (no planned saves), but the live
        fraction is the *whole* working set — at an arbitrary failure
        point nothing has been flushed yet.
        """
        one_round = self.save_energy(working_set_bytes) + self.resume_energy(
            working_set_bytes
        )
        if self.strategy is CheckpointStrategy.JIT:
            jit_bytes = self.header_bytes + working_set_bytes
            jit_round = (self.nvm.write_energy(jit_bytes)
                         + self.nvm.read_energy(jit_bytes))
            return self.exception_rate * jit_round
        return (1.0 + self.exception_rate) * one_round
