"""Inference-subsystem hardware models.

* :mod:`repro.hardware.memory` — memory technologies (FRAM-style NVM,
  SRAM-style VM) with the paper's ``e_r`` / ``e_w`` / ``p_mem`` costs.
* :mod:`repro.hardware.pe_array` — processing-element array abstraction.
* :mod:`repro.hardware.checkpoint` — checkpoint save/resume cost model.
* :mod:`repro.hardware.msp430` — the MSP430FR5994 + LEA platform used by
  existing AuT systems (first inference-subsystem realization).
* :mod:`repro.hardware.accelerators` — TPU-like and Eyeriss-like
  reconfigurable accelerators (second realization).
"""

from repro.hardware.accelerators import (
    AcceleratorConfig,
    AcceleratorFamily,
    eyeriss_like,
    tpu_like,
)
from repro.hardware.checkpoint import CheckpointModel, CheckpointStrategy
from repro.hardware.memory import (
    FRAM,
    LPDDR_LIKE,
    MRAM,
    RERAM,
    SRAM,
    MemoryBlock,
    MemoryTechnology,
)
from repro.hardware.msp430 import MSP430Platform
from repro.hardware.pe_array import PEArray

__all__ = [
    "AcceleratorConfig",
    "AcceleratorFamily",
    "CheckpointModel",
    "CheckpointStrategy",
    "FRAM",
    "LPDDR_LIKE",
    "MRAM",
    "MSP430Platform",
    "MemoryBlock",
    "MemoryTechnology",
    "PEArray",
    "RERAM",
    "SRAM",
    "eyeriss_like",
    "tpu_like",
]
