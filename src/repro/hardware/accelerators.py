"""Reconfigurable accelerator configurations (Table V architectures).

The paper's future-AuT design space picks an architecture from
{TPU, Eyeriss} and then sizes its PE count (1-168) and per-PE cache
(128 B - 2 KB).  :class:`AcceleratorConfig` is the universal
inference-hardware description the dataflow cost model consumes; the
:func:`tpu_like` and :func:`eyeriss_like` factories encode what differs
between the two families:

* the TPU-like systolic array has a cheaper MAC and is tuned for
  weight-stationary operation — other dataflows pay an on-chip traffic
  penalty because the systolic interconnect cannot exploit their reuse;
* the Eyeriss-like array has a flexible NoC (row-stationary heritage):
  every dataflow style runs without penalty, at a higher per-MAC cost.

Energy/latency scales are calibrated to the Fig. 2(a) anchors (Eyeriss
V1: AlexNet at ~115 ms / ~278 mW) rather than to any single product
datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

from repro.dataflow.directives import DataflowStyle
from repro.errors import ConfigurationError
from repro.hardware.memory import LPDDR_LIKE, SRAM, MemoryBlock, MemoryTechnology
from repro.hardware.pe_array import PEArray
from repro.units import KB, MB


class AcceleratorFamily(Enum):
    """The Table V architecture families, plus the existing-AuT MCU."""

    TPU = "tpu"
    EYERISS = "eyeriss"
    MSP430 = "msp430"


@dataclass(frozen=True)
class AcceleratorConfig:
    """A fully-sized inference accelerator.

    Parameters
    ----------
    name:
        Label for reports.
    family:
        Architecture family the NoC behaviour derives from.
    pes:
        The PE array (count, per-PE cache, MAC cost, clock).
    vm:
        Shared volatile buffer (global SRAM) between NVM and the PEs.
    nvm:
        Non-volatile backing store holding weights, activations and
        checkpoints.
    noc_energy_per_byte:
        Energy to move one byte between the shared VM and a PE.
    dataflow_penalty:
        Multiplier (>= 1) on VM<->PE traffic per dataflow style; encodes
        how well the interconnect supports each reuse pattern.
    controller_power:
        Runtime-control (MCU + sequencer) power while the rail is on, W.
    native_style:
        The family's preferred dataflow (used as a search seed).
    overlapped_io:
        Whether data movement overlaps compute (double-buffered spatial
        arrays) or serialises with it (DMA-driven MCUs).
    """

    name: str
    family: AcceleratorFamily
    pes: PEArray
    vm: MemoryBlock
    nvm: MemoryBlock
    noc_energy_per_byte: float
    dataflow_penalty: Mapping[DataflowStyle, float]
    controller_power: float
    native_style: DataflowStyle
    overlapped_io: bool = True

    def __post_init__(self) -> None:
        if self.noc_energy_per_byte < 0:
            raise ConfigurationError("noc_energy_per_byte must be non-negative")
        if self.controller_power < 0:
            raise ConfigurationError("controller_power must be non-negative")
        for style in DataflowStyle:
            if self.dataflow_penalty.get(style, 1.0) < 1.0:
                raise ConfigurationError(
                    f"dataflow penalty for {style.value} must be >= 1"
                )
        if not self.vm.technology.volatile:
            raise ConfigurationError("the VM tier must be a volatile technology")
        if self.nvm.technology.volatile:
            raise ConfigurationError("the NVM tier must be non-volatile")

    def traffic_penalty(self, style: DataflowStyle) -> float:
        return self.dataflow_penalty.get(style, 1.0)

    def cache_key(self) -> tuple:
        """Hashable identity for cost-model memoization.

        ``dataflow_penalty`` is a plain mapping, so the dataclass itself
        is unhashable; this flattens it deterministically.
        """
        return (
            self.name,
            self.family,
            self.pes,
            self.vm,
            self.nvm,
            self.noc_energy_per_byte,
            tuple(sorted((style.value, float(penalty))
                         for style, penalty in self.dataflow_penalty.items())),
            self.controller_power,
            self.native_style,
            self.overlapped_io,
        )

    @property
    def static_power(self) -> float:
        """Rail-on static draw: controller + PE leakage + VM retention."""
        return self.controller_power + self.pes.static_power + self.vm.static_power


def _dvfs(base_clock: float, base_mac_energy: float, base_static: float,
          clock_scale: float) -> tuple:
    """Classic voltage-frequency scaling of a PE datapath.

    Frequency tracks supply voltage, so per-MAC energy (CV^2) scales
    with the square of the clock ratio and leakage roughly linearly —
    the race-to-idle vs crawl-to-save tradeoff an energy-harvesting
    design can exploit.
    """
    if clock_scale <= 0:
        raise ConfigurationError(
            f"clock_scale must be positive, got {clock_scale}"
        )
    return (base_clock * clock_scale,
            base_mac_energy * clock_scale**2,
            base_static * clock_scale)


def tpu_like(n_pes: int = 64, cache_bytes_per_pe: int = 512,
             vm_bytes: int = KB(64), nvm_bytes: int = MB(256),
             nvm_technology: MemoryTechnology = LPDDR_LIKE,
             clock_scale: float = 1.0) -> AcceleratorConfig:
    """A scaled-down edge-TPU-style systolic array.

    Cheap MACs (dense systolic datapath), weight-stationary native; OS
    and IS dataflows pay a 40 % on-chip traffic penalty.
    """
    clock, mac_energy, static = _dvfs(200e6, 2.0e-12, 4e-6, clock_scale)
    pes = PEArray(
        n_pes=n_pes,
        cache_bytes_per_pe=cache_bytes_per_pe,
        mac_energy=mac_energy,
        clock_hz=clock,
        cache_access_energy_per_byte=0.01e-9,
        static_power_per_pe=static,
    )
    return AcceleratorConfig(
        name=f"tpu_{n_pes}pe_{cache_bytes_per_pe}B",
        family=AcceleratorFamily.TPU,
        pes=pes,
        vm=MemoryBlock(SRAM, vm_bytes),
        nvm=MemoryBlock(nvm_technology, nvm_bytes),
        noc_energy_per_byte=0.04e-9,
        dataflow_penalty={
            DataflowStyle.WEIGHT_STATIONARY: 1.0,
            DataflowStyle.OUTPUT_STATIONARY: 1.4,
            DataflowStyle.INPUT_STATIONARY: 1.4,
        },
        controller_power=1.0e-3,
        native_style=DataflowStyle.WEIGHT_STATIONARY,
    )


def eyeriss_like(n_pes: int = 168, cache_bytes_per_pe: int = 512,
                 vm_bytes: int = KB(108), nvm_bytes: int = MB(256),
                 nvm_technology: MemoryTechnology = LPDDR_LIKE,
                 clock_scale: float = 1.0) -> AcceleratorConfig:
    """An Eyeriss-V1-style flexible spatial array.

    Pricier MACs but a reuse-friendly NoC: all three dataflow styles run
    without penalty.  Defaults mirror Eyeriss V1's 168 PEs / 108 KB
    global buffer.
    """
    clock, mac_energy, static = _dvfs(200e6, 4.5e-12, 6e-6, clock_scale)
    pes = PEArray(
        n_pes=n_pes,
        cache_bytes_per_pe=cache_bytes_per_pe,
        mac_energy=mac_energy,
        clock_hz=clock,
        cache_access_energy_per_byte=0.015e-9,
        static_power_per_pe=static,
    )
    return AcceleratorConfig(
        name=f"eyeriss_{n_pes}pe_{cache_bytes_per_pe}B",
        family=AcceleratorFamily.EYERISS,
        pes=pes,
        vm=MemoryBlock(SRAM, vm_bytes),
        nvm=MemoryBlock(nvm_technology, nvm_bytes),
        noc_energy_per_byte=0.06e-9,
        dataflow_penalty={
            DataflowStyle.WEIGHT_STATIONARY: 1.0,
            DataflowStyle.OUTPUT_STATIONARY: 1.0,
            DataflowStyle.INPUT_STATIONARY: 1.0,
        },
        controller_power=1.5e-3,
        native_style=DataflowStyle.OUTPUT_STATIONARY,
    )


def build_accelerator(family: AcceleratorFamily, n_pes: int,
                      cache_bytes_per_pe: int,
                      clock_scale: float = 1.0) -> AcceleratorConfig:
    """Factory dispatch used by the design-space sampler."""
    if family is AcceleratorFamily.TPU:
        return tpu_like(n_pes=n_pes, cache_bytes_per_pe=cache_bytes_per_pe,
                        clock_scale=clock_scale)
    if family is AcceleratorFamily.EYERISS:
        return eyeriss_like(n_pes=n_pes,
                            cache_bytes_per_pe=cache_bytes_per_pe,
                            clock_scale=clock_scale)
    raise ConfigurationError(f"unknown accelerator family {family!r}")
