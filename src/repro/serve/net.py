"""Newline-delimited-JSON transport for the evaluation service.

One TCP connection carries any number of concurrent requests: each
request is a single JSON line tagged with a client-chosen ``id``, and
responses come back as JSON lines tagged with the same ``id`` — in
*completion* order, not submission order, so slow requests never head-
of-line-block fast ones on the same socket.

Request line::

    {"id": 7, "design": {...design_to_dict...}, "workload": "har",
     "environment": "paper", "fidelity": "analytical",
     "deadline_s": 2.0}

``environment`` is a campaign-style label (``"paper"``, ``"brighter"``,
``"darker"``, ``"indoor"``, or ``"scenario:<name>"``); ``fidelity`` and
``deadline_s`` are optional.  Response line::

    {"id": 7, "ok": true, "report": {"workload": ..., "fidelity": ...,
     "feasible": ..., "metrics": {...}, "by_environment": {...}}}

or, on failure, ``{"id": 7, "ok": false, "error": "<ChrysalisError
subclass name>", "message": "..."}``.  The client maps the error name
back onto the library's exception hierarchy, so remote failures raise
the same types local calls would (:class:`ServiceOverloadError`,
:class:`EvaluationTimeout`, ...).

Everything here is stdlib asyncio; the server is a thin shim that
forwards to an in-process :class:`~repro.serve.service.EvaluationService`
— coalescing and micro-batching happen there, across *all* connections.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro import errors as errors_module
from repro.campaign.spec import resolve_environments
from repro.errors import ChrysalisError, ServeError, ServiceClosedError
from repro.sim.metrics import InferenceMetrics
from repro.serialize import design_from_dict, design_to_dict, \
    metrics_from_dict, metrics_to_dict
from repro.serve.service import EvaluationService


def _encode(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


class ServeServer:
    """TCP front of one :class:`EvaluationService`.

    ::

        service = EvaluationService()
        async with service, ServeServer(service, port=7777) as server:
            host, port = server.address
            ...

    The server owns only the transport; start/stop the service
    separately (stopping the service first drains in-flight work, after
    which remaining connections receive ``ServiceClosedError``
    responses).
    """

    def __init__(self, service: EvaluationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ServiceClosedError("server is not running")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def start(self) -> "ServeServer":
        if self._server is not None:
            raise ServiceClosedError("server is already running")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port)
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Closing the listener leaves established connections alive;
        # close them too (their handlers then wind down on EOF).
        for writer in list(self._writers):
            writer.close()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        requests: Set[asyncio.Task] = set()
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                requests.add(task)
                self._tasks.add(task)
                task.add_done_callback(requests.discard)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._writers.discard(writer)
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        request_id: Any = None
        try:
            payload = json.loads(line)
            request_id = payload.get("id")
            response = await self._respond(payload)
        except ChrysalisError as exc:
            response = {"id": request_id, "ok": False,
                        "error": type(exc).__name__, "message": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            response = {"id": request_id, "ok": False,
                        "error": "ServeError",
                        "message": f"malformed request: {exc}"}
        async with write_lock:
            try:
                writer.write(_encode(response))
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass  # client went away; nothing to tell it

    async def _respond(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        design = design_from_dict(payload["design"])
        environments = resolve_environments(
            payload.get("environment", "paper"))
        report = await self.service.submit(
            design, payload["workload"],
            environments=environments,
            fidelity=payload.get("fidelity", "analytical"),
            deadline_s=payload.get("deadline_s"))
        return {
            "id": payload.get("id"),
            "ok": True,
            "report": {
                "workload": report.workload,
                "fidelity": report.fidelity,
                "feasible": report.feasible,
                "metrics": metrics_to_dict(report.metrics),
                "by_environment": {
                    name: metrics_to_dict(metrics)
                    for name, metrics in report.by_environment.items()},
            },
        }


@dataclass
class RemoteReport:
    """Client-side view of one evaluation (wire form, re-typed)."""

    workload: str
    fidelity: str
    feasible: bool
    metrics: InferenceMetrics
    by_environment: Dict[str, InferenceMetrics] = field(default_factory=dict)


class ServeClient:
    """Asyncio client for :class:`ServeServer`'s JSON-lines protocol.

    Safe for concurrent use: any number of coroutines may call
    :meth:`evaluate` on one client; responses are matched by id.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._receiver = asyncio.ensure_future(self._receive_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def close(self) -> None:
        self._receiver.cancel()
        try:
            await self._receiver
        except asyncio.CancelledError:
            pass
        self._fail_pending(ServiceClosedError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def evaluate(self, design: Any, workload: str, *,
                       environment: str = "paper",
                       fidelity: str = "analytical",
                       deadline_s: Optional[float] = None) -> RemoteReport:
        if self._receiver.done():
            raise ServiceClosedError("connection closed")
        request_id = next(self._ids)
        payload: Dict[str, Any] = {
            "id": request_id,
            "design": design_to_dict(design),
            "workload": workload,
            "environment": environment,
            "fidelity": fidelity,
        }
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(_encode(payload))
        await self._writer.drain()
        data = await future
        return RemoteReport(
            workload=data["workload"],
            fidelity=data["fidelity"],
            feasible=data["feasible"],
            metrics=metrics_from_dict(data["metrics"]),
            by_environment={name: metrics_from_dict(metrics)
                            for name, metrics in
                            data["by_environment"].items()})

    # -- wire handling --------------------------------------------------------

    async def _receive_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(
                        ServiceClosedError("server closed the connection"))
                    return
                self._dispatch(json.loads(line))
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ServiceClosedError(f"connection lost: {exc}"))

    def _dispatch(self, response: Dict[str, Any]) -> None:
        future = self._pending.pop(response.get("id"), None)
        if future is None or future.done():
            return
        if response.get("ok"):
            future.set_result(response["report"])
        else:
            future.set_exception(self._as_error(response))

    @staticmethod
    def _as_error(response: Dict[str, Any]) -> ChrysalisError:
        """Raise remote failures as the types local calls would raise."""
        name = response.get("error", "ServeError")
        message = response.get("message", "remote evaluation failed")
        error_cls = getattr(errors_module, str(name), None)
        if isinstance(error_cls, type) \
                and issubclass(error_cls, ChrysalisError):
            return error_cls(message)
        return ServeError(f"{name}: {message}")

    def _fail_pending(self, error: ChrysalisError) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()


__all__ = ["RemoteReport", "ServeClient", "ServeServer"]
