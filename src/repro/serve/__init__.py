"""Always-on evaluation service (coalescing + micro-batching).

``repro.serve`` turns independent single-request evaluation traffic
into batched work on the vectorized analytical core:

* :class:`EvaluationService` — the asyncio core: content-hash
  coalescing of identical in-flight requests, bounded-latency
  micro-batching onto :func:`repro.api.evaluate_batch`, admission
  control, per-request deadlines, graceful drain.
* :class:`ServeConfig` / :class:`ServeStats` — SLO knobs and
  service-lifetime accounting (throughput, p50/p99 latency, coalesce
  rate, batch occupancy).
* :class:`ServeServer` / :class:`ServeClient` — a newline-delimited
  JSON TCP transport over one shared service.

Front door: :func:`repro.api.serve` (builds a configured service).
Architecture notes live in ``docs/SERVING.md``.
"""

from repro.serve.keys import request_key
from repro.serve.net import RemoteReport, ServeClient, ServeServer
from repro.serve.service import EvaluationService, ServeConfig, ServeStats

__all__ = [
    "EvaluationService",
    "RemoteReport",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "ServeStats",
    "request_key",
]
