"""Content-hashed request keys for the evaluation service.

The coalescer needs one stable name per *semantically identical*
request: two clients asking for the same ``(design, workload,
environments, fidelity, checkpoint)`` tuple must land on the same key
even though they hold distinct (equal-by-value) objects.  The hash
therefore covers exactly the value content that can change an
:func:`repro.api.evaluate` result — the same discipline as campaign
:class:`~repro.campaign.spec.RunKey` hashes — and nothing about the
requesting client.

Each request also carries a *group* key: the request key minus the
design.  Requests sharing a group are mutually batchable — same
workload, same environment set, same checkpoint model, analytical
fidelity — so the micro-batcher can price a whole group through
:func:`repro.api.evaluate_batch`'s vectorized sweep in one call.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.design import AuTDesign
from repro.environments import Environment
from repro.environments import environment_to_dict as _environment_content
from repro.hardware.checkpoint import CheckpointModel
from repro.serialize import design_to_dict
from repro.workloads.network import Network


def environment_to_dict(environment: Environment) -> Dict[str, Any]:
    """Full value content of one environment (hash input).

    Delegates to :func:`repro.environments.environment_to_dict`: the
    hash covers the *complete resolved spec* — for a trace environment
    that is every segment, not just the label — so two different traces
    registered under the same name can never coalesce onto one cached
    evaluation.
    """
    return _environment_content(environment)


def checkpoint_to_dict(checkpoint: Optional[CheckpointModel]
                       ) -> Optional[Dict[str, Any]]:
    if checkpoint is None:
        return None
    return {
        "nvm": checkpoint.nvm.value,
        "header_bytes": checkpoint.header_bytes,
        "live_fraction": checkpoint.live_fraction,
        "exception_rate": checkpoint.exception_rate,
        "strategy": checkpoint.strategy.value,
    }


def _digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def request_key(design: AuTDesign, network: Network,
                environments: Sequence[Environment], fidelity: str,
                checkpoint: Optional[CheckpointModel] = None
                ) -> Tuple[str, str]:
    """``(key, group)`` content hashes of one evaluation request.

    ``key`` names the full request (coalescing identity); ``group``
    omits the design (micro-batching compatibility class).  Workloads
    are named by ``network.name`` — zoo names are canonical, and custom
    networks must use distinct names to stay distinct (the same rule
    campaign specs follow).
    """
    shared: Dict[str, Any] = {
        "workload": network.name,
        "environments": [environment_to_dict(env) for env in environments],
        "fidelity": fidelity,
        "checkpoint": checkpoint_to_dict(checkpoint),
    }
    group = _digest(shared)
    key = _digest(dict(shared, design=design_to_dict(design)))
    return key, group
