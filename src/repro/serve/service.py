"""Always-on evaluation service: coalescing + micro-batching.

The search layer (``repro.explore``) amortizes evaluation cost because
one caller owns the whole population.  A *service* has the opposite
shape: many independent callers, one request each, no caller-side
batching possible.  :class:`EvaluationService` recovers the amortized
economics server-side:

* **Coalescing** — requests are content-hashed
  (:func:`repro.serve.keys.request_key`); while a key is in flight,
  every further submission for it awaits the same future and the
  evaluation runs once.
* **Micro-batching** — accepted requests queue into a bounded-latency
  batcher (``max_batch_size`` / ``max_wait_ms``).  Each flush groups
  analytical requests by compatibility class (same workload,
  environments, checkpoint) and prices every group through one
  vectorized :func:`repro.api.evaluate_batch` sweep, so a flush of N
  compatible requests costs roughly one sweep, not N evaluations.
* **Admission control** — the queue is bounded (``max_queue``); when it
  is full new requests are shed with
  :class:`~repro.errors.ServiceOverloadError` instead of growing an
  unbounded backlog.  Per-request deadlines surface as the library's
  existing :class:`~repro.errors.EvaluationTimeout`.

Responses are bit-identical to calling :func:`repro.api.evaluate`
directly — the service changes *when and with whom* a request is
priced, never *what* it computes.  Evaluation runs on a single worker
thread, keeping the event loop responsive and the process-wide caches
(layer-cost cache, mapper memo) uncontended.

All dependencies are stdlib; tests inject ``evaluate_fn`` /
``evaluate_batch_fn`` / ``time_fn`` to run against fakes and a
deterministic clock.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.api import (FIDELITIES, EvaluationReport, _resolve_environments,
                       _resolve_workload)
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import (ChrysalisError, ConfigurationError,
                          EvaluationTimeout, ServiceClosedError,
                          ServiceOverloadError)
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.registry import REPORT_QUANTILES, Histogram
from repro.serve.keys import request_key
from repro.workloads.network import Network


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of the evaluation service (all SLO-facing).

    ``max_wait_ms`` bounds the latency the batcher may *add* to a
    request while waiting for company; ``max_batch_size`` bounds how
    much company one flush can hold.  ``eager_flush`` (the default)
    makes the batcher work-conserving: it flushes as soon as the
    admission queue drains instead of sleeping out ``max_wait_ms`` —
    requests that were going to batch together arrive in the same
    event-loop wave anyway, so the timer only matters as the upper
    bound for slowly trickling producers (set ``eager_flush=False`` to
    always wait it out).  ``max_queue`` is the admission limit — beyond
    it requests are shed, trading availability for bounded latency.
    ``default_deadline_s`` applies to requests that do not carry their
    own deadline (``None`` means no deadline).
    """

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    eager_flush: bool = True
    max_queue: int = 1024
    default_deadline_s: Optional[float] = None
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0.0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_deadline_s is not None \
                and self.default_deadline_s <= 0.0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, "
                f"got {self.default_deadline_s}")
        if self.drain_timeout_s <= 0.0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, "
                f"got {self.drain_timeout_s}")


def _histogram_dict(histogram: Histogram) -> Dict[str, Any]:
    """JSON-ready snapshot of one histogram, same shape the obs
    registry exports (count/sum/min/max, p50/p90/p99, buckets)."""
    return {
        "count": histogram.count,
        "sum": histogram.sum,
        "min": None if histogram.count == 0 else histogram.min,
        "max": None if histogram.count == 0 else histogram.max,
        **{label: histogram.quantile(q) for label, q in REPORT_QUANTILES},
        "buckets": {str(index): count
                    for index, count in sorted(histogram.buckets.items())},
    }


@dataclass
class ServeStats:
    """Service-lifetime SLO accounting (always on, unlike ``OBS``).

    Counters track request outcomes; the histograms carry the
    power-of-two bucket distributions that :meth:`as_dict` renders as
    p50/p90/p99.  ``requests`` counts every accepted submission,
    including coalesced ones; ``evaluated`` counts requests that were
    actually priced, so ``coalesce_rate`` is the fraction of accepted
    traffic served for free off an in-flight twin.
    """

    requests: int = 0
    coalesced: int = 0
    evaluated: int = 0
    batches: int = 0
    shed: int = 0
    timeouts: int = 0
    failures: int = 0
    latency_seconds: Histogram = field(
        default_factory=lambda: Histogram("serve.request_seconds"))
    queue_wait_seconds: Histogram = field(
        default_factory=lambda: Histogram("serve.queue_wait_seconds"))
    batch_occupancy: Histogram = field(
        default_factory=lambda: Histogram("serve.batch_occupancy"))

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "evaluated": self.evaluated,
            "batches": self.batches,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "coalesce_rate": self.coalesce_rate,
            "latency_seconds": _histogram_dict(self.latency_seconds),
            "queue_wait_seconds": _histogram_dict(self.queue_wait_seconds),
            "batch_occupancy": _histogram_dict(self.batch_occupancy),
        }


@dataclass
class _Pending:
    """One admitted, not-yet-priced request (the coalescing unit)."""

    key: str
    group: str
    design: AuTDesign
    network: Network
    environments: Tuple[LightEnvironment, ...]
    checkpoint: Optional[CheckpointModel]
    fidelity: str
    future: "asyncio.Future[EvaluationReport]"
    deadline: Optional[float]
    enqueued_at: float


_STOP = object()

EvaluateFn = Callable[..., EvaluationReport]
EvaluateBatchFn = Callable[..., List[EvaluationReport]]


def _default_evaluate(design: AuTDesign, network: Network,
                      environments: Sequence[LightEnvironment],
                      checkpoint: Optional[CheckpointModel],
                      fidelity: str) -> EvaluationReport:
    from repro import api

    return api.evaluate(design, network, environments=list(environments),
                        fidelity=fidelity, checkpoint=checkpoint)


def _default_evaluate_batch(designs: Sequence[AuTDesign], network: Network,
                            environments: Sequence[LightEnvironment],
                            checkpoint: Optional[CheckpointModel]
                            ) -> List[EvaluationReport]:
    from repro import api

    return api.evaluate_batch(list(designs), network,
                              environments=list(environments),
                              checkpoint=checkpoint)


class EvaluationService:
    """Long-lived asyncio front end over the evaluation engine.

    Lifecycle::

        service = EvaluationService(ServeConfig(max_wait_ms=2.0))
        async with service:                      # start() ... stop()
            report = await service.submit(design, "har")

    ``submit`` resolves the request exactly as :func:`repro.api.evaluate`
    would, coalesces it onto any identical in-flight evaluation, and
    otherwise enqueues it for the batcher.  ``stop(drain=True)`` (the
    context-manager default) refuses new work but prices everything
    already admitted before returning.

    Thread model: the event loop owns all bookkeeping; the only other
    thread is a single-worker executor that runs the (synchronous,
    CPU-bound) evaluations, so process-wide caches see no concurrent
    writers beyond what serial evaluation already produces.
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 evaluate_fn: EvaluateFn = _default_evaluate,
                 evaluate_batch_fn: EvaluateBatchFn = _default_evaluate_batch,
                 time_fn: Callable[[], float] = time.monotonic) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self._evaluate_fn = evaluate_fn
        self._evaluate_batch_fn = evaluate_batch_fn
        self._time_fn = time_fn
        self._networks: Dict[str, Network] = {}
        self._workloads: Dict[str, Network] = {}
        self._env_sets: Dict[Any, Tuple[LightEnvironment, ...]] = {}
        self._keys: Dict[tuple, tuple] = {}
        self._inflight: Dict[str, _Pending] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._batcher is not None and not self._batcher.done() \
            and not self._closing

    async def start(self) -> "EvaluationService":
        if self._batcher is not None and not self._batcher.done():
            raise ServiceClosedError("service is already running")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._closing = False
        self._batcher = self._loop.create_task(
            self._batch_loop(), name="repro-serve-batcher")
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Refuse new requests; finish (``drain=True``) or fail
        (``drain=False``) everything already admitted."""
        if self._batcher is None:
            return
        self._closing = True
        if drain:
            await self._queue.put(_STOP)
            try:
                await asyncio.wait_for(self._batcher,
                                       timeout=self.config.drain_timeout_s)
            except asyncio.TimeoutError:
                self._batcher.cancel()
        else:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            # Fail everything still pending (queued or mid-flush) so no
            # waiter hangs on a future nothing will ever complete.
            while not self._queue.empty():
                self._queue.get_nowait()
            for entry in list(self._inflight.values()):
                self._fail(entry, ServiceClosedError("service stopped"))
        self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "EvaluationService":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop(drain=True)

    # -- request path ---------------------------------------------------------

    async def submit(self, design: AuTDesign,
                     workload: Union[str, Network],
                     scenario: Any = None, *,
                     environments: Optional[
                         Sequence[LightEnvironment]] = None,
                     fidelity: str = "analytical",
                     checkpoint: Optional[CheckpointModel] = None,
                     deadline_s: Optional[float] = None
                     ) -> EvaluationReport:
        """Evaluate one design through the service.

        Same request surface as :func:`repro.api.evaluate` (workload by
        zoo name or :class:`Network`, scenario *or* explicit
        environments) plus a per-request ``deadline_s``.  Raises
        :class:`ServiceClosedError` when the service is not accepting,
        :class:`ServiceOverloadError` when the admission queue is full,
        and :class:`EvaluationTimeout` when the deadline expires before
        a result is ready.
        """
        if not self.running:
            raise ServiceClosedError(
                "service is not running (use 'async with service:' or "
                "await service.start())")
        if fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"unknown fidelity {fidelity!r}; expected one of "
                f"{FIDELITIES}")
        network = self._resolve_workload(workload)
        envs = self._resolve_environments(scenario, environments)
        key, group = self._keys_for(design, network, envs, fidelity,
                                    checkpoint)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is not None and deadline_s <= 0.0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {deadline_s}")

        started = self._loop.time()
        entry = self._inflight.get(key)
        if entry is not None and not entry.future.done():
            self.stats.requests += 1
            self.stats.coalesced += 1
        else:
            deadline = None if deadline_s is None \
                else self._time_fn() + deadline_s
            entry = _Pending(
                key=key, group=group, design=design, network=network,
                environments=envs, checkpoint=checkpoint, fidelity=fidelity,
                future=self._loop.create_future(), deadline=deadline,
                enqueued_at=started)
            try:
                self._queue.put_nowait(entry)
            except asyncio.QueueFull:
                self.stats.shed += 1
                raise ServiceOverloadError(
                    f"admission queue full ({self.config.max_queue} "
                    f"requests); back off and retry") from None
            self.stats.requests += 1
            self._inflight[key] = entry
            entry.future.add_done_callback(partial(self._forget, key))
        return await self._await_result(entry, deadline_s, started)

    async def _await_result(self, entry: _Pending,
                            deadline_s: Optional[float],
                            started: float) -> EvaluationReport:
        # Shielded so one waiter's deadline cannot cancel the shared
        # (possibly coalesced) evaluation out from under other waiters.
        try:
            if deadline_s is None:
                report = await asyncio.shield(entry.future)
            else:
                report = await asyncio.wait_for(
                    asyncio.shield(entry.future), timeout=deadline_s)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise EvaluationTimeout(
                f"request {entry.key} missed its {deadline_s:g} s "
                f"deadline") from None
        except EvaluationTimeout:
            # Expired in the queue (flush-side); counted per waiter here
            # so coalesced requests each show up in the SLO accounting.
            self.stats.timeouts += 1
            raise
        self.stats.latency_seconds.observe(self._loop.time() - started)
        return report

    def _intern(self, network: Network) -> Network:
        """One canonical Network per name, so equal-by-value workloads
        from repeated zoo lookups batch into the same group."""
        return self._networks.setdefault(network.name, network)

    def _resolve_workload(self, workload: Union[str, Network]) -> Network:
        """Interned workload resolution.  A zoo lookup rebuilds the
        Network IR from scratch (~50 us) — a service pricing the same
        workload thousands of times must not pay that per request."""
        if isinstance(workload, str):
            network = self._workloads.get(workload)
            if network is None:
                network = self._intern(_resolve_workload(workload))
                self._workloads[workload] = network
            return network
        return self._intern(_resolve_workload(workload))

    def _resolve_environments(self, scenario: Any,
                              environments: Optional[
                                  Sequence[LightEnvironment]]
                              ) -> Tuple[LightEnvironment, ...]:
        """Memoized scenario-to-environment resolution for the common
        by-name (or default) request shape."""
        if environments is None and (scenario is None
                                     or isinstance(scenario, str)):
            envs = self._env_sets.get(scenario)
            if envs is None:
                envs = tuple(_resolve_environments(scenario, None))
                self._env_sets[scenario] = envs
            return envs
        return tuple(_resolve_environments(scenario, environments))

    def _keys_for(self, design: AuTDesign, network: Network,
                  envs: Tuple[LightEnvironment, ...], fidelity: str,
                  checkpoint: Optional[CheckpointModel]
                  ) -> Tuple[str, str]:
        """Memoized :func:`request_key` — hashing the request content
        (canonical JSON + sha256) costs ~50 us, and a service exists
        precisely because the same requests keep arriving.  The memo is
        keyed by object identity (even value-hashing a frozen design
        recurses through every mapping, ~30 us); the value pins the
        referenced objects so their ids stay live.  Distinct-identity
        but equal-value requests miss here, recompute, and land on the
        same content hash — the fast path never changes the key."""
        cache_key = (id(design), id(network), id(envs), fidelity,
                     None if checkpoint is None else id(checkpoint))
        cached = self._keys.get(cache_key)
        if cached is None:
            if len(self._keys) >= 4096:
                self._keys.clear()  # bound the memo on a long-lived service
            key, group = request_key(design, network, envs, fidelity,
                                     checkpoint)
            cached = (key, group, design, envs, checkpoint)
            self._keys[cache_key] = cached
        return cached[0], cached[1]

    def _forget(self, key: str, future: "asyncio.Future") -> None:
        self._inflight.pop(key, None)
        if not future.cancelled():
            future.exception()  # mark retrieved; waiters may have gone

    def _fail(self, entry: _Pending, error: ChrysalisError) -> None:
        if not entry.future.done():
            entry.future.set_exception(error)

    # -- batcher --------------------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            entry = await self._queue.get()
            if entry is _STOP:
                break
            batch = [entry]
            stop = False
            flush_at = self._loop.time() + self.config.max_wait_ms / 1000.0
            while len(batch) < self.config.max_batch_size:
                try:
                    # Drain whatever is already waiting without paying
                    # a wait_for task per entry.
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    if self.config.eager_flush:
                        break  # work-conserving: price what we have now
                    remaining = flush_at - self._loop.time()
                    if remaining <= 0.0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(),
                                                     timeout=remaining)
                    except asyncio.TimeoutError:
                        break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            await self._flush(batch)
            if stop:
                break

    async def _flush(self, batch: List[_Pending]) -> None:
        now = self._time_fn()
        loop_now = self._loop.time()
        live: List[_Pending] = []
        for entry in batch:
            self.stats.queue_wait_seconds.observe(
                loop_now - entry.enqueued_at)
            if entry.future.done():
                continue  # waiter-side deadline already fired
            if entry.deadline is not None and now >= entry.deadline:
                self._fail(entry, EvaluationTimeout(
                    f"request {entry.key} expired in queue before "
                    f"evaluation started"))
                continue
            live.append(entry)
        if not live:
            return
        self.stats.batches += 1
        self.stats.batch_occupancy.observe(float(len(live)))

        groups: Dict[str, List[_Pending]] = {}
        singles: List[_Pending] = []
        for entry in live:
            if entry.fidelity == "analytical":
                groups.setdefault(entry.group, []).append(entry)
            else:
                singles.append(entry)

        for members in groups.values():
            first = members[0]
            try:
                reports = await self._loop.run_in_executor(
                    self._executor, partial(
                        self._evaluate_batch_fn,
                        [m.design for m in members], first.network,
                        first.environments, first.checkpoint))
            except ChrysalisError as exc:
                self.stats.failures += len(members)
                for member in members:
                    self._fail(member, exc)
                continue
            self.stats.evaluated += len(members)
            for member, report in zip(members, reports):
                if not member.future.done():
                    member.future.set_result(report)
        for entry in singles:
            try:
                report = await self._loop.run_in_executor(
                    self._executor, partial(
                        self._evaluate_fn, entry.design, entry.network,
                        entry.environments, entry.checkpoint,
                        entry.fidelity))
            except ChrysalisError as exc:
                self.stats.failures += 1
                self._fail(entry, exc)
                continue
            self.stats.evaluated += 1
            if not entry.future.done():
                entry.future.set_result(report)


__all__ = ["EvaluationService", "ServeConfig", "ServeStats"]
