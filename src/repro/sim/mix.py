"""Input-dependent workloads: probabilistic mixes of network variants.

The paper lists "input correlations" among the describer extensions.
The dominant case at the edge is *early-exit* inference: easy inputs
leave through a small head after a few layers; hard ones run the full
network.  An AuT must then be provisioned for a **distribution** of
energy demands, not a single number.

:class:`WorkloadMix` evaluates one design (or per-variant designs) over
such a distribution and reports expectation, spread and worst case —
the quantities a duty-cycled deployment is sized by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network


@dataclass(frozen=True)
class MixVariant:
    """One branch of the input distribution."""

    name: str
    network: Network
    design: AuTDesign
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"variant {self.name!r}: probability must be in (0, 1], "
                f"got {self.probability}"
            )
        self.design.validate_against(self.network)


@dataclass(frozen=True)
class MixMetrics:
    """Distribution-level metrics of a workload mix."""

    expected_latency: float  # s, probability-weighted sustained period
    expected_energy: float  # J
    worst_case_latency: float  # s, max over variants
    latency_spread: float  # s, worst - best
    per_variant: Dict[str, InferenceMetrics]
    feasible: bool
    infeasible_variant: str = ""

    @property
    def expected_throughput(self) -> float:
        if self.expected_latency <= 0 or math.isinf(self.expected_latency):
            return 0.0
        return 1.0 / self.expected_latency


class WorkloadMix:
    """A probability distribution over network variants.

    Probabilities must sum to 1 (within tolerance).  Every variant must
    be feasible in every configured environment — a deployment cannot
    refuse hard inputs.
    """

    def __init__(self, variants: Sequence[MixVariant],
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        if not variants:
            raise ConfigurationError("a workload mix needs variants")
        total = sum(v.probability for v in variants)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"variant probabilities must sum to 1, got {total}"
            )
        names = [v.name for v in variants]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate variant names: {names}")
        self.variants = tuple(variants)
        self.environments = environments
        self.checkpoint = checkpoint

    def evaluate(self) -> MixMetrics:
        """Expectation / spread / worst case over the distribution."""
        per_variant: Dict[str, InferenceMetrics] = {}
        expected_latency = 0.0
        expected_energy = 0.0
        latencies: List[float] = []
        for variant in self.variants:
            evaluator = ChrysalisEvaluator(
                variant.network, environments=self.environments,
                checkpoint=self.checkpoint)
            metrics = evaluator.evaluate_average(variant.design)
            per_variant[variant.name] = metrics
            if not metrics.feasible:
                return MixMetrics(
                    expected_latency=math.inf,
                    expected_energy=math.inf,
                    worst_case_latency=math.inf,
                    latency_spread=math.inf,
                    per_variant=per_variant,
                    feasible=False,
                    infeasible_variant=variant.name,
                )
            latency = metrics.sustained_period or metrics.e2e_latency
            expected_latency += variant.probability * latency
            expected_energy += variant.probability * metrics.total_energy
            latencies.append(latency)
        return MixMetrics(
            expected_latency=expected_latency,
            expected_energy=expected_energy,
            worst_case_latency=max(latencies),
            latency_spread=max(latencies) - min(latencies),
            per_variant=per_variant,
            feasible=True,
        )


def early_exit_mix(full_network: Network, exit_network: Network,
                   design_full: AuTDesign, design_exit: AuTDesign,
                   exit_probability: float,
                   environments: Optional[Sequence[LightEnvironment]] = None,
                   checkpoint: Optional[CheckpointModel] = None
                   ) -> WorkloadMix:
    """Convenience constructor for the two-branch early-exit case."""
    if not 0.0 < exit_probability < 1.0:
        raise ConfigurationError(
            f"exit_probability must be in (0, 1), got {exit_probability}"
        )
    return WorkloadMix(
        variants=[
            MixVariant("early_exit", exit_network, design_exit,
                       exit_probability),
            MixVariant("full", full_network, design_full,
                       1.0 - exit_probability),
        ],
        environments=environments,
        checkpoint=checkpoint,
    )
