"""Result metrics of one evaluated inference.

These are the quantities the paper's figures plot:

* end-to-end latency (Figs. 6, 7, 10) — charging included;
* the energy breakdown (Figs. 8, 9) — inference vs checkpoint vs
  capacitor leakage vs static;
* system efficiency ``E_infer / E_eh`` (Figs. 8, 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class EnergyBreakdown:
    """Joule-level accounting of one inference."""

    compute: float = 0.0  # datapath + PE caches (E_infer core)
    vm: float = 0.0  # NoC + shared-buffer traffic
    nvm: float = 0.0  # NVM reads/writes (tile data)
    static: float = 0.0  # rail-on static draw (E_static)
    checkpoint: float = 0.0  # checkpoint save/resume (Ckpt. Energy)
    cap_leakage: float = 0.0  # capacitor leakage (Cap. Leakage)
    conversion: float = 0.0  # PMIC converter losses

    @property
    def inference(self) -> float:
        """``E_infer``: useful inference energy (compute + data movement)."""
        return self.compute + self.vm + self.nvm

    @property
    def overhead(self) -> float:
        return self.static + self.checkpoint + self.cap_leakage + self.conversion

    @property
    def total(self) -> float:
        return self.inference + self.overhead

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute=self.compute * factor,
            vm=self.vm * factor,
            nvm=self.nvm * factor,
            static=self.static * factor,
            checkpoint=self.checkpoint * factor,
            cap_leakage=self.cap_leakage * factor,
            conversion=self.conversion * factor,
        )

    def add(self, other: "EnergyBreakdown") -> None:
        self.compute += other.compute
        self.vm += other.vm
        self.nvm += other.nvm
        self.static += other.static
        self.checkpoint += other.checkpoint
        self.cap_leakage += other.cap_leakage
        self.conversion += other.conversion


@dataclass
class InferenceMetrics:
    """Everything one evaluation reports about a design point."""

    e2e_latency: float  # s, charging + execution (Eq. 7 family)
    busy_time: float  # s, rail-on execution time
    charge_time: float  # s, waiting for energy
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    harvested_energy: float = 0.0  # E_eh over the inference window
    power_cycles: int = 0
    exceptions: int = 0  # unplanned mid-tile power failures
    feasible: bool = True
    infeasible_reason: str = ""
    #: Steady-state period of back-to-back inference, s: e2e latency
    #: plus the time to restore the energy bank for the next run.  0
    #: means "not computed" (falls back to the e2e latency).
    sustained_period: float = 0.0

    @property
    def system_efficiency(self) -> float:
        """``E_infer / E_eh`` (Figs. 8 and 11).  0 when nothing harvested."""
        if self.harvested_energy <= 0.0:
            return 0.0
        return self.energy.inference / self.harvested_energy

    @property
    def total_energy(self) -> float:
        return self.energy.total

    @property
    def sustained_throughput(self) -> float:
        """Back-to-back inferences per second at steady state."""
        period = self.sustained_period or self.e2e_latency
        if period <= 0.0 or math.isinf(period):
            return 0.0
        return 1.0 / period

    @classmethod
    def infeasible(cls, reason: str,
                   busy_time: float = float("inf"),
                   charge_time: float = float("inf")) -> "InferenceMetrics":
        """Marker result for designs that can never finish the workload.

        The headline latency is pinned to ``inf`` so rankings and
        feasibility filters behave; callers that observed partial
        progress before giving up (the step simulator) may pass the
        busy/charge clocks reached so far for diagnostics.
        """
        return cls(
            e2e_latency=float("inf"),
            busy_time=busy_time,
            charge_time=charge_time,
            feasible=False,
            infeasible_reason=reason,
        )
