"""Post-hoc analysis of step-simulation traces.

A trace answers questions the aggregate metrics cannot: how long are
the energy cycles, how is work distributed across them, where do the
exceptions cluster?  :func:`analyze_trace` distils a
:class:`~repro.sim.trace.Trace` into those operational statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.trace import EventKind, Trace


@dataclass(frozen=True)
class CycleStats:
    """One rail-on period: from POWER_ON (or t=0 when starting hot) to
    the following POWER_OFF (or the end of the inference)."""

    start: float
    end: float
    tiles_completed: int
    exceptions: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TraceAnalysis:
    """Operational statistics of one simulated inference."""

    cycles: List[CycleStats]
    total_time: float
    on_time: float
    tiles_per_layer: Dict[str, int] = field(default_factory=dict)
    exceptions_per_layer: Dict[str, int] = field(default_factory=dict)

    @property
    def duty_cycle(self) -> float:
        """Fraction of wall time the rail was up."""
        if self.total_time <= 0:
            return 0.0
        return min(self.on_time / self.total_time, 1.0)

    @property
    def mean_cycle_duration(self) -> float:
        if not self.cycles:
            return 0.0
        return sum(c.duration for c in self.cycles) / len(self.cycles)

    @property
    def mean_tiles_per_cycle(self) -> float:
        if not self.cycles:
            return 0.0
        return sum(c.tiles_completed for c in self.cycles) / len(self.cycles)

    def render(self) -> str:
        lines = [
            f"cycles            : {len(self.cycles)}",
            f"duty cycle        : {self.duty_cycle:.1%}",
            f"mean cycle length : {self.mean_cycle_duration * 1e3:.2f} ms",
            f"mean tiles/cycle  : {self.mean_tiles_per_cycle:.2f}",
        ]
        if self.exceptions_per_layer:
            worst = max(self.exceptions_per_layer.items(),
                        key=lambda kv: kv[1])
            lines.append(f"exception hotspot : {worst[0]} ({worst[1]})")
        return "\n".join(lines)


def analyze_trace(trace: Trace) -> TraceAnalysis:
    """Reduce a trace into per-cycle and per-layer statistics."""
    cycles: List[CycleStats] = []
    tiles_per_layer: Dict[str, int] = {}
    exceptions_per_layer: Dict[str, int] = {}

    cycle_start = 0.0
    cycle_tiles = 0
    cycle_exceptions = 0
    in_cycle = True  # simulations may start with the rail already up
    last_time = 0.0

    for event in trace:
        last_time = max(last_time, event.time)
        if event.kind is EventKind.POWER_ON:
            cycle_start = event.time
            cycle_tiles = 0
            cycle_exceptions = 0
            in_cycle = True
        elif event.kind is EventKind.POWER_OFF:
            if in_cycle:
                cycles.append(CycleStats(
                    start=cycle_start, end=event.time,
                    tiles_completed=cycle_tiles,
                    exceptions=cycle_exceptions))
            in_cycle = False
        elif event.kind is EventKind.TILE_COMPLETED:
            cycle_tiles += 1
            tiles_per_layer[event.layer] = \
                tiles_per_layer.get(event.layer, 0) + 1
        elif event.kind is EventKind.EXCEPTION:
            cycle_exceptions += 1
            exceptions_per_layer[event.layer] = \
                exceptions_per_layer.get(event.layer, 0) + 1
        elif event.kind is EventKind.INFERENCE_COMPLETED and in_cycle:
            cycles.append(CycleStats(
                start=cycle_start, end=event.time,
                tiles_completed=cycle_tiles,
                exceptions=cycle_exceptions))
            in_cycle = False

    on_time = sum(c.duration for c in cycles)
    return TraceAnalysis(
        cycles=cycles,
        total_time=last_time,
        on_time=on_time,
        tiles_per_layer=tiles_per_layer,
        exceptions_per_layer=exceptions_per_layer,
    )
