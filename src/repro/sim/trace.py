"""Event trace of a step-based simulation run.

The simulator records power transitions, tile lifecycle and checkpoint
activity; examples and tests use the trace to assert ordering invariants
(a resume never precedes its save, tiles complete in order, ...).

The trace is a **bounded ring buffer**: only the most recent
:data:`Trace.DEFAULT_CAPACITY` events are retained as :class:`Event`
objects, while exact per-:class:`EventKind` running counters cover the
whole run — so day-scale simulations stop accumulating millions of
event objects, yet ``count()`` stays exact.  Pass ``capacity=None`` for
the old unbounded full-retention behaviour (trace analysis and plotting
want the complete stream).

The cycle-skipping fast path of the step simulator accounts for the
events of arithmetically replayed cycles through :meth:`Trace.record_bulk`
— counters advance, but no per-event objects are materialised.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional


class EventKind(Enum):
    POWER_ON = "power_on"
    POWER_OFF = "power_off"
    TILE_STARTED = "tile_started"
    TILE_COMPLETED = "tile_completed"
    CHECKPOINT_SAVED = "checkpoint_saved"
    CHECKPOINT_RESUMED = "checkpoint_resumed"
    CHECKPOINT_FAILED = "checkpoint_failed"  # NVM commit failed verify
    ROLLBACK = "rollback"  # corrupted commit; replay last checkpoint
    EXCEPTION = "exception"  # unplanned mid-tile power failure
    LAYER_COMPLETED = "layer_completed"
    INFERENCE_COMPLETED = "inference_completed"


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event."""

    time: float
    kind: EventKind
    layer: str = ""
    tile: int = -1
    detail: str = ""

    def render(self) -> str:
        where = f" {self.layer}[{self.tile}]" if self.layer else ""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:12.6f}s {self.kind.value}{where}{suffix}"


class Trace:
    """Event log with exact counters and bounded event retention.

    ``capacity`` bounds how many :class:`Event` objects are kept (oldest
    evicted first); ``None`` retains everything.  ``count`` / ``__len__``
    always reflect the *full* recorded history, including evicted events
    and bulk-recorded (fast-forwarded) ones.
    """

    #: Retained-event bound of a default-constructed trace.  Large enough
    #: that every short run keeps its complete stream; small enough that
    #: day-scale runs stay O(1) in memory.
    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._counts: Dict[EventKind, int] = {}
        self._total = 0

    def record(self, time: float, kind: EventKind, layer: str = "",
               tile: int = -1, detail: str = "") -> None:
        self._events.append(Event(time, kind, layer, tile, detail))
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._total += 1

    def record_bulk(self, kind: EventKind, count: int) -> None:
        """Account for ``count`` events without materialising them.

        Used by the simulator's cycle-skipping fast path: the per-kind
        counters (and the total) advance exactly as if the events of the
        replayed cycles had been recorded one by one, in O(1).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._counts[kind] = self._counts.get(kind, 0) + count
        self._total += count

    # -- observers ---------------------------------------------------------------

    @property
    def events(self) -> List[Event]:
        """The retained (most recent) events, oldest first."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Recorded events not retained (evicted or bulk-accounted)."""
        return self._total - len(self._events)

    def counts(self) -> Dict[EventKind, int]:
        """Exact per-kind counts over the full history (a copy)."""
        return dict(self._counts)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        """Total events recorded, including evicted and bulk ones."""
        return self._total

    def of_kind(self, kind: EventKind) -> List[Event]:
        """Retained events of one kind (evicted events are gone)."""
        return [e for e in self._events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Exact count of ``kind`` over the full history."""
        return self._counts.get(kind, 0)

    def render(self, limit: int | None = None) -> str:
        events = self.events
        shown = events if limit is None else events[:limit]
        lines = [event.render() for event in shown]
        remaining = self._total - len(shown)
        if remaining > 0:
            lines.append(f"... {remaining} more events")
        return "\n".join(lines)
