"""Event trace of a step-based simulation run.

The simulator records power transitions, tile lifecycle and checkpoint
activity; examples and tests use the trace to assert ordering invariants
(a resume never precedes its save, tiles complete in order, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List


class EventKind(Enum):
    POWER_ON = "power_on"
    POWER_OFF = "power_off"
    TILE_STARTED = "tile_started"
    TILE_COMPLETED = "tile_completed"
    CHECKPOINT_SAVED = "checkpoint_saved"
    CHECKPOINT_RESUMED = "checkpoint_resumed"
    CHECKPOINT_FAILED = "checkpoint_failed"  # NVM commit failed verify
    ROLLBACK = "rollback"  # corrupted commit; replay last checkpoint
    EXCEPTION = "exception"  # unplanned mid-tile power failure
    LAYER_COMPLETED = "layer_completed"
    INFERENCE_COMPLETED = "inference_completed"


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event."""

    time: float
    kind: EventKind
    layer: str = ""
    tile: int = -1
    detail: str = ""

    def render(self) -> str:
        where = f" {self.layer}[{self.tile}]" if self.layer else ""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:12.6f}s {self.kind.value}{where}{suffix}"


@dataclass
class Trace:
    """Append-only event log."""

    events: List[Event] = field(default_factory=list)

    def record(self, time: float, kind: EventKind, layer: str = "",
               tile: int = -1, detail: str = "") -> None:
        self.events.append(Event(time, kind, layer, tile, detail))

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def render(self, limit: int | None = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [event.render() for event in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
