"""Simulation and evaluation of intermittent inference.

Two evaluation paths, cross-checked against each other:

* :mod:`repro.sim.analytical` — the closed-form model of the paper's
  Eqs. 1-9; fast enough for millions of search queries.
* :mod:`repro.sim.engine` + :mod:`repro.sim.intermittent` — the
  step-based simulator of §III-D: charging is fast-forwarded through
  the capacitor ODE, computation is stepped so that harvest-during-
  execution, mid-tile power failures and emergent checkpoints are all
  captured.

:mod:`repro.sim.evaluator` is the facade (the "CHRYSALIS Evaluator") the
explorer calls.
"""

from repro.sim.analytical import AnalyticalModel
from repro.sim.engine import SimulationResult, StepSimulator
from repro.sim.evaluator import ChrysalisEvaluator, EvaluationMode
from repro.sim.intermittent import InferenceController
from repro.sim.metrics import EnergyBreakdown, InferenceMetrics
from repro.sim.trace import Event, EventKind, Trace

__all__ = [
    "AnalyticalModel",
    "ChrysalisEvaluator",
    "EnergyBreakdown",
    "EvaluationMode",
    "Event",
    "EventKind",
    "InferenceController",
    "InferenceMetrics",
    "SimulationResult",
    "StepSimulator",
    "Trace",
]
