"""Inference controller: tile-by-tile intermittent execution state.

This is the inference-subsystem half of the paper's step simulation:
the evaluator "invokes the energy controller, which monitors energy
changes, and the inference controller, which tracks inference changes".

The controller walks the execution plan (one :class:`LayerCost` per
layer, each made of ``n_tiles`` identical tiles) and converts delivered
energy into tile progress.  What happens on a power failure depends on
the checkpoint strategy:

* **eager** (the paper's model) — in-flight progress is volatile and
  lost; the failure costs an extra emergency save+resume round.  These
  are how the ``r_exc`` exceptions of Eq. 5 *emerge* in the step
  simulator rather than being assumed.
* **jit** — a voltage monitor fires one just-in-time save before the
  collapse, preserving the tile's progress at the cost of writing the
  whole live working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.dataflow.cost_model import LayerCost
from repro.errors import SimulationError
from repro.hardware.checkpoint import CheckpointModel, CheckpointStrategy
from repro.hardware.memory import FRAM
from repro.sim.metrics import EnergyBreakdown


def _default_checkpoint() -> CheckpointModel:
    return CheckpointModel(nvm=FRAM)


@dataclass
class InferenceController:
    """Tracks how far the inference has progressed.

    ``checkpoint`` must be the same model that priced the plan's tiles,
    so that the per-round energies charged here match the expected
    values baked into the tile costs.
    """

    plan: Sequence[LayerCost]
    checkpoint: CheckpointModel = field(default_factory=_default_checkpoint)
    layer_index: int = 0
    tile_index: int = 0
    tile_energy_done: float = 0.0
    exceptions: int = 0
    planned_checkpoints: int = 0
    breakdown: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: Delivered energy whose work was discarded (volatile progress lost
    #: to power failures, tiles replayed after corrupted commits), J.
    wasted_energy: float = 0.0
    #: Tiles rolled back because a brownout corrupted their commit.
    rollbacks: int = 0
    #: Checkpoint commits that failed verify and were retried.
    checkpoint_retries: int = 0

    def __post_init__(self) -> None:
        if not self.plan:
            raise SimulationError("empty execution plan")

    # -- observers ------------------------------------------------------------

    @property
    def exception_rate(self) -> float:
        return self.checkpoint.exception_rate

    @property
    def strategy(self) -> CheckpointStrategy:
        return self.checkpoint.strategy

    @property
    def finished(self) -> bool:
        return self.layer_index >= len(self.plan)

    @property
    def current_layer(self) -> LayerCost:
        if self.finished:
            raise SimulationError("inference already finished")
        return self.plan[self.layer_index]

    def tile_energy_demand(self) -> float:
        """Energy still needed to finish the current tile, J.

        Uses the tile's checkpoint-free energy: checkpoint rounds are
        charged separately at boundaries and failures.
        """
        tile = self.current_layer.tile
        return tile.energy_without_checkpoint - self.tile_energy_done

    def tile_power(self) -> float:
        """Average rail power while executing the current tile, W."""
        tile = self.current_layer.tile
        if tile.latency <= 0.0:
            return 0.0
        return tile.energy_without_checkpoint / tile.latency

    def remaining_tiles(self) -> int:
        count = 0
        for i in range(self.layer_index, len(self.plan)):
            cost = self.plan[i]
            count += cost.n_tiles
        if not self.finished:
            count -= self.tile_index
        return count

    # -- checkpoint-round energies --------------------------------------------

    def checkpoint_round_energy(self) -> float:
        """One planned (boundary) save+resume round, J; 0 under JIT."""
        if self.finished or self.strategy is CheckpointStrategy.JIT:
            return 0.0
        if self.current_layer.n_tiles <= 1:
            return 0.0
        ws = self.current_layer.tile.working_set_bytes
        return (self.checkpoint.save_energy(ws)
                + self.checkpoint.resume_energy(ws))

    def checkpoint_round_time(self) -> float:
        """Duration of one planned round, s; 0 under JIT."""
        if self.finished or self.strategy is CheckpointStrategy.JIT:
            return 0.0
        if self.current_layer.n_tiles <= 1:
            return 0.0
        ws = self.current_layer.tile.working_set_bytes
        return (self.checkpoint.save_time(ws)
                + self.checkpoint.resume_time(ws))

    def checkpoint_retry(self) -> float:
        """Charge one failed commit + read-back verify; returns its J.

        Called by the engine when fault injection fails a planned
        checkpoint write: the wasted write and the verify read are
        added to the checkpoint energy bill, and the retry counter
        feeds the resilience report.
        """
        ws = self.current_layer.tile.working_set_bytes
        energy = self.checkpoint.commit_retry_energy(ws)
        self.breakdown.checkpoint += energy
        self.checkpoint_retries += 1
        return energy

    def checkpoint_retry_time(self) -> float:
        """Duration of one failed commit + verify round, s."""
        ws = self.current_layer.tile.working_set_bytes
        return self.checkpoint.commit_retry_time(ws)

    def rollback_tile(self) -> Tuple[str, int]:
        """Revert the last completed tile after a corrupted commit.

        A brownout corrupted the in-flight checkpoint, so the restore
        finds only the *previous* consistent checkpoint: the tile whose
        boundary was being committed must be re-executed.  Its energy
        was genuinely spent (it stays in the breakdown) but the work is
        lost, so it also counts as waste.  Returns the (layer, tile)
        that will re-execute.
        """
        if self.tile_index <= 0:
            raise SimulationError(
                "rollback requested with no in-layer checkpoint boundary"
            )
        self.tile_index -= 1
        tile = self.current_layer.tile
        self.wasted_energy += tile.energy_without_checkpoint
        self.rollbacks += 1
        self.tile_energy_done = 0.0
        return (self.current_layer.layer_name, self.tile_index)

    def _emergency_round_energy(self) -> float:
        ws = self.current_layer.tile.working_set_bytes
        if self.strategy is CheckpointStrategy.JIT:
            volume = self.checkpoint.header_bytes + ws
            nvm = self.checkpoint.nvm
            return nvm.write_energy(volume) + nvm.read_energy(volume)
        return (self.checkpoint.save_energy(ws)
                + self.checkpoint.resume_energy(ws))

    # -- progress ----------------------------------------------------------------

    def deliver(self, energy: float) -> List[Tuple[str, int]]:
        """Consume ``energy`` joules of rail power; returns completed tiles.

        Each completed tile is reported as ``(layer_name, tile_index)``
        so the engine can emit trace events and charge the planned
        checkpoint at the boundary.
        """
        if energy < 0:
            raise SimulationError(f"negative energy delivery: {energy}")
        completed: List[Tuple[str, int]] = []
        self.tile_energy_done += energy
        while not self.finished:
            demand = self.tile_energy_demand()
            if demand > 1e-15:
                break
            leftover = -demand
            completed.append((self.current_layer.layer_name, self.tile_index))
            self._complete_tile()
            self.tile_energy_done = leftover
        if self.finished:
            self.tile_energy_done = 0.0
        return completed

    def power_failure(self) -> bool:
        """Handle a rail drop; returns ``True`` if work was lost.

        Eager: mid-tile progress is volatile and lost, and the retry
        pays an emergency save+resume.  JIT: the voltage monitor saved
        the live state just in time — progress survives, the save+
        restore energy is still paid.
        """
        if self.finished:
            return False
        mid_tile = self.tile_energy_done > 1e-15
        if not mid_tile:
            return False
        self.exceptions += 1
        self.breakdown.checkpoint += self._emergency_round_energy()
        if self.strategy is CheckpointStrategy.JIT:
            return False
        self.wasted_energy += self.tile_energy_done
        self.tile_energy_done = 0.0
        return True

    # -- internals -------------------------------------------------------------------

    def _complete_tile(self) -> None:
        layer = self.current_layer
        tile = layer.tile
        self.breakdown.compute += tile.compute_energy
        self.breakdown.vm += tile.vm_energy
        self.breakdown.nvm += tile.nvm_energy
        self.breakdown.static += tile.static_energy
        planned_round = self.checkpoint_round_energy()
        self.tile_index += 1
        if self.tile_index < layer.n_tiles and planned_round > 0.0:
            # Planned checkpoint between energy-cycle tiles.
            self.breakdown.checkpoint += planned_round
            self.planned_checkpoints += 1
        if self.tile_index >= layer.n_tiles:
            self.tile_index = 0
            self.layer_index += 1
