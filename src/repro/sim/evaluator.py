"""The CHRYSALIS Evaluator — the facade the explorer queries.

Given a candidate :class:`~repro.design.AuTDesign` and a workload, the
evaluator returns :class:`~repro.sim.metrics.InferenceMetrics` either
from the closed-form model (fast; the search inner loop) or from the
step-based simulator (faithful; validation and final reporting).

The paper averages every search over two solar environments (brighter
and darker) "to ensure the system is able to run in both environments";
:meth:`ChrysalisEvaluator.evaluate_average` implements that protocol.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.design import AuTDesign
from repro.energy.controller import EnergyController
from repro.energy.environment import LightEnvironment
from repro.energy.harvester import SolarHarvester
from repro.energy.traces import TraceEnvironment, TraceHarvester
from repro.errors import ConfigurationError
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import span
from repro.sim.analytical import AnalyticalModel
from repro.sim.engine import SimulationResult, StepSimulator
from repro.sim.intermittent import InferenceController
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.injector import FaultInjector


class EvaluationMode(enum.Enum):
    """Which evaluation path to use."""

    ANALYTICAL = "analytical"
    STEP = "step"


def build_harvester(design: AuTDesign, environment):
    """The harvester matching ``environment``'s kind.

    A :class:`~repro.energy.traces.TraceEnvironment` drives the panel
    through its piecewise-constant trace; anything else (the static
    lighting presets) uses the paper's constant-power solar harvester.
    """
    panel = design.energy.build_panel()
    if isinstance(environment, TraceEnvironment):
        return TraceHarvester(panel=panel, trace=environment)
    return SolarHarvester(panel=panel, environment=environment)


class ChrysalisEvaluator:
    """Prices AuT design candidates on a workload."""

    def __init__(self, network: Network,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 mode: EvaluationMode = EvaluationMode.ANALYTICAL,
                 checkpoint: Optional[CheckpointModel] = None,
                 steps_per_tile: int = 16,
                 faults: Optional["FaultInjector"] = None,
                 max_steps: Optional[int] = None,
                 time_budget_s: Optional[float] = None,
                 fast_forward: bool = True) -> None:
        self.network = network
        self.environments = tuple(
            environments
            if environments is not None
            else LightEnvironment.paper_environments()
        )
        if not self.environments:
            raise ConfigurationError("at least one environment is required")
        self.mode = mode
        self.checkpoint = checkpoint
        self.steps_per_tile = steps_per_tile
        self.faults = faults
        self.max_steps = max_steps
        self.time_budget_s = time_budget_s
        #: Enable the step simulator's cycle-skipping fast path (it
        #: engages on constant-harvest and piecewise-constant-trace
        #: runs, fault-free; disable it to force exact stepping, e.g.
        #: when the complete per-step event trace matters).
        self.fast_forward = fast_forward

    # -- single environment ------------------------------------------------------

    def evaluate(self, design: AuTDesign,
                 environment: LightEnvironment) -> InferenceMetrics:
        """Metrics of ``design`` on this evaluator's network."""
        if self.mode is EvaluationMode.ANALYTICAL:
            model = self._analytical(design, environment)
            return model.evaluate()
        return self.simulate(design, environment).metrics

    def simulate(self, design: AuTDesign, environment: LightEnvironment,
                 initial_voltage: Optional[float] = None,
                 faults: Optional["FaultInjector"] = None,
                 fast_forward: Optional[bool] = None) -> SimulationResult:
        """Run the step-based simulator regardless of the default mode.

        ``initial_voltage`` defaults to the PMIC's on-threshold — the
        steady-state (amortised) semantics the paper's Eq. 7 uses, where
        each inference starts as soon as one energy cycle is banked.
        Pass 0.0 to include the one-time cold-start charge.

        ``faults`` (defaulting to the evaluator-level injector, if any)
        injects the :mod:`repro.faults` processes; a fresh copy is taken
        per run so repeated simulations see identical fault sequences.

        ``fast_forward`` (defaulting to the evaluator-level setting)
        controls the cycle-skipping fast path; pass ``False`` when the
        complete per-event trace matters more than wall-clock time.
        """
        model = self._analytical(design, environment)
        plan = model.plan()
        harvester = build_harvester(design, environment)
        if initial_voltage is None:
            initial_voltage = design.energy.pmic.v_on
        injector = faults if faults is not None else self.faults
        energy = EnergyController(
            harvester=harvester,
            capacitor=design.energy.build_capacitor(initial_voltage),
            pmic=design.energy.pmic,
            faults=injector.fresh() if injector is not None else None,
        )
        inference = InferenceController(plan=plan,
                                        checkpoint=model.checkpoint)
        if fast_forward is None:
            fast_forward = self.fast_forward
        simulator = StepSimulator(energy, inference,
                                  steps_per_tile=self.steps_per_tile,
                                  max_steps=self.max_steps,
                                  time_budget_s=self.time_budget_s,
                                  fast_forward=fast_forward)
        return simulator.run()

    # -- the paper's two-environment protocol -------------------------------------

    def evaluate_average(self, design: AuTDesign) -> InferenceMetrics:
        """Average metrics over the configured environments.

        Any infeasible environment makes the whole design infeasible —
        the paper requires the system "to run in both environments".
        """
        with span("eval.average", mode=self.mode.value):
            results = []
            for environment in self.environments:
                metrics = self.evaluate(design, environment)
                if not metrics.feasible:
                    return metrics
                results.append(metrics)
            return _average_metrics(results)

    # -- internals ------------------------------------------------------------------

    def _analytical(self, design: AuTDesign,
                    environment: LightEnvironment) -> AnalyticalModel:
        return AnalyticalModel(design, self.network, environment,
                               checkpoint=self.checkpoint)


def _average_metrics(results: Sequence[InferenceMetrics]) -> InferenceMetrics:
    """Element-wise mean of feasible metric sets."""
    n = len(results)
    breakdown = results[0].energy.scaled(1.0 / n)
    for metrics in results[1:]:
        breakdown.add(metrics.energy.scaled(1.0 / n))
    return InferenceMetrics(
        e2e_latency=sum(m.e2e_latency for m in results) / n,
        busy_time=sum(m.busy_time for m in results) / n,
        charge_time=sum(m.charge_time for m in results) / n,
        energy=breakdown,
        harvested_energy=sum(m.harvested_energy for m in results) / n,
        power_cycles=round(sum(m.power_cycles for m in results) / n),
        exceptions=round(sum(m.exceptions for m in results) / n),
        sustained_period=sum(m.sustained_period or m.e2e_latency
                             for m in results) / n,
    )
