"""Day-scale operation: back-to-back inference over the diurnal cycle.

The paper's premise is that sunlight "does not undergo significant
changes within a short time (<5 minutes) and may change greatly in one
day" — so a deployed AuT's real figure of merit is *inferences per day*
and how they distribute across it.  :func:`simulate_day` runs repeated
inferences against the diurnal harvest profile and reports that
distribution.

To stay fast at day scale, each inference is priced by the analytical
model at the hour's actual ``k_eh`` (re-using the closed forms the
searches trust), and the day is advanced inference by inference —
charging through the night is handled by the capacitor's closed-form
charge time at each hour's harvest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.analytical import AnalyticalModel
from repro.workloads.network import Network

_SECONDS_PER_DAY = 24 * 3600.0


@dataclass(frozen=True)
class _FixedKEnvironment(LightEnvironment):
    """A :class:`LightEnvironment` pinned to one representative ``k_eh``.

    Hoisted to module level so each hourly evaluation reuses one class
    instead of minting a fresh subclass (and its descriptor machinery)
    per call.
    """

    fixed_k_eh: float = 0.0

    @property
    def k_eh(self) -> float:  # type: ignore[override]
        return self.fixed_k_eh


@dataclass(frozen=True)
class DayResult:
    """One simulated day of operation."""

    inferences: int
    per_hour: Dict[int, int]  # hour-of-day -> completed inferences
    active_hours: int  # hours with at least one completion
    first_completion_hour: Optional[float]
    last_completion_hour: Optional[float]

    def render(self) -> str:
        lines = [f"inferences/day : {self.inferences}",
                 f"active hours   : {self.active_hours}"]
        if self.inferences:
            lines.append(
                f"window         : "
                f"{self.first_completion_hour:.1f}h - "
                f"{self.last_completion_hour:.1f}h")
        peak = max(self.per_hour.values(), default=0)
        for hour in range(24):
            count = self.per_hour.get(hour, 0)
            bar = "#" * (round(40 * count / peak) if peak else 0)
            lines.append(f"  {hour:02d}:00 {count:>7}  {bar}")
        return "\n".join(lines)


def simulate_day(design: AuTDesign, network: Network,
                 environment: LightEnvironment,
                 checkpoint: Optional[CheckpointModel] = None,
                 start_hour: float = 0.0,
                 max_inferences: int = 2_000_000,
                 use_step: bool = False) -> DayResult:
    """Count completed inferences over one day of the diurnal profile.

    The environment's hour-by-hour ``k_eh_at`` drives a sequence of
    sustained-period evaluations; hours with no harvest (night) pass
    without progress unless the current period already spans them.

    ``use_step=True`` prices each hour with the step simulator instead
    of the closed forms — cross-validation of the analytical day at
    step fidelity.  The step engine's cycle-skipping fast path (the
    hourly harvest is constant) keeps this affordable: one bounded
    simulation per distinct daylight hour.
    """
    per_hour: Dict[int, int] = {}
    completions: List[float] = []
    t = start_hour * 3600.0
    count = 0

    # Cache the per-hour evaluation: k_eh is constant within the hour.
    period_by_hour: Dict[int, float] = {}

    def period_at(hour: int) -> float:
        if hour not in period_by_hour:
            k_eh = environment.k_eh_at(float(hour) + 0.5)
            if k_eh <= 0.0:
                period_by_hour[hour] = math.inf
            else:
                frozen = _environment_with_k(environment, k_eh)
                if use_step:
                    from repro.sim.evaluator import ChrysalisEvaluator
                    evaluator = ChrysalisEvaluator(
                        network, environments=(frozen,),
                        checkpoint=checkpoint)
                    metrics = evaluator.simulate(design, frozen).metrics
                else:
                    model = AnalyticalModel(design, network, frozen,
                                            checkpoint=checkpoint)
                    metrics = model.evaluate()
                period_by_hour[hour] = (
                    metrics.sustained_period if metrics.feasible
                    else math.inf)
        return period_by_hour[hour]

    while t < _SECONDS_PER_DAY and count < max_inferences:
        hour = int(t // 3600.0) % 24
        period = period_at(hour)
        if math.isinf(period):
            # No progress this hour: skip to the next one.
            t = (math.floor(t / 3600.0) + 1) * 3600.0
            continue
        t += period
        if t >= _SECONDS_PER_DAY:
            break
        count += 1
        finish_hour = int(t // 3600.0) % 24
        per_hour[finish_hour] = per_hour.get(finish_hour, 0) + 1
        completions.append(t / 3600.0)

    return DayResult(
        inferences=count,
        per_hour=per_hour,
        active_hours=len(per_hour),
        first_completion_hour=completions[0] if completions else None,
        last_completion_hour=completions[-1] if completions else None,
    )


def _environment_with_k(environment: LightEnvironment,
                        k_eh: float) -> LightEnvironment:
    """A frozen environment whose representative ``k_eh`` equals the
    diurnal value at the hour under simulation."""
    return _FixedKEnvironment(
        cloudiness=environment.cloudiness,
        panel_efficiency=environment.panel_efficiency,
        peak_elevation_deg=environment.peak_elevation_deg,
        deployment_factor=environment.deployment_factor,
        ambient_temp_c=environment.ambient_temp_c,
        temp_coefficient=environment.temp_coefficient,
        name=f"{environment.name}@fixed",
        fixed_k_eh=k_eh,
    )
