"""Per-layer profiling and resilience reports for a design.

The evaluator's metrics summarise a whole inference; designers also
want the layer-by-layer picture — where the MACs, the bytes, the
checkpoints and the energy cycles actually go.  :func:`profile_design`
produces that table from the analytical model, and
:func:`render_profile` formats it.  :func:`render_resilience` and
:func:`render_faults_sweep` format the :mod:`repro.faults` outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.analytical import AnalyticalModel
from repro.workloads.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.report import ResilienceReport
    from repro.faults.sweep import FaultSweepCell


@dataclass(frozen=True)
class LayerProfile:
    """One row of the per-layer profile."""

    layer: str
    kind: str
    macs: int
    n_tiles: int
    dataflow: str
    busy_ms: float
    energy_uj: float
    checkpoint_uj: float
    nvm_kb: float  # NVM traffic per inference
    energy_share: float  # fraction of total inference energy


def profile_design(design: AuTDesign, network: Network,
                   environment: LightEnvironment,
                   checkpoint: Optional[CheckpointModel] = None
                   ) -> List[LayerProfile]:
    """Layer-by-layer costs of ``design`` in ``environment``."""
    model = AnalyticalModel(design, network, environment,
                            checkpoint=checkpoint)
    plan = model.plan()
    total_energy = sum(cost.energy for cost in plan) or 1.0
    profiles = []
    for layer, mapping, cost in zip(network, design.mappings, plan):
        nvm_bytes = cost.n_tiles * (cost.tile.nvm_read_bytes
                                    + cost.tile.nvm_write_bytes)
        profiles.append(LayerProfile(
            layer=layer.name,
            kind=layer.kind.value,
            macs=layer.macs,
            n_tiles=cost.n_tiles,
            dataflow=mapping.style.value,
            busy_ms=cost.busy_time * 1e3,
            energy_uj=cost.energy * 1e6,
            checkpoint_uj=cost.checkpoint_energy * 1e6,
            nvm_kb=nvm_bytes / 1024.0,
            energy_share=cost.energy / total_energy,
        ))
    return profiles


def render_profile(profiles: List[LayerProfile],
                   top: Optional[int] = None) -> str:
    """Readable table, optionally truncated to the ``top`` energy rows."""
    rows = profiles
    if top is not None:
        rows = sorted(profiles, key=lambda p: p.energy_uj,
                      reverse=True)[:top]
    header = (f"{'layer':<16}{'kind':<10}{'df':<4}{'tiles':>6}"
              f"{'busy ms':>10}{'energy uJ':>12}{'ckpt uJ':>10}"
              f"{'NVM KB':>9}{'share':>8}")
    lines = [header, "-" * len(header)]
    for p in rows:
        lines.append(
            f"{p.layer:<16}{p.kind:<10}{p.dataflow:<4}{p.n_tiles:>6}"
            f"{p.busy_ms:>10.3f}{p.energy_uj:>12.2f}"
            f"{p.checkpoint_uj:>10.3f}{p.nvm_kb:>9.1f}"
            f"{p.energy_share:>7.1%}")
    total_uj = sum(p.energy_uj for p in profiles)
    total_ms = sum(p.busy_ms for p in profiles)
    lines.append("-" * len(header))
    lines.append(f"{'total':<30}{sum(p.n_tiles for p in profiles):>6}"
                 f"{total_ms:>10.3f}{total_uj:>12.2f}")
    return "\n".join(lines)


def render_resilience(report: "ResilienceReport") -> str:
    """Readable summary of one run's resilience figures."""
    lines = [
        f"completed        : {'yes' if report.completed else 'no'}",
        f"forward progress : {report.forward_progress_ratio:.1%} of "
        f"{report.delivered_energy_j * 1e6:.1f} uJ delivered",
        f"re-exec overhead : {report.reexecution_overhead:.1%} "
        f"({report.wasted_energy_j * 1e6:.2f} uJ discarded)",
        f"ckpt loss rate   : {report.checkpoint_loss_rate:.1%} "
        f"({report.checkpoint_retries} retried, "
        f"{report.rollbacks} rolled back)",
        f"power cycles     : {report.power_cycles} "
        f"({report.exceptions} unplanned)",
    ]
    if report.survival_curve:
        t_end, frac_end = report.survival_curve[-1]
        lines.append(f"survival curve   : {len(report.survival_curve)} "
                     f"samples, {frac_end:.1%} of tiles durable at "
                     f"{t_end:.3g} s")
    return "\n".join(lines)


def render_faults_sweep(cells: Sequence["FaultSweepCell"]) -> str:
    """Survival-under-faults table, one row per intensity."""
    header = (f"{'intensity':>10}{'survival':>10}{'latency s':>12}"
              f"{'fwd prog':>10}{'re-exec':>9}{'ckpt loss':>11}"
              f"{'rollbacks':>11}{'exceptions':>12}")
    lines = [header, "-" * len(header)]
    for cell in cells:
        latency = (f"{cell.mean_latency_s:>12.4g}"
                   if cell.mean_latency_s != float("inf")
                   else f"{'-':>12}")
        lines.append(
            f"{cell.intensity:>10.2f}{cell.survival:>9.0%}{latency}"
            f"{cell.mean_forward_progress:>9.1%}"
            f"{cell.mean_reexecution_overhead:>8.1%}"
            f"{cell.mean_checkpoint_loss_rate:>10.1%}"
            f"{cell.mean_rollbacks:>11.1f}{cell.mean_exceptions:>12.1f}")
    return "\n".join(lines)
