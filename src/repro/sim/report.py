"""Per-layer profiling reports for a design on a workload.

The evaluator's metrics summarise a whole inference; designers also
want the layer-by-layer picture — where the MACs, the bytes, the
checkpoints and the energy cycles actually go.  :func:`profile_design`
produces that table from the analytical model, and
:func:`render_profile` formats it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.analytical import AnalyticalModel
from repro.workloads.network import Network


@dataclass(frozen=True)
class LayerProfile:
    """One row of the per-layer profile."""

    layer: str
    kind: str
    macs: int
    n_tiles: int
    dataflow: str
    busy_ms: float
    energy_uj: float
    checkpoint_uj: float
    nvm_kb: float  # NVM traffic per inference
    energy_share: float  # fraction of total inference energy


def profile_design(design: AuTDesign, network: Network,
                   environment: LightEnvironment,
                   checkpoint: Optional[CheckpointModel] = None
                   ) -> List[LayerProfile]:
    """Layer-by-layer costs of ``design`` in ``environment``."""
    model = AnalyticalModel(design, network, environment,
                            checkpoint=checkpoint)
    plan = model.plan()
    total_energy = sum(cost.energy for cost in plan) or 1.0
    profiles = []
    for layer, mapping, cost in zip(network, design.mappings, plan):
        nvm_bytes = cost.n_tiles * (cost.tile.nvm_read_bytes
                                    + cost.tile.nvm_write_bytes)
        profiles.append(LayerProfile(
            layer=layer.name,
            kind=layer.kind.value,
            macs=layer.macs,
            n_tiles=cost.n_tiles,
            dataflow=mapping.style.value,
            busy_ms=cost.busy_time * 1e3,
            energy_uj=cost.energy * 1e6,
            checkpoint_uj=cost.checkpoint_energy * 1e6,
            nvm_kb=nvm_bytes / 1024.0,
            energy_share=cost.energy / total_energy,
        ))
    return profiles


def render_profile(profiles: List[LayerProfile],
                   top: Optional[int] = None) -> str:
    """Readable table, optionally truncated to the ``top`` energy rows."""
    rows = profiles
    if top is not None:
        rows = sorted(profiles, key=lambda p: p.energy_uj,
                      reverse=True)[:top]
    header = (f"{'layer':<16}{'kind':<10}{'df':<4}{'tiles':>6}"
              f"{'busy ms':>10}{'energy uJ':>12}{'ckpt uJ':>10}"
              f"{'NVM KB':>9}{'share':>8}")
    lines = [header, "-" * len(header)]
    for p in rows:
        lines.append(
            f"{p.layer:<16}{p.kind:<10}{p.dataflow:<4}{p.n_tiles:>6}"
            f"{p.busy_ms:>10.3f}{p.energy_uj:>12.2f}"
            f"{p.checkpoint_uj:>10.3f}{p.nvm_kb:>9.1f}"
            f"{p.energy_share:>7.1%}")
    total_uj = sum(p.energy_uj for p in profiles)
    total_ms = sum(p.busy_ms for p in profiles)
    lines.append("-" * len(header))
    lines.append(f"{'total':<30}{sum(p.n_tiles for p in profiles):>6}"
                 f"{total_ms:>10.3f}{total_uj:>12.2f}")
    return "\n".join(lines)
