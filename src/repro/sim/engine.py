"""Step-based intermittent-inference simulator (§III-D of the paper).

The engine alternates between two regimes:

* **charging** (rail off) — fast-forwarded analytically through the
  capacitor ODE; no fidelity is lost because nothing but charging
  happens while the rail is down;
* **executing** (rail on) — stepped at a fraction of the current tile's
  latency, so that harvesting-during-execution (the ``T·k_eh·A_eh``
  term of Eq. 3), mid-tile power failures, and emergent checkpoint
  exceptions are all captured.

A tile that fails to complete even from a brimming capacitor violates
Eq. 8 (``E_tile <= E_available``); the engine detects the repeated
failure and reports the design infeasible instead of looping forever.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Optional

from repro.energy.controller import EnergyController
from repro.errors import EvaluationTimeout, SimulationError
from repro.sim.intermittent import InferenceController
from repro.sim.metrics import InferenceMetrics
from repro.sim.trace import EventKind, Trace


@dataclass
class SimulationResult:
    """Outcome of one step-simulated inference."""

    metrics: InferenceMetrics
    trace: Trace
    energy: EnergyController
    inference: InferenceController


class StepSimulator:
    """Drives the energy controller and the inference controller in steps."""

    #: Consecutive failures of the *same* tile from a full energy cycle
    #: before the design is declared infeasible (first failure may start
    #: from a partially drained capacitor, so allow one retry).
    MAX_TILE_RETRIES = 2

    #: Consecutive verify failures of the same planned checkpoint before
    #: the runtime gives up on committing it and rolls the tile back.
    MAX_CHECKPOINT_RETRIES = 4

    def __init__(self, energy: EnergyController, inference: InferenceController,
                 steps_per_tile: int = 16,
                 max_charge_wait: float = 3600.0 * 24,
                 max_steps: Optional[int] = None,
                 time_budget_s: Optional[float] = None) -> None:
        if steps_per_tile <= 0:
            raise SimulationError(
                f"steps_per_tile must be positive, got {steps_per_tile}"
            )
        if max_charge_wait <= 0:
            raise SimulationError(
                f"max_charge_wait must be positive, got {max_charge_wait} "
                "(a non-positive wait declares every design infeasible)"
            )
        if max_steps is not None and max_steps <= 0:
            raise SimulationError(
                f"max_steps must be positive, got {max_steps}"
            )
        if time_budget_s is not None and time_budget_s <= 0:
            raise SimulationError(
                f"time_budget_s must be positive, got {time_budget_s}"
            )
        self.energy = energy
        self.inference = inference
        self.steps_per_tile = steps_per_tile
        self.max_charge_wait = max_charge_wait
        self.max_steps = max_steps
        self.time_budget_s = time_budget_s
        self.trace = Trace()

    def run(self) -> SimulationResult:
        """Simulate until the inference finishes or proves infeasible.

        Raises :class:`EvaluationTimeout` when the run exhausts its
        ``max_steps`` / ``time_budget_s`` budget — fault injection can
        turn a finite design into an endless rollback/retry grind, and
        a search must be able to penalize such candidates instead of
        hanging on them.
        """
        energy, inference = self.energy, self.inference
        busy_time = 0.0
        charge_time = 0.0
        fail_streak = 0
        last_fail_key = None
        last_fail_retained = -1.0
        steps = 0
        deadline = (None if self.time_budget_s is None
                    else _time.monotonic() + self.time_budget_s)

        while not inference.finished:
            steps += 1
            if self.max_steps is not None and steps > self.max_steps:
                raise EvaluationTimeout(
                    f"simulation exceeded its step budget of "
                    f"{self.max_steps} steps"
                )
            if deadline is not None and _time.monotonic() > deadline:
                raise EvaluationTimeout(
                    f"simulation exceeded its wall-clock budget of "
                    f"{self.time_budget_s:.3g} s"
                )
            if not energy.rail_on():
                wait = energy.fast_forward_to_on(self.max_charge_wait)
                if math.isinf(wait):
                    return self._infeasible(
                        "harvester cannot charge the capacitor to U_on "
                        "(leakage outpaces input)", busy_time, charge_time
                    )
                charge_time += wait
                self.trace.record(energy.time, EventKind.POWER_ON)

            tile = inference.current_layer.tile
            if inference.tile_energy_done == 0.0:
                self.trace.record(
                    energy.time, EventKind.TILE_STARTED,
                    layer=inference.current_layer.layer_name,
                    tile=inference.tile_index,
                )
            dt = max(tile.latency, 1e-9) / self.steps_per_tile
            power = inference.tile_power()

            # The controller splits the step exactly at the U_off
            # crossing, so its delivered-energy delta is the true rail
            # output even when the cycle dies mid-step.
            delivered_before = energy.accounting.delivered
            energy.step(dt, power)
            busy_time += dt
            delivered = energy.accounting.delivered - delivered_before
            completed = inference.deliver(delivered) if delivered > 0 else []
            for layer_name, tile_idx in completed:
                fail_streak = 0
                last_fail_key = None
                last_fail_retained = -1.0
                self.trace.record(energy.time, EventKind.TILE_COMPLETED,
                                  layer=layer_name, tile=tile_idx)
                self._charge_boundary_checkpoint()

            if not energy.rail_on() and not inference.finished:
                # Mid-tile power failure.
                self.trace.record(energy.time, EventKind.POWER_OFF)
                lost = inference.power_failure()
                # Progress retained across the failure: 0 under the
                # eager strategy (volatile state lost), the accumulated
                # tile energy under JIT.  A retry only counts against
                # the Eq. 8 streak when it made no headway — a JIT tile
                # legitimately spans several energy cycles.
                retained = inference.tile_energy_done
                if lost:
                    self.trace.record(
                        energy.time, EventKind.EXCEPTION,
                        layer=inference.current_layer.layer_name,
                        tile=inference.tile_index,
                    )
                fail_key = (inference.layer_index, inference.tile_index)
                if (fail_key == last_fail_key
                        and retained <= last_fail_retained + 1e-15):
                    fail_streak += 1
                else:
                    fail_streak = 1
                    last_fail_key = fail_key
                last_fail_retained = retained
                if fail_streak >= self.MAX_TILE_RETRIES:
                    return self._infeasible(
                        f"tile {fail_key} needs more energy than one full "
                        "energy cycle delivers (violates Eq. 8)",
                        busy_time, charge_time,
                    )

        self.trace.record(energy.time, EventKind.INFERENCE_COMPLETED)
        return self._finished(busy_time, charge_time)

    # -- internals ---------------------------------------------------------------

    def _charge_boundary_checkpoint(self) -> None:
        """Draw the planned inter-tile checkpoint energy from storage.

        Under fault injection the commit itself can misbehave: the NVM
        write may fail its read-back verify (detected, paid for, and
        retried up to :attr:`MAX_CHECKPOINT_RETRIES` times), and a
        brownout while the commit is in flight may corrupt it, forcing
        a rollback to the last consistent checkpoint — the just-
        completed tile is reverted and re-executed.  With no injector
        attached the nominal single-save path below runs unchanged.
        """
        inference, energy = self.inference, self.energy
        if inference.finished:
            return
        at_boundary = inference.tile_index > 0
        if not at_boundary:
            return
        round_energy = inference.checkpoint_round_energy()
        if round_energy <= 0.0:
            return
        round_time = inference.checkpoint_round_time()
        faults = energy.faults
        retries = 0
        while True:
            energy.step(round_time, round_energy / max(round_time, 1e-9))
            browned_out = not energy.rail_on()
            if (browned_out and faults is not None
                    and faults.commit_corrupts()):
                layer, tile = inference.rollback_tile()
                self.trace.record(energy.time, EventKind.ROLLBACK,
                                  layer=layer, tile=tile,
                                  detail="brownout corrupted commit")
                return
            if faults is not None and faults.checkpoint_write_fails():
                self.trace.record(energy.time, EventKind.CHECKPOINT_FAILED,
                                  layer=inference.current_layer.layer_name,
                                  tile=inference.tile_index,
                                  detail="NVM write failed verify")
                # The wasted write + verify read go on the checkpoint
                # bill; the storage draw of the retry itself happens at
                # the top of the next loop iteration.
                inference.checkpoint_retry()
                retries += 1
                if retries >= self.MAX_CHECKPOINT_RETRIES:
                    # The boundary state never reached NVM: replay the
                    # tile from the last consistent checkpoint.
                    layer, tile = inference.rollback_tile()
                    self.trace.record(
                        energy.time, EventKind.ROLLBACK,
                        layer=layer, tile=tile,
                        detail=f"commit abandoned after {retries} retries")
                    return
                continue
            self.trace.record(energy.time, EventKind.CHECKPOINT_SAVED,
                              layer=inference.current_layer.layer_name,
                              tile=inference.tile_index)
            return

    def _metrics(self, busy_time: float, charge_time: float) -> InferenceMetrics:
        acct = self.energy.accounting
        breakdown = self.inference.breakdown
        breakdown.cap_leakage = acct.leaked
        breakdown.conversion = acct.conversion_loss
        # Steady-state repetition period: restore the energy bank to the
        # on-threshold before the next back-to-back inference starts.
        harvested_power = self.energy.harvester.power_at(self.energy.time)
        refill = self.energy.capacitor.time_to_reach(
            self.energy.pmic.v_on,
            self.energy.pmic.charge_power(harvested_power),
        )
        sustained = self.energy.time + (0.0 if math.isinf(refill) else refill)
        refill_harvest = (0.0 if math.isinf(refill)
                          else harvested_power * refill)
        return InferenceMetrics(
            e2e_latency=self.energy.time,
            busy_time=busy_time,
            charge_time=charge_time,
            energy=breakdown,
            harvested_energy=acct.harvested + refill_harvest,
            power_cycles=acct.power_cycles,
            exceptions=self.inference.exceptions,
            sustained_period=sustained,
        )

    def _finished(self, busy_time: float, charge_time: float) -> SimulationResult:
        return SimulationResult(
            metrics=self._metrics(busy_time, charge_time),
            trace=self.trace,
            energy=self.energy,
            inference=self.inference,
        )

    def _infeasible(self, reason: str, busy_time: float,
                    charge_time: float) -> SimulationResult:
        metrics = InferenceMetrics.infeasible(reason)
        return SimulationResult(
            metrics=metrics,
            trace=self.trace,
            energy=self.energy,
            inference=self.inference,
        )
