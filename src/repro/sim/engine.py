"""Step-based intermittent-inference simulator (§III-D of the paper).

The engine alternates between two regimes:

* **charging** (rail off) — fast-forwarded analytically through the
  capacitor ODE; no fidelity is lost because nothing but charging
  happens while the rail is down;
* **executing** (rail on) — stepped at a fraction of the current tile's
  latency, so that harvesting-during-execution (the ``T·k_eh·A_eh``
  term of Eq. 3), mid-tile power failures, and emergent checkpoint
  exceptions are all captured.

A tile that fails to complete even from a brimming capacitor violates
Eq. 8 (``E_tile <= E_available``); the engine detects the repeated
failure and reports the design infeasible instead of looping forever.

Cycle-skipping fast path
------------------------

Under constant harvest and no active fault injector, the
(charge → execute k tiles → power off) pattern within a layer is
exactly periodic: every energy cycle starts from the same capacitor
voltage (``U_on``, pinned by the closed-form charge fast-forward), runs
the same tile costs at the same step size, and dies at the same
``U_off`` crossing.  :class:`StepSimulator` observes the boundaries of
consecutive cycles; once two consecutive cycles produce the same
signature (tiles completed, step count, per-cycle deltas of every
:class:`~repro.energy.controller.EnergyAccounting` field and of the
inference bookkeeping), it replays ``m`` whole cycles arithmetically —
advancing time, accounting, tile index and ``power_cycles`` in O(1)
instead of O(m · tiles · steps_per_tile).  The engine drops back to
exact per-step simulation at layer boundaries (the skip never crosses
one), near the end of the run, and whenever faults, variable harvest or
a non-repeating state (e.g. JIT progress carried across cycles)
disable the fast path.  Replayed cycles advance the trace's per-kind
counters in bulk; individual events are not materialised.

Piecewise-constant harvest
--------------------------

A harvester that exposes ``next_change_after(t)`` (its output is
constant on ``[t, next_change_after(t))`` — e.g.
:class:`~repro.energy.traces.TraceHarvester`) keeps the fast path: the
cycle pattern is periodic *within each constant segment*, so the
observer additionally stamps every boundary snapshot with the absolute
time of the next harvest change.  Snapshots from different segments
never pair into a candidate delta, and a replay is capped so that it
ends at or before the current segment boundary — every harvest sample
of the replayed span therefore sees exactly the power the observed
cycle saw, preserving the exact-vs-fast identity.  At a segment
boundary the matcher re-arms (two fresh in-segment cycles must match
again before the next skip).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.energy.controller import EnergyController
from repro.errors import EvaluationTimeout, SimulationError
from repro.obs.state import OBS, span
from repro.sim.intermittent import InferenceController
from repro.sim.metrics import InferenceMetrics
from repro.sim.trace import EventKind, Trace


@dataclass
class SimulationResult:
    """Outcome of one step-simulated inference."""

    metrics: InferenceMetrics
    trace: Trace
    energy: EnergyController
    inference: InferenceController
    #: Whole energy cycles replayed arithmetically by the fast path.
    fast_cycles_skipped: int = 0
    #: Number of distinct fast-forward segments (≤ one per layer).
    fast_segments: int = 0


@dataclass
class _RunState:
    """Mutable per-run bookkeeping of :meth:`StepSimulator.run`."""

    busy_time: float = 0.0
    charge_time: float = 0.0
    steps: int = 0
    fail_streak: int = 0
    last_fail_key: Optional[Tuple[int, int]] = None
    last_fail_retained: float = -1.0
    cycles_skipped: int = 0
    fast_segments: int = 0


class _PhaseProfile:
    """Per-phase wall-clock accumulators of one profiled run.

    Only allocated when observability runs with profiling on; the
    default path never touches this class.  ``checkpoint_s`` includes
    the controller steps the checkpoint commit issues internally, so
    the two phases overlap by design (each answers its own question:
    "how long do controller steps take" vs "what does checkpointing
    cost end to end").
    """

    __slots__ = ("controller_step_s", "charge_ff_s", "checkpoint_s")

    def __init__(self) -> None:
        self.controller_step_s = 0.0
        self.charge_ff_s = 0.0
        self.checkpoint_s = 0.0


#: Relative tolerance used when matching the float deltas of two
#: observed cycles (and hence the documented metric tolerance of the
#: fast path): per-cycle sums differ from one another only by
#: accumulation rounding, orders of magnitude below this bound.
FAST_REL_TOL = 1e-9
#: Absolute float-noise floor for delta matching, in J / s.  Fields that
#: are identically zero per cycle (e.g. curtailment below the voltage
#: clamp) carry only rounding residue; treat them as equal.
FAST_ABS_TOL = 1e-15


@dataclass(frozen=True)
class _CycleSnapshot:
    """Full replayable state at one steady-cycle boundary.

    A boundary is the instant the rail turns on with the capacitor
    sitting at exactly ``U_on`` — either the warm start of the run or
    the end of a closed-form recharge.
    """

    # exact (integer) state
    steps: int
    layer_index: int
    tile_index: int
    power_cycles: int
    exceptions: int
    planned_checkpoints: int
    rollbacks: int
    checkpoint_retries: int
    fail_streak: int
    #: last_fail_key relative to (layer_index, tile_index); None if unset.
    fail_key_rel: Optional[Tuple[int, int]]
    #: Absolute time of the next harvest-power change (``math.inf`` for
    #: a constant harvester).  Strictly increasing across segments, so
    #: an exact compare pins both snapshots to the same constant
    #: stretch of a piecewise harvester.
    next_change: float
    trace_counts: Dict[EventKind, int]
    floats: Tuple[float, ...]  # see _FLOAT_FIELDS for the layout


#: Names (for documentation) of the slots of ``_CycleSnapshot.floats``:
#: simulator clocks, inference energy bookkeeping, every float field of
#: :class:`EnergyAccounting`, and the residual per-tile state.  The last
#: two entries are ~1e-18 rounding residue under the eager strategy
#: (``deliver`` subtracts tile costs from delivered energy) — replaying
#: them by delta keeps the fast path faithful without demanding bitwise
#: repetition of float noise.
_FLOAT_FIELDS = (
    "time", "busy_time", "charge_time",
    "wasted_energy",
    "breakdown.compute", "breakdown.vm", "breakdown.nvm",
    "breakdown.static", "breakdown.checkpoint",
    "acct.harvested", "acct.stored", "acct.delivered",
    "acct.leaked", "acct.conversion_loss", "acct.curtailed",
    "tile_energy_done", "last_fail_retained",
)


@dataclass
class _CycleDelta:
    """Per-cycle advance between two consecutive boundaries."""

    steps: int
    tiles: int
    power_cycles: int
    exceptions: int
    planned_checkpoints: int
    rollbacks: int
    checkpoint_retries: int
    trace_counts: Dict[EventKind, int]
    floats: Tuple[float, ...]

    @classmethod
    def between(cls, a: "_CycleSnapshot",
                b: "_CycleSnapshot") -> Optional["_CycleDelta"]:
        """Delta ``b - a``, or ``None`` if the pair cannot repeat.

        The skip stays strictly inside one layer and one constant
        harvest segment, so a boundary pair spanning a layer change or
        a harvest change — or one that made no whole-tile progress —
        is not a candidate cycle.
        """
        if b.layer_index != a.layer_index:
            return None
        if b.next_change != a.next_change:
            return None
        tiles = b.tile_index - a.tile_index
        if tiles <= 0:
            return None
        counts = {kind: b.trace_counts.get(kind, 0) - a.trace_counts.get(kind, 0)
                  for kind in set(a.trace_counts) | set(b.trace_counts)}
        return cls(
            steps=b.steps - a.steps,
            tiles=tiles,
            power_cycles=b.power_cycles - a.power_cycles,
            exceptions=b.exceptions - a.exceptions,
            planned_checkpoints=b.planned_checkpoints - a.planned_checkpoints,
            rollbacks=b.rollbacks - a.rollbacks,
            checkpoint_retries=b.checkpoint_retries - a.checkpoint_retries,
            trace_counts=counts,
            floats=tuple(fb - fa for fa, fb in zip(a.floats, b.floats)),
        )

    def matches(self, other: "_CycleDelta") -> bool:
        """Whether two consecutive cycle deltas describe the same cycle."""
        if (self.steps != other.steps
                or self.tiles != other.tiles
                or self.power_cycles != other.power_cycles
                or self.exceptions != other.exceptions
                or self.planned_checkpoints != other.planned_checkpoints
                or self.rollbacks != other.rollbacks
                or self.checkpoint_retries != other.checkpoint_retries
                or self.trace_counts != other.trace_counts):
            return False
        return all(
            math.isclose(x, y, rel_tol=FAST_REL_TOL, abs_tol=FAST_ABS_TOL)
            for x, y in zip(self.floats, other.floats)
        )


class _CycleObserver:
    """Detects the steady energy cycle and replays it arithmetically.

    The simulator calls :meth:`observe` at every cycle boundary.  The
    observer keeps the last boundary snapshot and the delta of the last
    completed cycle; as soon as two consecutive deltas match (see
    :meth:`_CycleDelta.matches`) and at least one more whole cycle fits
    inside the current layer (and inside the remaining step budget), it
    applies ``m`` cycles worth of deltas to the controller, the
    inference state, the trace counters and the run clocks in O(1).
    """

    def __init__(self, simulator: "StepSimulator", state: _RunState) -> None:
        self.simulator = simulator
        self.state = state
        self._previous: Optional[_CycleSnapshot] = None
        self._last_delta: Optional[_CycleDelta] = None

    # -- boundary handling -------------------------------------------------------

    def observe(self) -> None:
        """Record a boundary; fast-forward when the cycle has stabilised."""
        snapshot = self._snapshot()
        previous, self._previous = self._previous, snapshot
        if previous is None:
            return
        delta = _CycleDelta.between(previous, snapshot)
        last_delta, self._last_delta = self._last_delta, delta
        if delta is None or last_delta is None:
            return
        if not delta.matches(last_delta):
            return
        # The Eq. 8 retry bookkeeping must repeat exactly from cycle to
        # cycle; residual tile progress is covered by the float deltas
        # (a JIT tile genuinely spanning cycles changes the tile delta
        # or layer index instead, which `between` already rejects).
        if (previous.fail_streak != snapshot.fail_streak
                or previous.fail_key_rel != snapshot.fail_key_rel):
            return
        m = self._skippable_cycles(snapshot, delta)
        if m >= 1:
            self._apply(snapshot, delta, m)

    def _skippable_cycles(self, at: _CycleSnapshot,
                          delta: _CycleDelta) -> int:
        """How many whole cycles can be replayed from this boundary.

        Every replayed cycle must end strictly inside the current layer
        (index ≤ n_tiles − 1): the layer-crossing cycle runs tiles with
        different costs and skips the final in-layer checkpoint, so it
        is always simulated exactly.  A ``max_steps`` budget caps the
        skip as well, preserving the exact path's timeout semantics.
        Under a piecewise-constant harvester the replay must also end
        at or before the current segment boundary: the cycle straddling
        the harvest change sees a different power profile, so it is
        simulated exactly (and the matcher then re-arms).
        """
        simulator = self.simulator
        layer = simulator.inference.plan[at.layer_index]
        m = (layer.n_tiles - 1 - at.tile_index) // delta.tiles
        if simulator.max_steps is not None:
            m = min(m, (simulator.max_steps - self.state.steps) // delta.steps)
        if not math.isinf(at.next_change):
            cycle_time = delta.floats[0]
            if cycle_time <= 0.0:
                return 0
            now = simulator.energy.time
            fit = int((at.next_change - now) / cycle_time)
            while fit > 0 and now + fit * cycle_time > at.next_change:
                fit -= 1  # floating-point guard at the boundary
            m = min(m, fit)
        return m

    def _apply(self, at: _CycleSnapshot, delta: _CycleDelta, m: int) -> None:
        """Advance the whole simulation by ``m`` cycles in O(1)."""
        simulator, st = self.simulator, self.state
        energy, inference = simulator.energy, simulator.inference
        acct = energy.accounting
        breakdown = inference.breakdown
        d = delta.floats

        energy.time += m * d[0]
        st.busy_time += m * d[1]
        st.charge_time += m * d[2]
        inference.wasted_energy += m * d[3]
        breakdown.compute += m * d[4]
        breakdown.vm += m * d[5]
        breakdown.nvm += m * d[6]
        breakdown.static += m * d[7]
        breakdown.checkpoint += m * d[8]
        acct.harvested += m * d[9]
        acct.stored += m * d[10]
        acct.delivered += m * d[11]
        acct.leaked += m * d[12]
        acct.conversion_loss += m * d[13]
        acct.curtailed += m * d[14]
        inference.tile_energy_done += m * d[15]
        st.last_fail_retained += m * d[16]

        st.steps += m * delta.steps
        inference.tile_index += m * delta.tiles
        acct.power_cycles += m * delta.power_cycles
        inference.exceptions += m * delta.exceptions
        inference.planned_checkpoints += m * delta.planned_checkpoints
        inference.rollbacks += m * delta.rollbacks
        inference.checkpoint_retries += m * delta.checkpoint_retries
        if at.fail_key_rel is not None:
            st.last_fail_key = (inference.layer_index + at.fail_key_rel[0],
                                inference.tile_index + at.fail_key_rel[1])
        for kind, count in delta.trace_counts.items():
            simulator.trace.record_bulk(kind, m * count)

        st.cycles_skipped += m
        st.fast_segments += 1
        # The post-skip boundary is a fresh observation base; the next
        # cycles of this layer (or the next layer) re-stabilise first.
        self._previous = self._snapshot()
        self._last_delta = None

    # -- state capture -----------------------------------------------------------

    def _snapshot(self) -> _CycleSnapshot:
        simulator, st = self.simulator, self.state
        energy, inference = simulator.energy, simulator.inference
        acct = energy.accounting
        breakdown = inference.breakdown
        probe = getattr(energy.harvester, "next_change_after", None)
        next_change = (probe(energy.time) if probe is not None else math.inf)
        key = st.last_fail_key
        fail_key_rel = (None if key is None else
                        (key[0] - inference.layer_index,
                         key[1] - inference.tile_index))
        return _CycleSnapshot(
            steps=st.steps,
            layer_index=inference.layer_index,
            tile_index=inference.tile_index,
            power_cycles=acct.power_cycles,
            exceptions=inference.exceptions,
            planned_checkpoints=inference.planned_checkpoints,
            rollbacks=inference.rollbacks,
            checkpoint_retries=inference.checkpoint_retries,
            fail_streak=st.fail_streak,
            fail_key_rel=fail_key_rel,
            next_change=next_change,
            trace_counts=simulator.trace.counts(),
            floats=(
                energy.time, st.busy_time, st.charge_time,
                inference.wasted_energy,
                breakdown.compute, breakdown.vm, breakdown.nvm,
                breakdown.static, breakdown.checkpoint,
                acct.harvested, acct.stored, acct.delivered,
                acct.leaked, acct.conversion_loss, acct.curtailed,
                inference.tile_energy_done, st.last_fail_retained,
            ),
        )


class StepSimulator:
    """Drives the energy controller and the inference controller in steps."""

    #: Consecutive failures of the *same* tile from a full energy cycle
    #: before the design is declared infeasible (first failure may start
    #: from a partially drained capacitor, so allow one retry).
    MAX_TILE_RETRIES = 2

    #: Consecutive verify failures of the same planned checkpoint before
    #: the runtime gives up on committing it and rolls the tile back.
    MAX_CHECKPOINT_RETRIES = 4

    def __init__(self, energy: EnergyController, inference: InferenceController,
                 steps_per_tile: int = 16,
                 max_charge_wait: float = 3600.0 * 24,
                 max_steps: Optional[int] = None,
                 time_budget_s: Optional[float] = None,
                 fast_forward: bool = True,
                 trace_capacity: Optional[int] = Trace.DEFAULT_CAPACITY) -> None:
        if steps_per_tile <= 0:
            raise SimulationError(
                f"steps_per_tile must be positive, got {steps_per_tile}"
            )
        if max_charge_wait <= 0:
            raise SimulationError(
                f"max_charge_wait must be positive, got {max_charge_wait} "
                "(a non-positive wait declares every design infeasible)"
            )
        if max_steps is not None and max_steps <= 0:
            raise SimulationError(
                f"max_steps must be positive, got {max_steps}"
            )
        if time_budget_s is not None and time_budget_s <= 0:
            raise SimulationError(
                f"time_budget_s must be positive, got {time_budget_s}"
            )
        self.energy = energy
        self.inference = inference
        self.steps_per_tile = steps_per_tile
        self.max_charge_wait = max_charge_wait
        self.max_steps = max_steps
        self.time_budget_s = time_budget_s
        self.fast_forward = fast_forward
        self.trace = Trace(capacity=trace_capacity)

    def _fast_path_allowed(self) -> bool:
        """Cycle skipping needs (piecewise-)time-invariant dynamics.

        An attached injector with any non-zero rate perturbs harvest,
        leakage or the checkpoint machinery and forces the exact path.
        An *inert* injector (all rates zero) is numerically identical
        to no injector at all — the invariant the fault tests pin — so
        it keeps the fast path.  A constant harvester qualifies
        outright; a piecewise-constant one (it exposes
        ``next_change_after``) qualifies too, with every skip confined
        to one constant segment by the observer.  Anything else — e.g.
        stochastically fluctuating harvest — is conservatively
        simulated step by step.
        """
        if not self.fast_forward:
            return False
        faults = self.energy.faults
        if faults is not None and faults.enabled:
            return False
        harvester = self.energy.harvester
        if getattr(harvester, "constant_power", False):
            return True
        return callable(getattr(harvester, "next_change_after", None))

    def run(self) -> SimulationResult:
        """Simulate until the inference finishes or proves infeasible.

        Raises :class:`EvaluationTimeout` when the run exhausts its
        ``max_steps`` / ``time_budget_s`` budget — fault injection can
        turn a finite design into an endless rollback/retry grind, and
        a search must be able to penalize such candidates instead of
        hanging on them.  Skipped cycles count against ``max_steps`` as
        if they had been stepped, so budget semantics do not depend on
        whether the fast path engaged.
        """
        if not OBS.enabled:
            return self._run(None)
        prof = _PhaseProfile() if OBS.profile else None
        with span("sim.run"):
            return self._run(prof)

    def _run(self, prof: Optional[_PhaseProfile]) -> SimulationResult:
        st = _RunState()
        try:
            return self._run_loop(st, prof)
        finally:
            if OBS.enabled:
                registry = OBS.registry
                registry.counter("sim.runs").inc()
                registry.counter("sim.steps").inc(st.steps)
                registry.counter("sim.fast_cycles_skipped").inc(
                    st.cycles_skipped)
                if prof is not None:
                    registry.counter("sim.controller_step_seconds").inc(
                        prof.controller_step_s)
                    registry.counter("sim.charge_fastforward_seconds").inc(
                        prof.charge_ff_s)
                    registry.counter("sim.checkpoint_seconds").inc(
                        prof.checkpoint_s)

    def _run_loop(self, st: _RunState,
                  prof: Optional[_PhaseProfile]) -> SimulationResult:
        energy, inference, trace = self.energy, self.inference, self.trace
        deadline = (None if self.time_budget_s is None
                    else _time.monotonic() + self.time_budget_s)
        observer = (_CycleObserver(self, st) if self._fast_path_allowed()
                    else None)
        v_on = energy.pmic.v_on
        if (observer is not None and energy.rail_on()
                and energy.voltage == v_on):
            # A warm start at exactly U_on is already a cycle boundary.
            observer.observe()

        while not inference.finished:
            st.steps += 1
            if self.max_steps is not None and st.steps > self.max_steps:
                raise EvaluationTimeout(
                    f"simulation exceeded its step budget of "
                    f"{self.max_steps} steps"
                )
            if deadline is not None and _time.monotonic() > deadline:
                raise EvaluationTimeout(
                    f"simulation exceeded its wall-clock budget of "
                    f"{self.time_budget_s:.3g} s"
                )
            if not energy.rail_on():
                if prof is None:
                    wait = energy.fast_forward_to_on(self.max_charge_wait)
                else:
                    t0 = _time.perf_counter()
                    wait = energy.fast_forward_to_on(self.max_charge_wait)
                    prof.charge_ff_s += _time.perf_counter() - t0
                if math.isinf(wait):
                    return self._infeasible(
                        "harvester cannot charge the capacitor to U_on "
                        "(leakage outpaces input)", st
                    )
                st.charge_time += wait
                trace.record(energy.time, EventKind.POWER_ON)
                if (observer is not None and energy.voltage == v_on
                        and not inference.finished):
                    observer.observe()

            tile = inference.current_layer.tile
            if inference.tile_energy_done == 0.0:
                trace.record(
                    energy.time, EventKind.TILE_STARTED,
                    layer=inference.current_layer.layer_name,
                    tile=inference.tile_index,
                )
            dt = max(tile.latency, 1e-9) / self.steps_per_tile
            power = inference.tile_power()

            # The controller splits the step exactly at the U_off
            # crossing, so its delivered-energy delta is the true rail
            # output even when the cycle dies mid-step.
            delivered_before = energy.accounting.delivered
            if prof is None:
                energy.step(dt, power)
            else:
                t0 = _time.perf_counter()
                energy.step(dt, power)
                prof.controller_step_s += _time.perf_counter() - t0
            st.busy_time += dt
            delivered = energy.accounting.delivered - delivered_before
            completed = inference.deliver(delivered) if delivered > 0 else []
            for layer_name, tile_idx in completed:
                st.fail_streak = 0
                st.last_fail_key = None
                st.last_fail_retained = -1.0
                trace.record(energy.time, EventKind.TILE_COMPLETED,
                             layer=layer_name, tile=tile_idx)
                if prof is None:
                    self._charge_boundary_checkpoint()
                else:
                    t0 = _time.perf_counter()
                    self._charge_boundary_checkpoint()
                    prof.checkpoint_s += _time.perf_counter() - t0

            if not energy.rail_on() and not inference.finished:
                # Mid-tile power failure.
                trace.record(energy.time, EventKind.POWER_OFF)
                lost = inference.power_failure()
                # Progress retained across the failure: 0 under the
                # eager strategy (volatile state lost), the accumulated
                # tile energy under JIT.  A retry only counts against
                # the Eq. 8 streak when it made no headway — a JIT tile
                # legitimately spans several energy cycles.
                retained = inference.tile_energy_done
                if lost:
                    trace.record(
                        energy.time, EventKind.EXCEPTION,
                        layer=inference.current_layer.layer_name,
                        tile=inference.tile_index,
                    )
                fail_key = (inference.layer_index, inference.tile_index)
                if (fail_key == st.last_fail_key
                        and retained <= st.last_fail_retained + 1e-15):
                    st.fail_streak += 1
                else:
                    st.fail_streak = 1
                    st.last_fail_key = fail_key
                st.last_fail_retained = retained
                if st.fail_streak >= self.MAX_TILE_RETRIES:
                    return self._infeasible(
                        f"tile {fail_key} needs more energy than one full "
                        "energy cycle delivers (violates Eq. 8)", st,
                    )

        trace.record(energy.time, EventKind.INFERENCE_COMPLETED)
        return self._finished(st)

    # -- internals ---------------------------------------------------------------

    def _charge_boundary_checkpoint(self) -> None:
        """Draw the planned inter-tile checkpoint energy from storage.

        Under fault injection the commit itself can misbehave: the NVM
        write may fail its read-back verify (detected, paid for, and
        retried up to :attr:`MAX_CHECKPOINT_RETRIES` times), and a
        brownout while the commit is in flight may corrupt it, forcing
        a rollback to the last consistent checkpoint — the just-
        completed tile is reverted and re-executed.  With no injector
        attached the nominal single-save path below runs unchanged.
        """
        inference, energy = self.inference, self.energy
        if inference.finished:
            return
        at_boundary = inference.tile_index > 0
        if not at_boundary:
            return
        round_energy = inference.checkpoint_round_energy()
        if round_energy <= 0.0:
            return
        round_time = inference.checkpoint_round_time()
        faults = energy.faults
        retries = 0
        while True:
            energy.step(round_time, round_energy / max(round_time, 1e-9))
            browned_out = not energy.rail_on()
            if (browned_out and faults is not None
                    and faults.commit_corrupts()):
                layer, tile = inference.rollback_tile()
                self.trace.record(energy.time, EventKind.ROLLBACK,
                                  layer=layer, tile=tile,
                                  detail="brownout corrupted commit")
                return
            if faults is not None and faults.checkpoint_write_fails():
                self.trace.record(energy.time, EventKind.CHECKPOINT_FAILED,
                                  layer=inference.current_layer.layer_name,
                                  tile=inference.tile_index,
                                  detail="NVM write failed verify")
                # The wasted write + verify read go on the checkpoint
                # bill; the storage draw of the retry itself happens at
                # the top of the next loop iteration.
                inference.checkpoint_retry()
                retries += 1
                if retries >= self.MAX_CHECKPOINT_RETRIES:
                    # The boundary state never reached NVM: replay the
                    # tile from the last consistent checkpoint.
                    layer, tile = inference.rollback_tile()
                    self.trace.record(
                        energy.time, EventKind.ROLLBACK,
                        layer=layer, tile=tile,
                        detail=f"commit abandoned after {retries} retries")
                    return
                continue
            self.trace.record(energy.time, EventKind.CHECKPOINT_SAVED,
                              layer=inference.current_layer.layer_name,
                              tile=inference.tile_index)
            return

    def _metrics(self, st: _RunState) -> InferenceMetrics:
        acct = self.energy.accounting
        breakdown = self.inference.breakdown
        breakdown.cap_leakage = acct.leaked
        breakdown.conversion = acct.conversion_loss
        # Steady-state repetition period: restore the energy bank to the
        # on-threshold before the next back-to-back inference starts.
        harvested_power = self.energy.harvester.power_at(self.energy.time)
        faults = self.energy.faults
        if faults is not None:
            # Price the refill at the same derated harvest the
            # controller saw, not the raw panel output.
            harvested_power *= faults.harvest_factor(self.energy.time)
        refill = self.energy.capacitor.time_to_reach(
            self.energy.pmic.v_on,
            self.energy.pmic.charge_power(harvested_power),
        )
        sustained = self.energy.time + (0.0 if math.isinf(refill) else refill)
        refill_harvest = (0.0 if math.isinf(refill)
                          else harvested_power * refill)
        return InferenceMetrics(
            e2e_latency=self.energy.time,
            busy_time=st.busy_time,
            charge_time=st.charge_time,
            energy=breakdown,
            harvested_energy=acct.harvested + refill_harvest,
            power_cycles=acct.power_cycles,
            exceptions=self.inference.exceptions,
            sustained_period=sustained,
        )

    def _finished(self, st: _RunState) -> SimulationResult:
        return SimulationResult(
            metrics=self._metrics(st),
            trace=self.trace,
            energy=self.energy,
            inference=self.inference,
            fast_cycles_skipped=st.cycles_skipped,
            fast_segments=st.fast_segments,
        )

    def _infeasible(self, reason: str, st: _RunState) -> SimulationResult:
        if OBS.enabled:
            OBS.registry.counter("sim.infeasible").inc()
        # Partial-progress clocks are folded into the marker metrics so
        # callers can see how far the design got before giving up.
        metrics = InferenceMetrics.infeasible(
            reason, busy_time=st.busy_time, charge_time=st.charge_time)
        return SimulationResult(
            metrics=metrics,
            trace=self.trace,
            energy=self.energy,
            inference=self.inference,
            fast_cycles_skipped=st.cycles_skipped,
            fast_segments=st.fast_segments,
        )
