"""Closed-form evaluation — the paper's Eqs. 1-9 as executable code.

The analytical model prices a full design point without stepping time:

* harvested power from Eq. 1;
* capacitor cycle energy and leakage from Eqs. 2-3;
* per-tile / per-layer energy from Eqs. 4-5 (via the dataflow cost
  model);
* end-to-end latency from Eq. 7, generalised to subtract the leakage
  and conversion losses a real harvesting chain pays;
* feasibility from Eq. 8, with :meth:`AnalyticalModel.min_feasible_n_tiles`
  realising the Eq. 9 lower bound constructively.

It is the inner-loop scorer of the explorer; the step simulator
(:mod:`repro.sim.engine`) validates its fidelity in integration tests.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.dataflow.cost_model import DataflowCostModel, LayerCost
from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import OBS, span
from repro.sim.metrics import EnergyBreakdown, InferenceMetrics
from repro.workloads.layers import Layer
from repro.workloads.network import Network


class AnalyticalModel:
    """Evaluates an :class:`AuTDesign` on a network in one environment."""

    def __init__(self, design: AuTDesign, network: Network,
                 environment: LightEnvironment,
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        design.validate_against(network)
        self.design = design
        self.network = network
        self.environment = environment
        self.hardware = design.inference.build()
        self.checkpoint = checkpoint or CheckpointModel(
            nvm=self.hardware.nvm.technology
        )
        self.cost_model = DataflowCostModel(self.hardware, self.checkpoint)

    # -- energy-side closed forms (Eqs. 1-3) ---------------------------------

    @property
    def p_eh(self) -> float:
        """Harvested power, W (Eq. 1)."""
        return self.design.energy.build_panel().power(self.environment.k_eh)

    @property
    def leak_power(self) -> float:
        """Capacitor leakage power at the on-threshold, W (Eq. 2 x U)."""
        energy = self.design.energy
        return energy.k_cap * energy.capacitance_f * energy.pmic.v_on**2

    @property
    def net_charge_power(self) -> float:
        """Power actually accumulating in storage, W."""
        pmic = self.design.energy.pmic
        return pmic.charge_power(self.p_eh) - self.leak_power

    def available_cycle_energy(self, execution_time: float = 0.0) -> float:
        """Rail-side energy available in one energy cycle, J (Eq. 3).

        ``1/2 C (U_on^2 - U_off^2)`` through the buck, plus whatever is
        harvested (minus leakage) during ``execution_time``.
        """
        energy = self.design.energy
        pmic = energy.pmic
        stored = 0.5 * energy.capacitance_f * (pmic.v_on**2 - pmic.v_off**2)
        topping = self.net_charge_power * execution_time
        return (stored + max(topping, 0.0)) * pmic.buck_efficiency

    # -- inference-side closed forms (Eqs. 4-6) -------------------------------------

    def layer_cost(self, layer: Layer, mapping: LayerMapping) -> LayerCost:
        return self.cost_model.layer_cost(layer, mapping)

    def plan(self) -> List[LayerCost]:
        """Per-layer costs for the design's mappings, in network order."""
        with span("cost.plan"):
            return [
                self.layer_cost(layer, mapping)
                for layer, mapping in zip(self.network, self.design.mappings)
            ]

    def tile_feasible(self, cost: LayerCost) -> bool:
        """Eq. 8: one tile must fit one energy cycle (incl. its harvest)."""
        tile = cost.tile
        return tile.energy <= self.available_cycle_energy(tile.total_time)

    def min_feasible_n_tiles(self, layer: Layer,
                             mapping: LayerMapping) -> Optional[int]:
        """Smallest ``N_tile`` satisfying Eq. 8 — Eq. 9 made constructive.

        Scans the divisor-aligned tile counts of the mapping's tile
        dimension; returns ``None`` when even the finest partition does
        not fit an energy cycle (the design is unusable for this layer).

        A multi-dimensional input tile keeps its ``secondary_dim`` /
        ``n_tiles_2`` split (clamped to the dimension size) in every
        scanned candidate: dropping it would answer Eq. 9 for a
        different — coarser — mapping family than the one asked about.
        """
        dims = layer.dims()
        bound = dims[mapping.tile_dim]
        secondary = mapping.secondary_dim
        n_tiles_2 = 1
        if secondary is not None:
            n_tiles_2 = min(mapping.n_tiles_2, dims[secondary])
        n = max(1, mapping.n_tiles)
        while n <= bound:
            candidate = LayerMapping(style=mapping.style, n_tiles=n,
                                     tile_dim=mapping.tile_dim,
                                     spatial_dim=mapping.spatial_dim,
                                     secondary_dim=secondary,
                                     n_tiles_2=n_tiles_2)
            cost = self.layer_cost(layer, candidate)
            if self.tile_feasible(cost):
                return n
            n = _next_tile_count(n, bound)
        return None

    def cold_start_charge_time(self) -> float:
        """Seconds to charge the capacitor from empty to ``U_on``.

        The intro's "longer charging latency" of oversized capacitors:
        a deployment's first inference (or any inference after a deep
        blackout) pays this in full.
        """
        pmic = self.design.energy.pmic
        capacitor = self.design.energy.build_capacitor(0.0)
        return capacitor.time_to_reach(pmic.v_on,
                                       pmic.charge_power(self.p_eh))

    def cold_start_latency(self) -> float:
        """End-to-end latency of the first-ever inference, s."""
        metrics = self.evaluate()
        if not metrics.feasible:
            return math.inf
        return self.cold_start_charge_time() + metrics.e2e_latency

    # -- whole-inference evaluation (Eq. 7) -------------------------------------------

    def evaluate(self) -> InferenceMetrics:
        """Price the design end-to-end; marks infeasible designs."""
        if not OBS.enabled:
            return self._evaluate()
        with span("analytical.evaluate"):
            return self._evaluate()

    def _evaluate(self) -> InferenceMetrics:
        if self.net_charge_power <= 0.0:
            return InferenceMetrics.infeasible(
                "leakage and PMIC losses consume the entire harvest"
            )
        plan = self.plan()
        breakdown = EnergyBreakdown()
        busy_time = 0.0
        for cost in plan:
            if not self.tile_feasible(cost):
                return InferenceMetrics.infeasible(
                    f"layer {cost.layer_name!r}: one tile exceeds the "
                    f"energy cycle (Eq. 8) with N_tile={cost.n_tiles}"
                )
            breakdown.compute += cost.compute_energy
            breakdown.vm += cost.n_tiles * cost.tile.vm_energy
            breakdown.nvm += cost.n_tiles * cost.tile.nvm_energy
            breakdown.static += cost.static_energy
            breakdown.checkpoint += cost.checkpoint_energy
            busy_time += cost.busy_time

        pmic = self.design.energy.pmic
        rail_energy = breakdown.total
        # Warm-start energy balance (matching the step simulator): the
        # inference begins with one energy cycle banked in the capacitor;
        # harvesting continues throughout execution; whatever is still
        # missing must be recharged between tiles.
        chain_efficiency = pmic.boost_efficiency * pmic.buck_efficiency
        effective_power = (self.p_eh * chain_efficiency
                           - self.leak_power * pmic.buck_efficiency)
        if effective_power <= 0.0:
            return InferenceMetrics.infeasible(
                "effective charge power is non-positive"
            )
        banked = self.available_cycle_energy(0.0)
        missing = rail_energy - banked - effective_power * busy_time
        charge_time = max(missing, 0.0) / effective_power
        e2e_latency = busy_time + charge_time
        # Steady-state repetition period: between runs the bank must be
        # restored too, so every joule — banked or not — is re-harvested.
        sustained_period = max(rail_energy / effective_power, busy_time)

        # E_eh is accounted over the sustained period (one full charge-
        # and-execute cycle) so that system efficiency E_infer/E_eh is
        # comparable across designs and bounded by the chain efficiency.
        harvested = self.p_eh * sustained_period
        breakdown.cap_leakage = self.leak_power * sustained_period
        breakdown.conversion = harvested * (1.0 - chain_efficiency)

        n_tiles_total = sum(cost.n_tiles for cost in plan)
        return InferenceMetrics(
            e2e_latency=e2e_latency,
            busy_time=busy_time,
            charge_time=charge_time,
            energy=breakdown,
            harvested_energy=harvested,
            power_cycles=max(n_tiles_total, 1),
            exceptions=0,
            sustained_period=sustained_period,
        )


class BatchAnalyticalModel:
    """Prices N ``(design, workload)`` pairs in one vectorized sweep.

    One instance is bound to a ``(network, environment)`` pair and
    evaluates many :class:`AuTDesign` candidates at once: hardware is
    built once per distinct :class:`InferenceDesign`, every layer's tile
    costs are priced by a single
    :meth:`~repro.dataflow.cost_model.DataflowCostModel.layer_cost_batch`
    call per group, and the Eq. 7 energy balance runs as elementwise
    numpy arithmetic over the whole batch.

    Bit-identity contract: for every design the returned
    :class:`InferenceMetrics` equals ``AnalyticalModel(design, ...)
    .evaluate()`` exactly — the float chains mirror the scalar code
    operation for operation (same order, same masking semantics), every
    ``**``-bearing per-design scalar is computed in pure Python before
    entering an array, and the three infeasibility branches fire in the
    scalar model's check order with the scalar model's messages.
    """

    def __init__(self, network: Network, environment: LightEnvironment,
                 checkpoint: Optional[CheckpointModel] = None) -> None:
        self.network = network
        self.environment = environment
        self.checkpoint = checkpoint

    # -- plan construction -----------------------------------------------------

    def plans(self, designs: Sequence[AuTDesign]) -> List[List[LayerCost]]:
        """Per-layer costs for each design, via grouped batch pricing.

        Designs sharing an :class:`InferenceDesign` share hardware and a
        cost model; their per-layer mappings are priced together, so the
        layer-cost cache sees exactly one probe per distinct key (the
        "single memo-cache fill" the batched search mode relies on).
        """
        plans: List[Optional[List[LayerCost]]] = [None] * len(designs)
        groups: dict = {}
        for index, design in enumerate(designs):
            design.validate_against(self.network)
            groups.setdefault(design.inference, []).append(index)
        for inference, indices in groups.items():
            hardware = inference.build()
            checkpoint = self.checkpoint or CheckpointModel(
                nvm=hardware.nvm.technology
            )
            cost_model = DataflowCostModel(hardware, checkpoint)
            rows: List[List[LayerCost]] = [[] for _ in indices]
            for layer_index, layer in enumerate(self.network):
                costs = cost_model.layer_cost_batch(
                    layer,
                    [designs[i].mappings[layer_index] for i in indices],
                )
                for row, cost in zip(rows, costs):
                    row.append(cost)
            for index, row in zip(indices, rows):
                plans[index] = row
        return plans  # type: ignore[return-value]

    # -- whole-inference evaluation (Eq. 7, batched) -----------------------------

    def evaluate_many(
        self, designs: Sequence[AuTDesign]
    ) -> List[InferenceMetrics]:
        """One :class:`InferenceMetrics` per design, in order."""
        designs = list(designs)
        if not designs:
            return []
        return self.evaluate_plans(designs, self.plans(designs))

    def evaluate_plans(
        self,
        designs: Sequence[AuTDesign],
        plans: Sequence[Sequence[LayerCost]],
    ) -> List[InferenceMetrics]:
        """Vectorized Eq. 7 over pre-priced plans (one per design)."""
        n = len(designs)
        if n == 0:
            return []
        k_eh = self.environment.k_eh
        # Per-design energy-side scalars stay in pure Python: the ``**``
        # in leak/stored must be CPython's pow to match the scalar path.
        p_eh_list, leak_list, net_list = [], [], []
        stored_list, buck_list, chain_list, effective_list = [], [], [], []
        for design in designs:
            energy = design.energy
            pmic = energy.pmic
            p_eh = energy.build_panel().power(k_eh)
            leak = energy.k_cap * energy.capacitance_f * pmic.v_on**2
            net = pmic.charge_power(p_eh) - leak
            stored = 0.5 * energy.capacitance_f * (
                pmic.v_on**2 - pmic.v_off**2)
            chain = pmic.boost_efficiency * pmic.buck_efficiency
            effective = p_eh * chain - leak * pmic.buck_efficiency
            p_eh_list.append(p_eh)
            leak_list.append(leak)
            net_list.append(net)
            stored_list.append(stored)
            buck_list.append(pmic.buck_efficiency)
            chain_list.append(chain)
            effective_list.append(effective)
        p_eh = np.array(p_eh_list)
        leak = np.array(leak_list)
        net = np.array(net_list)
        stored = np.array(stored_list)
        buck = np.array(buck_list)
        chain = np.array(chain_list)
        effective = np.array(effective_list)

        # Eq. 8 per layer + breakdown accumulation, in network order.
        # Each term is the exact Python expression the scalar loop adds
        # (LayerCost fields are already Python floats), gathered into an
        # array and accumulated with the same left-to-right order.
        bad_layer = np.full(n, -1, dtype=np.int64)
        compute = np.zeros(n)
        vm = np.zeros(n)
        nvm = np.zeros(n)
        static = np.zeros(n)
        ckpt = np.zeros(n)
        busy = np.zeros(n)
        for layer_index in range(len(self.network)):
            costs = [plan[layer_index] for plan in plans]
            tile_energy = np.array([c.tile.energy for c in costs])
            tile_time = np.array([c.tile.total_time for c in costs])
            # available_cycle_energy(tile_time), elementwise.
            available = (stored + np.maximum(net * tile_time, 0.0)) * buck
            infeasible_here = ~(tile_energy <= available) & (bad_layer < 0)
            if infeasible_here.any():
                bad_layer[infeasible_here] = layer_index
            compute = compute + np.array([c.compute_energy for c in costs])
            vm = vm + np.array(
                [c.n_tiles * c.tile.vm_energy for c in costs])
            nvm = nvm + np.array(
                [c.n_tiles * c.tile.nvm_energy for c in costs])
            static = static + np.array([c.static_energy for c in costs])
            ckpt = ckpt + np.array([c.checkpoint_energy for c in costs])
            busy = busy + np.array([c.busy_time for c in costs])

        # rail = breakdown.total with cap_leakage/conversion still zero;
        # mirrors (compute + vm + nvm) + (static + checkpoint + 0 + 0).
        rail = (compute + vm + nvm) + (static + ckpt)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            banked = (stored + np.maximum(net * 0.0, 0.0)) * buck
            missing = rail - banked - effective * busy
            charge = np.maximum(missing, 0.0) / effective
            e2e = busy + charge
            sustained = np.maximum(rail / effective, busy)
            harvested = p_eh * sustained
            cap_leakage = leak * sustained
            conversion = harvested * (1.0 - chain)

        metrics: List[InferenceMetrics] = []
        for i in range(n):
            if net[i] <= 0.0:
                metrics.append(InferenceMetrics.infeasible(
                    "leakage and PMIC losses consume the entire harvest"
                ))
                continue
            if bad_layer[i] >= 0:
                cost = plans[i][bad_layer[i]]
                metrics.append(InferenceMetrics.infeasible(
                    f"layer {cost.layer_name!r}: one tile exceeds the "
                    f"energy cycle (Eq. 8) with N_tile={cost.n_tiles}"
                ))
                continue
            if effective[i] <= 0.0:
                metrics.append(InferenceMetrics.infeasible(
                    "effective charge power is non-positive"
                ))
                continue
            breakdown = EnergyBreakdown(
                compute=float(compute[i]),
                vm=float(vm[i]),
                nvm=float(nvm[i]),
                static=float(static[i]),
                checkpoint=float(ckpt[i]),
                cap_leakage=float(cap_leakage[i]),
                conversion=float(conversion[i]),
            )
            n_tiles_total = sum(cost.n_tiles for cost in plans[i])
            metrics.append(InferenceMetrics(
                e2e_latency=float(e2e[i]),
                busy_time=float(busy[i]),
                charge_time=float(charge[i]),
                energy=breakdown,
                harvested_energy=float(harvested[i]),
                power_cycles=max(n_tiles_total, 1),
                exceptions=0,
                sustained_period=float(sustained[i]),
            ))
        return metrics


def _next_tile_count(n: int, bound: int) -> int:
    """The next useful tile count after ``n`` for a dimension of ``bound``.

    Tile counts between divisor steps change nothing (ceil-division
    yields the same chunk), so advance to the next count that shrinks
    the chunk.
    """
    chunk = math.ceil(bound / n)
    if chunk <= 1:
        return bound + 1
    return math.ceil(bound / (chunk - 1))
