"""Training-set extraction from the campaign result store.

Every finished campaign run is free surrogate training data:

* a ``done`` row contributes its winning design with the run's scalar
  score as the label;
* absorbed candidate failures (on any row) and ``failed`` /
  ``exhausted`` rows contribute *censored* examples — the candidate's
  genome is recovered from the failure record's canonical
  ``describe_genome`` rendering, and its label is only known to be "at
  least as bad as anything that priced" (see
  :class:`~repro.surrogate.model.SurrogateModel` for how censoring is
  fit).

Extraction is deterministic end to end: the store query orders rows
totally, examples within a row keep recorded order, and the featurizer
is pure arithmetic — so the same store yields a byte-identical feature
matrix in every process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.explore.space import Genome
from repro.surrogate.features import (FeatureContext, FeatureSchema,
                                      Featurizer, genome_designs)
from repro.surrogate.model import SurrogateModel


def parse_candidate(text: str) -> Optional[Genome]:
    """Invert :func:`repro.explore.failures.describe_genome`.

    The canonical rendering is space-separated ``name=value`` pairs
    with sorted names, ``%.6g`` floats, and enums rendered by
    ``.value`` (no gene name or value ever contains whitespace).
    Returns ``None`` for strings that do not parse back to a genome
    (foreign formats, or candidates missing the energy genes every
    design needs) — callers simply skip those examples.
    """
    genome: Genome = {}
    if not text.strip():
        return None
    for chunk in text.split():
        name, separator, raw = chunk.partition("=")
        if not separator or not name:
            return None
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        genome[name] = value
    if "panel_area_cm2" not in genome or "capacitance_f" not in genome:
        return None
    return genome


@dataclass(frozen=True)
class TrainingSet:
    """A fitted-shape training set with provenance.

    ``labels`` are raw objective scores (lower is better); censored
    examples carry ``inf`` there and ``True`` in :attr:`censored`.
    ``provenance`` names the store row each example came from.
    """

    features: np.ndarray
    labels: np.ndarray
    censored: np.ndarray
    schema: FeatureSchema
    provenance: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_censored(self) -> int:
        return int(self.censored.sum())

    def summary(self) -> str:
        return (f"{len(self)} example(s) ({len(self) - self.n_censored} "
                f"priced, {self.n_censored} censored), "
                f"{self.schema.width} feature(s) "
                f"[schema v{self.schema.version}]")


def _design_from_solution(solution: Mapping[str, Any]):
    from repro.serialize import design_from_dict

    try:
        return design_from_dict(dict(solution["design"]))
    except (KeyError, TypeError):
        return None


def build_training_set(store, campaign: Optional[str] = None,
                       workload: Optional[str] = None,
                       featurizer: Optional[Featurizer] = None,
                       ) -> TrainingSet:
    """Extract every usable training example from a result store.

    ``store`` is a :class:`~repro.campaign.store.ResultStore` (typed
    loosely to keep this module importable without the campaign
    subsystem).
    """
    featurizer = featurizer or Featurizer()
    rows: List[np.ndarray] = []
    labels: List[float] = []
    censored: List[bool] = []
    provenance: List[str] = []
    for run in store.solutions_for_training(campaign=campaign,
                                            workload=workload):
        try:
            context = FeatureContext.from_run_key(run.key)
        except ConfigurationError:
            continue  # e.g. a workload this build no longer knows
        if run.solution is not None and run.score is not None:
            design = _design_from_solution(run.solution)
            if design is not None:
                rows.append(featurizer.vector(design.energy,
                                              design.inference, context))
                labels.append(float(run.score))
                censored.append(False)
                provenance.append(run.run_hash)
        for record in run.failures or ():
            genome = parse_candidate(str(record.get("candidate", "")))
            if genome is None:
                continue
            try:
                energy, inference = genome_designs(genome)
            except Exception:  # noqa: BLE001 - out-of-range relics skip
                continue
            rows.append(featurizer.vector(energy, inference, context))
            labels.append(math.inf)
            censored.append(True)
            provenance.append(run.run_hash)
    if rows:
        features = np.stack(rows)
    else:
        features = np.empty((0, featurizer.schema.width), dtype=np.float64)
    return TrainingSet(
        features=features,
        labels=np.asarray(labels, dtype=np.float64),
        censored=np.asarray(censored, dtype=bool),
        schema=featurizer.schema,
        provenance=tuple(provenance),
    )


def fit_from_store(store, campaign: Optional[str] = None,
                   workload: Optional[str] = None, *,
                   kind: str = "ridge", seed: int = 0,
                   **model_options: Any,
                   ) -> Tuple[SurrogateModel, TrainingSet]:
    """Build a training set from ``store`` and fit a surrogate on it."""
    training = build_training_set(store, campaign=campaign,
                                  workload=workload)
    if len(training) == 0:
        raise ConfigurationError(
            "the store has no finished runs to train a surrogate on")
    model = SurrogateModel(kind, seed=seed, **model_options)
    model.fit(training.features, training.labels, training.censored)
    return model, training


__all__ = [
    "TrainingSet",
    "build_training_set",
    "fit_from_store",
    "parse_candidate",
]
