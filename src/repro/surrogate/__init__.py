"""Learned ranking over the design space (surrogate-guided DSE).

The subsystem has three layers, each usable alone:

* :mod:`repro.surrogate.features` — deterministic, versioned
  featurization of ``(EnergyDesign, InferenceDesign)`` candidates plus
  their scenario;
* :mod:`repro.surrogate.model` — numpy-only ridge / boosted-stump
  regressors with censored-label handling and uncertainty-aware
  ranking;
* :mod:`repro.surrogate.dataset` — training-set extraction straight
  from the campaign result store.

The consumer is :class:`repro.explore.guided.SurrogateGuidedExplorer`,
which prices only the surrogate's top slice of each GA generation; the
CLI front ends are ``repro surrogate fit|rank`` and ``repro search
--surrogate``.  See docs/EXPLORATION.md.
"""

from repro.surrogate.dataset import (TrainingSet, build_training_set,
                                     fit_from_store, parse_candidate)
from repro.surrogate.features import (FEATURE_NAMES, FEATURE_SCHEMA_VERSION,
                                      FeatureContext, FeatureSchema,
                                      Featurizer, genome_designs)
from repro.surrogate.model import SurrogateModel, load_model, save_model

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureContext",
    "FeatureSchema",
    "Featurizer",
    "SurrogateModel",
    "TrainingSet",
    "build_training_set",
    "fit_from_store",
    "genome_designs",
    "load_model",
    "parse_candidate",
    "save_model",
]
