"""Dependency-free surrogate regressors over candidate features.

Two model families, both numpy-only, seeded, and deterministic:

* ``ridge`` (default) — closed-form L2-regularised linear regression on
  standardized features.  Cheap enough to refit inside a search loop
  every couple of generations.
* ``stumps`` — gradient-boosted depth-1 regression trees (quantile
  thresholds, shrinkage).  Captures the threshold-y structure of the
  design space (a capacitor below the per-inference energy need is a
  cliff, not a slope) at a few milliseconds per fit.

Labels are objective scores, *lower is better*, spanning twelve decades
(milliseconds to the ``1e9`` penalty band), so models fit in
``asinh``-transformed label space.  Censored labels (failed/infeasible
candidates whose true score is only known to be "at least as bad as
anything finite") are floored at one asinh-unit above the worst finite
label and lifted to the model's own prediction when it is worse — a
single hinge-style refit, the standard trick for right-censored
targets.

Ranking is uncertainty-aware: :meth:`SurrogateModel.rank` orders
candidates by predicted (transformed) score minus an exploration bonus
proportional to the candidate's distance from the training set, so the
guided explorer keeps pricing regions the model has never seen.

Persistence follows :mod:`repro.serialize`: plain dicts with a schema
version, validated on load.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.surrogate.features import FeatureSchema

_MODEL_SCHEMA_VERSION = 1

_KINDS = ("ridge", "stumps")

#: Asinh-space gap between the worst finite label and the censored
#: floor (one unit ~ a factor of e in raw score).
_CENSOR_MARGIN = 1.0


class SurrogateModel:
    """A seeded, picklable-as-dict score regressor with ranking."""

    def __init__(self, kind: str = "ridge", *, l2: float = 1e-2,
                 rounds: int = 80, learning_rate: float = 0.15,
                 n_thresholds: int = 16, seed: int = 0) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(
                f"unknown surrogate kind {kind!r}; expected one of {_KINDS}")
        if l2 <= 0:
            raise ConfigurationError("l2 must be positive")
        if rounds < 1:
            raise ConfigurationError("rounds must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if n_thresholds < 2:
            raise ConfigurationError("n_thresholds must be at least 2")
        self.kind = kind
        self.l2 = float(l2)
        self.rounds = int(rounds)
        self.learning_rate = float(learning_rate)
        self.n_thresholds = int(n_thresholds)
        self.seed = int(seed)
        # Fitted state.
        self._mu: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None
        self._z_mean: float = 0.0
        self._weights: Optional[np.ndarray] = None  # ridge
        self._stumps: Tuple[Tuple[int, float, float, float], ...] = ()
        self._train_std: Optional[np.ndarray] = None  # standardized X

    # -- fitting -------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._mu is not None

    def fit(self, features: np.ndarray, labels: np.ndarray,
            censored: Optional[np.ndarray] = None) -> "SurrogateModel":
        """Fit on raw (lower-is-better) labels; returns ``self``.

        ``censored[i]`` marks a right-censored label: the candidate
        failed outright, so its true score is unknown but no better
        than any observed one.  Non-finite labels are treated as
        censored regardless of the mask.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError(
                f"need matching 2-D features and 1-D labels, got "
                f"{features.shape} and {labels.shape}")
        if censored is None:
            censored = np.zeros(len(labels), dtype=bool)
        else:
            censored = np.asarray(censored, dtype=bool).copy()
        censored |= ~np.isfinite(labels)
        if bool(censored.all()):
            raise ConfigurationError(
                "cannot fit a surrogate on censored labels only")
        self._mu = features.mean(axis=0)
        sigma = features.std(axis=0)
        self._sigma = np.where(sigma > 0.0, sigma, 1.0)
        standardized = (features - self._mu) / self._sigma
        z = np.arcsinh(np.where(np.isfinite(labels), labels, 0.0))
        floor = float(z[~censored].max()) + _CENSOR_MARGIN
        z = np.where(censored, floor, z)
        self._fit_transformed(standardized, z)
        if bool(censored.any()):
            # Hinge refit: a censored candidate the model already ranks
            # worse than the floor keeps its own prediction as target,
            # so censoring never drags confident pessimism back up.
            predicted = self._predict_standardized(standardized)
            z = np.where(censored, np.maximum(predicted, floor), z)
            self._fit_transformed(standardized, z)
        self._train_std = standardized
        return self

    def _fit_transformed(self, standardized: np.ndarray,
                         z: np.ndarray) -> None:
        self._z_mean = float(z.mean())
        centered = z - self._z_mean
        if self.kind == "ridge":
            gram = standardized.T @ standardized
            gram += self.l2 * len(standardized) * np.eye(gram.shape[0])
            self._weights = np.linalg.solve(gram, standardized.T @ centered)
        else:
            self._stumps = self._boost(standardized, centered)

    def _boost(self, standardized: np.ndarray, centered: np.ndarray,
               ) -> Tuple[Tuple[int, float, float, float], ...]:
        quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
        thresholds = np.quantile(standardized, quantiles, axis=0)
        prediction = np.zeros(len(centered))
        stumps = []
        for _ in range(self.rounds):
            residual = centered - prediction
            best: Optional[Tuple[float, int, float, float, float]] = None
            for feature_index in range(standardized.shape[1]):
                column = standardized[:, feature_index]
                for threshold in np.unique(thresholds[:, feature_index]):
                    left = column <= threshold
                    n_left = int(left.sum())
                    if n_left == 0 or n_left == len(column):
                        continue
                    left_mean = float(residual[left].mean())
                    right_mean = float(residual[~left].mean())
                    gain = (n_left * left_mean * left_mean
                            + (len(column) - n_left) * right_mean * right_mean)
                    if best is None or gain > best[0]:
                        best = (gain, feature_index, float(threshold),
                                left_mean, right_mean)
            if best is None:  # constant features: nothing to split on
                break
            _, feature_index, threshold, left_mean, right_mean = best
            left_value = self.learning_rate * left_mean
            right_value = self.learning_rate * right_mean
            stumps.append((feature_index, threshold, left_value, right_value))
            column = standardized[:, feature_index]
            prediction += np.where(column <= threshold,
                                   left_value, right_value)
        return tuple(stumps)

    # -- prediction ----------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("surrogate model is not fitted")

    def _standardize(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self._mu.shape[0]:
            raise ConfigurationError(
                f"feature width {features.shape[1]} does not match the "
                f"fitted width {self._mu.shape[0]}")
        return (features - self._mu) / self._sigma

    def _predict_standardized(self, standardized: np.ndarray) -> np.ndarray:
        """Predictions in asinh label space."""
        if self.kind == "ridge":
            return standardized @ self._weights + self._z_mean
        prediction = np.full(len(standardized), self._z_mean)
        for feature_index, threshold, left_value, right_value in self._stumps:
            column = standardized[:, feature_index]
            prediction += np.where(column <= threshold,
                                   left_value, right_value)
        return prediction

    def predict_transformed(self, features: np.ndarray) -> np.ndarray:
        """Vectorized prediction in asinh(score) space (rank-preserving)."""
        self._require_fitted()
        return self._predict_standardized(self._standardize(features))

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorized prediction in raw score space."""
        return np.sinh(self.predict_transformed(features))

    def predict(self, feature_vector: np.ndarray) -> float:
        """Scalar prediction in raw score space."""
        return float(self.predict_batch(np.asarray(feature_vector))[0])

    def uncertainty(self, features: np.ndarray) -> np.ndarray:
        """Dimension-normalized distance to the nearest training row.

        Zero on (a duplicate of) a training row, growing as candidates
        leave the region the model has evidence for — the exploration
        bonus of :meth:`rank`.
        """
        self._require_fitted()
        standardized = self._standardize(features)
        deltas = standardized[:, None, :] - self._train_std[None, :, :]
        distances = np.sqrt((deltas * deltas).sum(axis=2))
        return distances.min(axis=1) / math.sqrt(standardized.shape[1])

    def rank(self, features: np.ndarray,
             explore_weight: float = 0.0) -> np.ndarray:
        """Candidate indices, most promising first.

        Orders by predicted transformed score minus
        ``explore_weight * uncertainty``: low predicted score is
        promising, and so is distance from anything the model was fit
        on.  Stable sort, so equal keys keep input order.
        """
        key = self.predict_transformed(features)
        if explore_weight:
            key = key - explore_weight * self.uncertainty(features)
        return np.argsort(key, kind="stable")

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        self._require_fitted()
        return {
            "schema_version": _MODEL_SCHEMA_VERSION,
            "kind": self.kind,
            "l2": self.l2,
            "rounds": self.rounds,
            "learning_rate": self.learning_rate,
            "n_thresholds": self.n_thresholds,
            "seed": self.seed,
            "mu": self._mu.tolist(),
            "sigma": self._sigma.tolist(),
            "z_mean": self._z_mean,
            "weights": (None if self._weights is None
                        else self._weights.tolist()),
            "stumps": [list(stump) for stump in self._stumps],
            "train_std": self._train_std.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SurrogateModel":
        version = data.get("schema_version")
        if version != _MODEL_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported surrogate-model schema version {version!r} "
                f"(expected {_MODEL_SCHEMA_VERSION})")
        try:
            model = cls(str(data["kind"]), l2=float(data["l2"]),
                        rounds=int(data["rounds"]),
                        learning_rate=float(data["learning_rate"]),
                        n_thresholds=int(data["n_thresholds"]),
                        seed=int(data["seed"]))
            model._mu = np.asarray(data["mu"], dtype=np.float64)
            model._sigma = np.asarray(data["sigma"], dtype=np.float64)
            model._z_mean = float(data["z_mean"])
            weights = data["weights"]
            model._weights = (None if weights is None
                              else np.asarray(weights, dtype=np.float64))
            model._stumps = tuple(
                (int(f), float(t), float(lv), float(rv))
                for f, t, lv, rv in data["stumps"])
            model._train_std = np.asarray(data["train_std"],
                                          dtype=np.float64)
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"invalid surrogate-model record: {error}") from None
        return model


def save_model(path, model: SurrogateModel,
               schema: Optional[FeatureSchema] = None) -> None:
    """Persist a fitted model (+ its feature schema) as JSON."""
    payload = {
        "schema_version": _MODEL_SCHEMA_VERSION,
        "feature_schema": (schema or FeatureSchema()).to_dict(),
        "model": model.to_dict(),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_model(path) -> Tuple[SurrogateModel, FeatureSchema]:
    """Load a model persisted by :func:`save_model`, validating the
    feature schema against this build's."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise ConfigurationError(
            f"cannot read surrogate model {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"invalid surrogate-model JSON in {path}: {error}") from None
    try:
        schema = FeatureSchema.from_dict(data["feature_schema"])
        model = SurrogateModel.from_dict(data["model"])
    except (KeyError, TypeError) as error:
        raise ConfigurationError(
            f"invalid surrogate-model record in {path}: {error}") from None
    FeatureSchema().check_compatible(schema)
    return model, schema


__all__ = ["SurrogateModel", "load_model", "save_model"]
