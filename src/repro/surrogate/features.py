"""Deterministic featurization of design candidates.

The surrogate never sees a genome dict directly: every candidate is
projected to its canonical ``(EnergyDesign, InferenceDesign)`` pair —
the same projection :meth:`DesignSpace.to_design` applies before
pricing — and rendered as a fixed-width ``float64`` vector together
with its *scenario* (environments, objective, workload).  Fixing the
projection point makes the feature map independent of which design
space proposed the candidate, so a model fit on ``existing`` campaign
rows still scores ``future`` genomes (the family one-hot and
accelerator genes simply light up).

Determinism is a contract, not an accident: the same store must yield a
byte-identical feature matrix in every process (pinned by
``tests/test_surrogate.py``), because campaign workers fit surrogates
independently and their rankings must agree.  Everything here is pure
float arithmetic on canonical values — no dict iteration order, no
hashing, no randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.design import EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.objectives import Objective, ObjectiveKind
from repro.explore.space import Genome
from repro.hardware.accelerators import AcceleratorFamily
from repro.workloads.network import Network

#: Bump when the feature layout changes; a model fit under one version
#: refuses feature matrices from another.
FEATURE_SCHEMA_VERSION = 1

_FAMILIES = (AcceleratorFamily.MSP430, AcceleratorFamily.TPU,
             AcceleratorFamily.EYERISS)
_OBJECTIVES = (ObjectiveKind.LATENCY, ObjectiveKind.SOLAR_PANEL,
               ObjectiveKind.LATENCY_X_PANEL)

#: Ordered feature names of schema version 1.
FEATURE_NAMES: Tuple[str, ...] = (
    "panel_area_cm2",
    "log10_capacitance_f",
    *(f"family_{family.value}" for family in _FAMILIES),
    "log2_n_pes",
    "log2_cache_bytes_per_pe",
    "log2_clock_scale",
    "env_count",
    "log10_mean_k_eh",
    "log10_min_k_eh",
    *(f"objective_{kind.name.lower()}" for kind in _OBJECTIVES),
    "sp_cap_cm2",
    "lat_cap_s",
    "log10_network_macs",
    "log10_network_params",
    "network_layers",
)


@dataclass(frozen=True)
class FeatureSchema:
    """The versioned shape of the surrogate's input space.

    Round-trippable through :meth:`to_dict` / :meth:`from_dict` so a
    persisted model can verify, at load time, that it was fit against
    the feature layout this build of the library produces.
    """

    version: int = FEATURE_SCHEMA_VERSION
    names: Tuple[str, ...] = FEATURE_NAMES

    @property
    def width(self) -> int:
        return len(self.names)

    def to_dict(self) -> Dict[str, Any]:
        return {"version": self.version, "names": list(self.names)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FeatureSchema":
        try:
            version = int(data["version"])
            names = tuple(str(name) for name in data["names"])
        except (KeyError, TypeError) as error:
            raise ConfigurationError(
                f"invalid feature-schema record: {error}") from None
        return cls(version=version, names=names)

    def check_compatible(self, other: "FeatureSchema") -> None:
        if self != other:
            raise ConfigurationError(
                f"feature schema mismatch: model was fit under version "
                f"{other.version} ({other.width} features), this build "
                f"produces version {self.version} ({self.width} features)")


@dataclass(frozen=True)
class FeatureContext:
    """The scenario half of a feature vector.

    Candidates within one search share a context (same workload,
    environments, objective); campaign-store training rows each carry
    their own.
    """

    network: Network
    environments: Tuple[LightEnvironment, ...]
    objective: Objective

    @classmethod
    def from_run_key(cls, key) -> "FeatureContext":
        """Context of a campaign :class:`~repro.campaign.spec.RunKey`."""
        from repro.workloads import zoo

        return cls(network=zoo.workload_by_name(key.workload),
                   environments=tuple(key.resolve_environments()),
                   objective=key.to_objective())


def genome_designs(genome: Genome) -> Tuple[EnergyDesign, InferenceDesign]:
    """Canonical ``(energy, inference)`` projection of a HW genome.

    The same dispatch :meth:`DesignSpace.to_design` applies (MSP430
    collapses the accelerator genes; absent genes take the lowering
    defaults), without requiring mappings or a space instance.
    """
    family = genome.get("family", AcceleratorFamily.MSP430)
    if not isinstance(family, AcceleratorFamily):
        family = AcceleratorFamily(str(family))
    if family is AcceleratorFamily.MSP430:
        inference = InferenceDesign.msp430()
    else:
        inference = InferenceDesign(
            family=family,
            n_pes=int(genome.get("n_pes", 64)),
            cache_bytes_per_pe=int(genome.get("cache_bytes_per_pe", 512)),
            clock_scale=float(genome.get("clock_scale", 1.0)),
        )
    energy = EnergyDesign(
        panel_area_cm2=float(genome["panel_area_cm2"]),
        capacitance_f=float(genome["capacitance_f"]),
    )
    return energy, inference


class Featurizer:
    """Maps candidates + scenario to fixed-width ``float64`` vectors."""

    def __init__(self, schema: Optional[FeatureSchema] = None) -> None:
        self.schema = schema or FeatureSchema()
        FeatureSchema().check_compatible(self.schema)

    # -- single vectors ------------------------------------------------------

    def vector(self, energy: EnergyDesign, inference: InferenceDesign,
               context: FeatureContext) -> np.ndarray:
        """One ``(width,)`` float64 feature vector."""
        k_ehs = [env.k_eh for env in context.environments]
        objective = context.objective
        values = [
            energy.panel_area_cm2,
            math.log10(energy.capacitance_f),
            *(1.0 if inference.family is family else 0.0
              for family in _FAMILIES),
            math.log2(max(inference.n_pes, 1)),
            math.log2(max(inference.cache_bytes_per_pe, 1)),
            math.log2(inference.clock_scale),
            float(len(context.environments)),
            math.log10(sum(k_ehs) / len(k_ehs)) if k_ehs else 0.0,
            math.log10(min(k_ehs)) if k_ehs else 0.0,
            *(1.0 if objective.kind is kind else 0.0
              for kind in _OBJECTIVES),
            float(objective.sp_constraint_cm2 or 0.0),
            float(objective.latency_constraint_s or 0.0),
            math.log10(max(context.network.macs, 1)),
            math.log10(max(context.network.params, 1)),
            float(len(context.network)),
        ]
        return np.asarray(values, dtype=np.float64)

    def vector_for_genome(self, genome: Genome,
                          context: FeatureContext) -> np.ndarray:
        energy, inference = genome_designs(genome)
        return self.vector(energy, inference, context)

    # -- batches -------------------------------------------------------------

    def matrix_for_genomes(self, genomes: Sequence[Genome],
                           context: FeatureContext) -> np.ndarray:
        """A ``(len(genomes), width)`` feature matrix."""
        if not genomes:
            return np.empty((0, self.schema.width), dtype=np.float64)
        return np.stack([self.vector_for_genome(genome, context)
                         for genome in genomes])


__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureContext",
    "FeatureSchema",
    "Featurizer",
    "genome_designs",
]
