"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the paper's workload zoo with layer/parameter/op counts.
``search``
    Run a CHRYSALIS search for one workload and print the solution.
``describe``
    Lower a named workload + explicit design knobs into the HW/SW
    describer output (no search).
``simulate``
    Step-simulate an explicit design and print metrics plus the head of
    the event trace.
``faults-sweep``
    Stress an explicit design across fault-injection intensities and
    print the survival-under-faults table.
``campaign run|fleet|worker|status|report``
    Durable multi-scenario campaigns: execute a JSON campaign spec
    against a SQLite result store (resumable — re-invoking skips
    completed runs), run it across a fault-tolerant multi-process
    fleet (``fleet`` spawns local workers; extra ``worker`` processes
    on any machine sharing the store file join the same campaign),
    show completion counts plus per-worker liveness, and rebuild the
    winners / Pareto-front report purely from the store.
``surrogate fit|rank``
    The learned ranking model over campaign results: ``fit`` trains a
    surrogate from a store's finished runs (and absorbed failures, as
    censored examples) and writes it as JSON; ``rank`` samples random
    candidates and prints the model's favourites without any oracle
    pricing.  ``search --surrogate [--surrogate-model PATH]`` consumes
    the model (see docs/EXPLORATION.md).
``obs report``
    Render an observability snapshot — either a ``--obs-output`` JSON
    file or the per-run blobs persisted in a campaign store.
``serve run|bench``
    Always-on evaluation service: ``run`` starts the TCP front of one
    coalescing/micro-batching :class:`~repro.serve.EvaluationService`
    (JSON-lines protocol, see docs/SERVING.md); ``bench`` fires
    concurrent client traffic at a running service and prints
    client-side throughput and latency percentiles.

``search``, ``simulate``, and ``campaign run`` all accept ``--obs``
(record spans/metrics/profiling and print the report afterwards) and
``--obs-output PATH`` (also write the raw snapshot as JSON, the input
format of ``obs report``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import signal
import sys
import time
import warnings
from typing import List, Optional

from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
)
from repro.api import evaluate as api_evaluate
from repro.campaign.fleet import (
    CampaignWorker,
    FleetConfig,
    FleetCoordinator,
)
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_EXHAUSTED,
    STATUS_FAILED,
)
from repro.core.chrysalis import Chrysalis
from repro.core.describer import describe_design
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.environments import environment_by_name
from repro.errors import ChrysalisError
from repro.explore.ga import GAConfig
from repro.explore.mapper_search import MappingOptimizer
from repro.explore.objectives import Objective
from repro.faults import FaultConfig, run_faults_sweep
from repro.hardware.accelerators import AcceleratorFamily
from repro.obs import (
    merge_snapshots,
    render_report,
    to_csv,
    to_json,
)
from repro.obs import state as obs_state
from repro.serialize import (
    design_from_json,
    design_to_json,
    solution_to_json,
)
from repro.serve import (
    EvaluationService,
    ServeClient,
    ServeConfig,
    ServeServer,
)
from repro.sim.report import render_faults_sweep
from repro.workloads import zoo


class _DeprecatedAlias(argparse.Action):
    """``store`` that warns (once per alias) on deprecated spellings."""

    def __init__(self, *args, deprecated_aliases=(), preferred=None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self._deprecated = frozenset(deprecated_aliases)
        self._preferred = preferred

    _announced = set()  # (prog, option) pairs already printed to stderr

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string in self._deprecated:
            message = (f"{option_string} is deprecated; "
                       f"use {self._preferred}")
            # The warning is for programmatic callers (tests, scripts
            # driving main()); the default filters hide it on a normal
            # CLI invocation, so also say it once on stderr.
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            key = (parser.prog, option_string)
            if key not in self._announced:
                self._announced.add(key)
                print(f"warning: {message}", file=sys.stderr)
        setattr(namespace, self.dest, values)


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--obs", action="store_true",
                   help="record spans/metrics/profiling and print the "
                        "observability report afterwards")
    p.add_argument("--obs-output", default=None, metavar="PATH",
                   help="also write the raw observability snapshot as "
                        "JSON (implies --obs; input of 'obs report')")


def _obs_begin(args: argparse.Namespace) -> bool:
    wanted = bool(getattr(args, "obs", False)
                  or getattr(args, "obs_output", None))
    if wanted:
        obs_state.enable(profile=True)
    return wanted


def _obs_finish(args: argparse.Namespace,
                snapshot: Optional[dict] = None) -> None:
    if snapshot is None:
        snapshot = obs_state.snapshot()
    obs_state.disable()
    print()
    print("-- observability " + "-" * 28)
    print(render_report(snapshot))
    if getattr(args, "obs_output", None):
        path = pathlib.Path(args.obs_output)
        path.write_text(to_json(snapshot))
        print(f"\nobservability snapshot written to {path}")


def _build_objective(args: argparse.Namespace) -> Objective:
    if args.objective == "lat":
        if args.sp_cap is None:
            raise ChrysalisError("--objective lat requires --sp-cap")
        return Objective.lat(args.sp_cap)
    if args.objective == "sp":
        if args.lat_cap is None:
            raise ChrysalisError("--objective sp requires --lat-cap")
        return Objective.sp(args.lat_cap)
    return Objective.lat_sp()


def _inference_design(args: argparse.Namespace) -> InferenceDesign:
    if args.arch == "msp430":
        return InferenceDesign.msp430()
    family = AcceleratorFamily(args.arch)
    return InferenceDesign(family=family, n_pes=args.pes,
                           cache_bytes_per_pe=args.cache)


def _explicit_design(args: argparse.Namespace, network,
                     environments=None) -> AuTDesign:
    if getattr(args, "design", None):
        design = design_from_json(
            pathlib.Path(args.design).read_text())
        design.validate_against(network)
        return design
    energy = EnergyDesign(panel_area_cm2=args.panel,
                          capacitance_f=args.cap * 1e-6)
    inference = _inference_design(args)
    mappings = MappingOptimizer(
        network, environments=environments).optimize(energy, inference)
    if mappings is None:
        raise ChrysalisError(
            "no feasible intermittent mapping for this design; "
            "try a bigger capacitor or panel"
        )
    return AuTDesign(energy=energy, inference=inference, mappings=mappings)


def cmd_workloads(args: argparse.Namespace) -> int:
    groups = (("existing", zoo.EXISTING_AUT_WORKLOADS),
              ("future", zoo.FUTURE_AUT_WORKLOADS),
              ("extension", zoo.EXTENSION_WORKLOADS))
    print(f"{'name':<14}{'setup':<11}{'layers':>7}{'params':>12}{'MACs':>14}")
    for setup, registry in groups:
        for name in registry:
            network = zoo.workload_by_name(name)
            print(f"{name:<14}{setup:<11}{network.num_weight_layers:>7}"
                  f"{network.params:>12,}{network.macs:>14,}")
    return 0


def write_solution_json(solution, path) -> pathlib.Path:
    """Persist a solution as JSON — the one write path ``search --json``
    and ``campaign run`` share (both go through ``repro.serialize``)."""
    path = pathlib.Path(path)
    path.write_text(solution_to_json(solution))
    return path


def cmd_search(args: argparse.Namespace) -> int:
    network = zoo.workload_by_name(args.workload)
    obs_on = _obs_begin(args)
    surrogate = None
    surrogate_model = None
    if args.surrogate or args.surrogate_model:
        from repro.explore.guided import SurrogateConfig

        surrogate = SurrogateConfig(keep_fraction=args.keep_fraction)
        if args.surrogate_model:
            from repro.surrogate import load_model

            surrogate_model, _ = load_model(args.surrogate_model)
    tool = Chrysalis(
        network,
        setup=args.setup,
        objective=_build_objective(args),
        ga_config=GAConfig(population_size=args.population,
                           generations=args.generations, seed=args.seed,
                           workers=args.workers, batched=args.batched),
        surrogate=surrogate,
        surrogate_model=surrogate_model,
    )
    solution = tool.generate()
    print(solution.report())
    if tool.last_result is not None:
        print()
        print("-- search throughput " + "-" * 24)
        print(tool.last_result.stats.render())
    if args.output:
        path = write_solution_json(solution, args.output)
        print(f"\nsolution written to {path}")
    if args.design_output:
        path = pathlib.Path(args.design_output)
        path.write_text(design_to_json(solution.design))
        print(f"design written to {path}")
    if obs_on:
        _obs_finish(args)
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    network = zoo.workload_by_name(args.workload)
    design = _explicit_design(args, network)
    print(describe_design(design, network, loop_nests=args.loop_nests))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    network = zoo.workload_by_name(args.workload)
    design = _explicit_design(args, network)
    environments = environment_by_name(args.environment)
    obs_on = _obs_begin(args)
    # The unified front door (results are bit-identical to driving
    # ChrysalisEvaluator.simulate directly).
    report = api_evaluate(design, network, environments=environments,
                          fidelity="step", fast_forward=not args.exact)
    metrics = report.metrics
    if not metrics.feasible:
        print(f"infeasible: {metrics.infeasible_reason}")
        if obs_on:
            _obs_finish(args, report.obs)
        return 1
    result = report.simulations[environments[0].name]
    print(f"e2e latency      : {metrics.e2e_latency:.4f} s "
          f"(busy {metrics.busy_time:.4f} s, "
          f"charge {metrics.charge_time:.4f} s)")
    print(f"sustained period : {metrics.sustained_period:.4f} s")
    print(f"total energy     : {metrics.total_energy * 1e3:.4f} mJ "
          f"(ckpt {metrics.energy.checkpoint * 1e3:.4f} mJ)")
    print(f"power cycles     : {metrics.power_cycles}, "
          f"exceptions: {metrics.exceptions}")
    print(f"system efficiency: {metrics.system_efficiency:.3f}")
    if result.fast_cycles_skipped:
        print(f"fast-forward     : {result.fast_cycles_skipped} cycles "
              f"replayed in {result.fast_segments} segments "
              f"(use --exact for a full per-step trace)")
    print()
    print(result.trace.render(limit=args.trace))
    if obs_on:
        _obs_finish(args, report.obs)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "run": _campaign_run,
        "fleet": _campaign_fleet,
        "worker": _campaign_worker,
        "status": _campaign_status,
        "report": _campaign_report,
    }
    return handlers[args.campaign_command](args)


def _campaign_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_path(args.spec)
    obs_on = _obs_begin(args)
    with ResultStore(args.store) as store:
        runner = CampaignRunner(
            spec, store,
            workers=args.workers,
            max_runs=args.max_runs,
            max_attempts=args.max_attempts,
            on_progress=lambda outcome: print(
                f"  [{outcome.status}] {outcome.key.describe()} "
                f"({outcome.wall_seconds:.1f}s)"),
        )
        print(f"campaign {spec.name}: {len(spec.expand())} run(s), "
              f"store {args.store}")
        progress = runner.run()
    print()
    print(progress.render())
    if obs_on:
        _obs_finish(args)
    return 0 if progress.failed == 0 else 1


def _fleet_config(args: argparse.Namespace) -> FleetConfig:
    return FleetConfig(
        lease_ttl_s=args.lease_ttl,
        heartbeat_s=args.heartbeat_every,
        poll_s=args.poll,
        max_attempts=args.max_attempts,
    )


def _campaign_fleet(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_path(args.spec)
    coordinator = FleetCoordinator(
        spec, args.spec, args.store,
        n_workers=args.fleet_workers,
        config=_fleet_config(args),
    )
    print(f"campaign {spec.name}: {len(spec.expand())} run(s), "
          f"{args.fleet_workers} worker(s), store {args.store}")
    progress = coordinator.run(timeout_s=args.timeout)
    print()
    print(progress.render())
    return 0 if progress.converged else 1


def _campaign_worker(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_path(args.spec)
    worker = CampaignWorker(
        spec, args.store,
        worker_id=args.worker_id,
        config=_fleet_config(args),
        search_workers=args.workers,
    )
    print(f"worker {worker.worker_id}: joining campaign {spec.name} "
          f"on {args.store}", flush=True)
    summary = worker.run()
    print(f"worker {worker.worker_id}: {summary.done} done, "
          f"{summary.failed} failed, {summary.lease_lost} lease(s) lost, "
          f"{summary.reaped} stale lease(s) reaped")
    return 0


def _campaign_status(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        campaigns = ([args.campaign] if args.campaign
                     else store.campaigns())
        if not campaigns:
            print("store holds no campaigns")
            return 1
        incomplete = 0
        for name in campaigns:
            counts = store.status_counts(name)
            total = sum(counts.values())
            done = counts[STATUS_DONE]
            print(f"{name}: {done}/{total} complete "
                  f"({counts[STATUS_FAILED]} failed, "
                  f"{counts[STATUS_EXHAUSTED]} exhausted, "
                  f"{counts['pending'] + counts['running']} pending)")
            for worker in store.workers_status(name):
                state = "alive" if worker.alive else (
                    "exited" if worker.retired_at is not None else "dead")
                print(f"  worker [{state:<6}] {worker.worker_id}: "
                      f"{worker.runs_done} done, "
                      f"{worker.runs_failed} failed "
                      f"({worker.throughput_per_min:.1f} runs/min)")
            if args.runs:
                for run in store.runs(campaign=name):
                    print(f"  [{run.status:<9}] {run.key.describe()} "
                          f"(attempt {run.attempts})")
            incomplete += total - done
    return 0 if incomplete == 0 else 1


def _campaign_report(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        report = CampaignReport.from_store(store, campaign=args.campaign,
                                           hypervolume=args.hypervolume)
    print(report.render_markdown())
    if args.json:
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"\nreport written to {path}")
    return 0


def cmd_surrogate(args: argparse.Namespace) -> int:
    handlers = {"fit": _surrogate_fit, "rank": _surrogate_rank}
    return handlers[args.surrogate_command](args)


def _surrogate_fit(args: argparse.Namespace) -> int:
    from repro.surrogate import fit_from_store, save_model

    with ResultStore(args.store) as store:
        model, training = fit_from_store(
            store, campaign=args.campaign, workload=args.workload,
            kind=args.kind, seed=args.seed)
    print(f"trained {args.kind} surrogate on {training.summary()}")
    save_model(args.output, model, training.schema)
    print(f"model written to {args.output}")
    return 0


def _surrogate_rank(args: argparse.Namespace) -> int:
    import random

    from repro.explore.failures import describe_genome
    from repro.explore.space import DesignSpace
    from repro.surrogate import FeatureContext, Featurizer, load_model

    network = zoo.workload_by_name(args.workload)
    model, _ = load_model(args.model)
    space = (DesignSpace.existing_aut() if args.setup == "existing"
             else DesignSpace.future_aut())
    rng = random.Random(args.seed)
    genomes = [space.sample(rng) for _ in range(args.count)]
    context = FeatureContext(
        network=network,
        environments=tuple(LightEnvironment.paper_environments()),
        objective=_build_objective(args),
    )
    features = Featurizer().matrix_for_genomes(genomes, context)
    order = model.rank(features, args.explore_weight)
    predictions = model.predict_batch(features)
    print(f"top {min(args.top, len(genomes))} of {len(genomes)} sampled "
          f"candidates (surrogate opinion only — not oracle-priced):")
    for position in order[:args.top]:
        print(f"  {predictions[position]:10.4g}  "
              f"{describe_genome(genomes[position])}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    handlers = {"report": _obs_report}
    return handlers[args.obs_command](args)


def _obs_report(args: argparse.Namespace) -> int:
    if (args.snapshot is None) == (args.campaign is None):
        raise ChrysalisError(
            "pass a snapshot JSON file or --campaign STORE (exactly one)")
    if args.snapshot is not None:
        snapshot = json.loads(pathlib.Path(args.snapshot).read_text())
    else:
        # Reconstruct purely from the store's per-run blobs — no live
        # process state involved.
        with ResultStore(args.campaign) as store:
            rows = [run for run in store.runs() if run.obs is not None]
        if args.run:
            rows = [run for run in rows
                    if run.key.run_hash.startswith(args.run)]
        if not rows:
            print("store holds no observability blobs "
                  "(run the campaign with --obs)")
            return 1
        print(f"reconstructed from {len(rows)} stored run blob(s)")
        print()
        snapshot = merge_snapshots(run.obs for run in rows)
    print(render_report(snapshot, top=args.top))
    if args.csv:
        path = pathlib.Path(args.csv)
        path.write_text(to_csv(snapshot))
        print(f"\ncsv written to {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    handlers = {"run": _serve_run, "bench": _serve_bench}
    return handlers[args.serve_command](args)


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_s=args.deadline,
    )


def _render_serve_stats(stats) -> str:
    data = stats.as_dict()
    latency = data["latency_seconds"]
    occupancy = data["batch_occupancy"]
    mean_occupancy = (occupancy["sum"] / occupancy["count"]
                      if occupancy["count"] else 0.0)
    p50 = latency["p50"] or 0.0
    p99 = latency["p99"] or 0.0
    return (f"served {data['requests']} request(s): "
            f"{data['evaluated']} evaluated, "
            f"coalesce rate {data['coalesce_rate']:.1%}, "
            f"{data['batches']} batch(es) "
            f"(mean occupancy {mean_occupancy:.1f}), "
            f"latency p50 {p50 * 1e3:.1f} ms / p99 {p99 * 1e3:.1f} ms, "
            f"{data['shed']} shed, {data['timeouts']} timeout(s), "
            f"{data['failures']} failure(s)")


def _serve_run(args: argparse.Namespace) -> int:
    service = EvaluationService(_serve_config(args))

    async def _main() -> None:
        async with service, \
                ServeServer(service, args.host, args.port) as server:
            host, port = server.address
            print(f"evaluation service listening on {host}:{port} "
                  f"(max batch {args.max_batch_size}, "
                  f"max wait {args.max_wait_ms:g} ms, "
                  f"queue {args.max_queue}); Ctrl-C to stop", flush=True)
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support in loops
            await stop.wait()
            print("draining ...", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    print(_render_serve_stats(service.stats))
    return 0


def _serve_design_pool(args: argparse.Namespace,
                       network) -> List[AuTDesign]:
    """Distinct valid designs for bench traffic (panel-area sweep)."""
    if getattr(args, "design", None):
        design = design_from_json(pathlib.Path(args.design).read_text())
        design.validate_against(network)
        return [design]
    inference = _inference_design(args)
    designs: List[AuTDesign] = []
    count = max(1, args.designs)
    for index in range(count):
        fraction = index / max(count - 1, 1)
        energy = EnergyDesign(
            panel_area_cm2=args.panel * (0.75 + 0.5 * fraction),
            capacitance_f=args.cap * 1e-6)
        mappings = MappingOptimizer(network).optimize(energy, inference)
        if mappings is not None:
            designs.append(AuTDesign(energy=energy, inference=inference,
                                     mappings=mappings))
    if not designs:
        raise ChrysalisError(
            "no feasible design in the bench pool; try a bigger "
            "--panel or --cap")
    return designs


def _serve_bench(args: argparse.Namespace) -> int:
    network = zoo.workload_by_name(args.workload)
    designs = _serve_design_pool(args, network)
    latencies: List[float] = []

    async def _main() -> float:
        async with await ServeClient.connect(args.host,
                                             args.port) as client:
            gate = asyncio.Semaphore(args.concurrency)

            async def one(index: int) -> None:
                async with gate:
                    begin = time.perf_counter()
                    await client.evaluate(
                        designs[index % len(designs)], args.workload,
                        environment=args.environment,
                        deadline_s=args.deadline)
                    latencies.append(time.perf_counter() - begin)

            begin = time.perf_counter()
            await asyncio.gather(*[one(i) for i in range(args.requests)])
            return time.perf_counter() - begin

    wall = asyncio.run(_main())
    latencies.sort()

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1,
                             int(q * len(latencies)))] * 1e3

    print(f"{args.requests} request(s) over {len(designs)} distinct "
          f"design(s) at concurrency {args.concurrency}: "
          f"{args.requests / wall:.1f} req/s "
          f"(p50 {pct(0.50):.1f} ms, p99 {pct(0.99):.1f} ms)")
    return 0


def cmd_faults_sweep(args: argparse.Namespace) -> int:
    network = zoo.workload_by_name(args.workload)
    # A multi-environment label stresses its first environment (the
    # sweep is per-environment by construction).
    environment = environment_by_name(args.environment)[0]
    # Map the design for the environment being stressed: sweeping a
    # design that is nominally infeasible there tells you nothing.
    design = _explicit_design(args, network, environments=(environment,))
    base = FaultConfig.stress().with_seed(args.fault_seed)
    cells = run_faults_sweep(
        design, network, environment,
        base=base,
        intensities=tuple(args.intensities),
        seeds_per_cell=args.seeds_per_cell,
        max_steps=args.max_steps,
    )
    print(f"fault model      : stress profile, seed {args.fault_seed}")
    print(f"environment      : {args.environment}, "
          f"{args.seeds_per_cell} seed(s) per intensity")
    print()
    print(render_faults_sweep(cells))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHRYSALIS: EA/IA co-design for Autonomous Things",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload zoo")

    search = sub.add_parser("search", help="run a CHRYSALIS search")
    search.add_argument("workload")
    search.add_argument("--setup", choices=("existing", "future"),
                        default="existing")
    search.add_argument("--objective", choices=("lat", "sp", "lat*sp"),
                        default="lat*sp")
    search.add_argument("--sp-cap", type=float, default=None,
                        help="panel-area cap (cm^2) for --objective lat")
    search.add_argument("--lat-cap", type=float, default=None,
                        help="latency cap (s) for --objective sp")
    search.add_argument("--population", type=int, default=12)
    search.add_argument("--generations", type=int, default=8)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--workers", type=int, default=1,
                        help="worker processes for genome evaluation "
                             "(1 = serial; N > 1 gives identical results)")
    search.add_argument("--batched", action="store_true",
                        help="vectorized in-process generation evaluation "
                             "(identical results; mutually exclusive with "
                             "--workers > 1)")
    search.add_argument("--surrogate", action="store_true",
                        help="surrogate-guided search: a learned model "
                             "triages each generation and only the top "
                             "slice is fully priced (docs/EXPLORATION.md)")
    search.add_argument("--keep-fraction", type=float, default=0.3,
                        help="oracle-priced share of each generation under "
                             "--surrogate (1.0 = identical to plain search)")
    search.add_argument("--surrogate-model", default=None, metavar="PATH",
                        help="warm-start from a model fitted by "
                             "'surrogate fit' (implies --surrogate)")
    search.add_argument("--output", "--json", dest="output", default=None,
                        metavar="PATH", action=_DeprecatedAlias,
                        deprecated_aliases={"--json"}, preferred="--output",
                        help="write the full solution as JSON "
                             "(reloadable via repro.serialize); "
                             "--json is a deprecated alias")
    search.add_argument("--design-output", default=None,
                        help="write just the design (loadable via "
                             "--design) as JSON")
    _add_obs_args(search)

    def add_design_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload")
        p.add_argument("--design", default=None,
                       help="load a serialized design JSON instead of "
                            "building one from the knobs below")
        p.add_argument("--panel", type=float, default=8.0,
                       help="solar panel area, cm^2")
        p.add_argument("--cap", type=float, default=470.0,
                       help="capacitance, uF")
        p.add_argument("--arch",
                       choices=("msp430", "tpu", "eyeriss"),
                       default="msp430")
        p.add_argument("--pes", type=int, default=64)
        p.add_argument("--cache", type=int, default=512,
                       help="per-PE cache, bytes")

    describe = sub.add_parser("describe",
                              help="render the HW/SW describer output")
    add_design_args(describe)
    describe.add_argument("--loop-nests", action="store_true")

    simulate = sub.add_parser("simulate",
                              help="step-simulate an explicit design")
    add_design_args(simulate)
    simulate.add_argument("--environment", default="brighter",
                          help="environment label (a preset such as "
                               "brighter/darker/indoor, a registered "
                               "trace, or scenario:<name>)")
    simulate.add_argument("--trace", type=int, default=10,
                          help="trace events to print")
    simulate.add_argument("--exact", action="store_true",
                          help="disable the cycle-skipping fast path "
                               "(exact per-step simulation, full trace)")
    _add_obs_args(simulate)

    campaign = sub.add_parser(
        "campaign",
        help="durable, resumable multi-scenario DSE campaigns")
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = csub.add_parser(
        "run", help="execute the pending runs of a campaign spec")
    crun.add_argument("spec", help="campaign spec JSON (see docs/CAMPAIGNS.md)")
    crun.add_argument("--store", default="campaign.sqlite",
                      help="SQLite result store; reuse it to resume")
    crun.add_argument("--workers", type=int, default=None,
                      help="override the spec's per-search worker count")
    crun.add_argument("--max-runs", type=int, default=None,
                      help="stop after this many runs (resume later)")
    crun.add_argument("--max-attempts", type=int, default=None,
                      help="override the spec's retry cap; a run that "
                           "fails this many times becomes 'exhausted' "
                           "and is never retried")
    _add_obs_args(crun)

    def add_fleet_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec",
                       help="campaign spec JSON (see docs/CAMPAIGNS.md)")
        p.add_argument("--store", default="campaign.sqlite",
                       help="shared SQLite result store; every process "
                            "pointing at the same file joins the same fleet")
        p.add_argument("--lease-ttl", type=float,
                       default=FleetConfig.lease_ttl_s, metavar="SECONDS",
                       help="run-lease time-to-live; a dead worker's runs "
                            "re-queue within one TTL")
        p.add_argument("--heartbeat-every", type=float, default=None,
                       metavar="SECONDS",
                       help="lease-extension period (default: TTL/4)")
        p.add_argument("--poll", type=float, default=FleetConfig.poll_s,
                       metavar="SECONDS",
                       help="idle/watch polling period")
        p.add_argument("--max-attempts", type=int, default=None,
                       help="override the spec's retry cap")

    cfleet = csub.add_parser(
        "fleet",
        help="run a campaign across N fault-tolerant local workers")
    add_fleet_args(cfleet)
    cfleet.add_argument("--workers", dest="fleet_workers", type=int,
                        default=2,
                        help="local worker processes to spawn")
    cfleet.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="hard stop; the campaign stays resumable")

    cworker = csub.add_parser(
        "worker",
        help="join a campaign as one fleet worker (any machine that "
             "shares the store file)")
    add_fleet_args(cworker)
    cworker.add_argument("--worker-id", default=None,
                         help="fleet-unique worker name (default: host:pid)")
    cworker.add_argument("--workers", type=int, default=None,
                         help="override the spec's per-search worker count")

    cstatus = csub.add_parser(
        "status", help="completion counts of the stored campaigns")
    cstatus.add_argument("--store", default="campaign.sqlite")
    cstatus.add_argument("--campaign", default=None,
                         help="restrict to one campaign name")
    cstatus.add_argument("--runs", action="store_true",
                         help="also list every run with its status")

    creport = csub.add_parser(
        "report",
        help="winners + Pareto front, rebuilt purely from the store")
    creport.add_argument("--store", default="campaign.sqlite")
    creport.add_argument("--campaign", default=None,
                         help="campaign name (needed only for shared stores)")
    creport.add_argument("--hypervolume", action="store_true",
                         help="add per-scenario (panel, latency) dominated "
                              "hypervolume against a shared campaign-wide "
                              "reference")
    creport.add_argument("--json", default=None, metavar="PATH",
                         help="also write the report as JSON")

    surrogate = sub.add_parser(
        "surrogate",
        help="fit / probe the learned ranking model over campaign results")
    ssur = surrogate.add_subparsers(dest="surrogate_command", required=True)

    sfit = ssur.add_parser(
        "fit", help="train a surrogate from a campaign store's "
                    "finished runs and absorbed failures")
    sfit.add_argument("--store", default="campaign.sqlite",
                      help="SQLite result store to extract training data "
                           "from")
    sfit.add_argument("--campaign", default=None,
                      help="restrict training rows to one campaign")
    sfit.add_argument("--workload", default=None,
                      help="restrict training rows to one workload")
    sfit.add_argument("--kind", choices=("ridge", "stumps"),
                      default="ridge", help="regressor family")
    sfit.add_argument("--seed", type=int, default=0)
    sfit.add_argument("--output", default="surrogate.json", metavar="PATH",
                      help="where to write the fitted model JSON")

    srank = ssur.add_parser(
        "rank", help="sample random candidates and print the model's "
                     "favourites (no oracle pricing)")
    srank.add_argument("workload")
    srank.add_argument("--model", required=True, metavar="PATH",
                       help="model JSON written by 'surrogate fit'")
    srank.add_argument("--setup", choices=("existing", "future"),
                       default="existing")
    srank.add_argument("--objective", choices=("lat", "sp", "lat*sp"),
                       default="lat*sp")
    srank.add_argument("--sp-cap", type=float, default=None,
                       help="solar-panel cap (cm^2) for --objective lat")
    srank.add_argument("--lat-cap", type=float, default=None,
                       help="latency cap (s) for --objective sp")
    srank.add_argument("--count", type=int, default=256,
                       help="random candidates to sample")
    srank.add_argument("--top", type=int, default=10,
                       help="how many favourites to print")
    srank.add_argument("--seed", type=int, default=0)
    srank.add_argument("--explore-weight", type=float, default=0.0,
                       help="uncertainty bonus weight during ranking")

    obs = sub.add_parser(
        "obs", help="observability reports (see docs/OBSERVABILITY.md)")
    osub = obs.add_subparsers(dest="obs_command", required=True)
    oreport = osub.add_parser(
        "report",
        help="render a snapshot file or a campaign store's obs blobs")
    oreport.add_argument("snapshot", nargs="?", default=None,
                         help="snapshot JSON written by --obs-output")
    oreport.add_argument("--campaign", default=None, metavar="STORE",
                         help="reconstruct from this campaign store's "
                              "per-run blobs instead")
    oreport.add_argument("--run", default=None, metavar="HASH",
                         help="restrict --campaign mode to one run "
                              "(hash prefix)")
    oreport.add_argument("--top", type=int, default=10,
                         help="hottest phases to list")
    oreport.add_argument("--csv", default=None, metavar="PATH",
                         help="also write the aggregated CSV")

    serve = sub.add_parser(
        "serve",
        help="always-on evaluation service (see docs/SERVING.md)")
    ssub = serve.add_subparsers(dest="serve_command", required=True)

    def add_serve_endpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7733)

    srun = ssub.add_parser(
        "run", help="start the TCP evaluation service (JSON lines)")
    add_serve_endpoint(srun)
    srun.add_argument("--max-batch-size", type=int,
                      default=ServeConfig.max_batch_size,
                      help="largest micro-batch one flush may hold")
    srun.add_argument("--max-wait-ms", type=float,
                      default=ServeConfig.max_wait_ms,
                      help="longest the batcher may hold a request "
                           "while waiting for company")
    srun.add_argument("--max-queue", type=int,
                      default=ServeConfig.max_queue,
                      help="admission limit; beyond it requests are "
                           "shed with an overload error")
    srun.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="default per-request deadline")

    sbench = ssub.add_parser(
        "bench",
        help="fire concurrent client traffic at a running service")
    add_design_args(sbench)
    add_serve_endpoint(sbench)
    sbench.add_argument("--requests", type=int, default=64,
                        help="total requests to send")
    sbench.add_argument("--concurrency", type=int, default=16,
                        help="in-flight request cap")
    sbench.add_argument("--designs", type=int, default=8,
                        help="distinct designs in the traffic pool; "
                             "repeats of the same design coalesce "
                             "server-side")
    sbench.add_argument("--environment", default="paper",
                        help="environment label (paper, brighter, "
                             "darker, indoor, scenario:<name>)")
    sbench.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline")

    faults = sub.add_parser(
        "faults-sweep",
        help="stress a design across fault-injection intensities")
    add_design_args(faults)
    faults.add_argument("--environment", default="brighter",
                        help="environment label (a preset such as "
                             "brighter/darker/indoor, a registered "
                             "trace, or scenario:<name>)")
    faults.add_argument("--intensities", type=float, nargs="+",
                        default=[0.0, 0.5, 1.0, 2.0],
                        help="fault-rate multipliers applied to the "
                             "stress profile")
    faults.add_argument("--seeds-per-cell", type=int, default=3,
                        help="fault seeds simulated per intensity")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="base seed of the fault processes")
    faults.add_argument("--max-steps", type=int, default=500_000,
                        help="per-run step budget before the run counts "
                             "as a non-survivor")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "workloads": cmd_workloads,
        "search": cmd_search,
        "describe": cmd_describe,
        "simulate": cmd_simulate,
        "campaign": cmd_campaign,
        "surrogate": cmd_surrogate,
        "obs": cmd_obs,
        "serve": cmd_serve,
        "faults-sweep": cmd_faults_sweep,
    }
    try:
        return handlers[args.command](args)
    except ChrysalisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
