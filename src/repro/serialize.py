"""JSON (de)serialization of designs and solutions.

A design-space exploration is only useful if its output survives the
process: these helpers round-trip :class:`~repro.design.AuTDesign` and
:class:`~repro.core.result.AuTSolution` through plain JSON-compatible
dictionaries, so searches can be persisted, diffed and re-evaluated
later (e.g. ``python -m repro search ... > design.json`` pipelines).

Only data is serialized — never code: deserialization reconstructs the
dataclasses through their validating constructors, so a tampered or
stale file fails loudly instead of producing an impossible design.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.pmic import PowerManagementIC
from repro.errors import ConfigurationError
from repro.hardware.accelerators import AcceleratorFamily

_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# to dict
# ---------------------------------------------------------------------------


def mapping_to_dict(mapping: LayerMapping) -> Dict[str, Any]:
    return {
        "style": mapping.style.value,
        "n_tiles": mapping.n_tiles,
        "tile_dim": mapping.tile_dim,
        "spatial_dim": mapping.spatial_dim,
        "secondary_dim": mapping.secondary_dim,
        "n_tiles_2": mapping.n_tiles_2,
    }


def design_to_dict(design: AuTDesign) -> Dict[str, Any]:
    """A JSON-compatible description of a complete design point."""
    pmic = design.energy.pmic
    return {
        "schema_version": _SCHEMA_VERSION,
        "energy": {
            "panel_area_cm2": design.energy.panel_area_cm2,
            "capacitance_f": design.energy.capacitance_f,
            "k_cap": design.energy.k_cap,
            "pmic": {
                "v_on": pmic.v_on,
                "v_off": pmic.v_off,
                "boost_efficiency": pmic.boost_efficiency,
                "buck_efficiency": pmic.buck_efficiency,
                "quiescent_power": pmic.quiescent_power,
                "v_cold_start": pmic.v_cold_start,
            },
        },
        "inference": {
            "family": design.inference.family.value,
            "n_pes": design.inference.n_pes,
            "cache_bytes_per_pe": design.inference.cache_bytes_per_pe,
            "clock_scale": design.inference.clock_scale,
        },
        "mappings": [mapping_to_dict(m) for m in design.mappings],
    }


def design_to_json(design: AuTDesign, indent: int = 2) -> str:
    return json.dumps(design_to_dict(design), indent=indent)


# ---------------------------------------------------------------------------
# from dict
# ---------------------------------------------------------------------------


def mapping_from_dict(data: Dict[str, Any]) -> LayerMapping:
    try:
        return LayerMapping(
            style=DataflowStyle.from_string(data["style"]),
            n_tiles=int(data["n_tiles"]),
            tile_dim=data["tile_dim"],
            spatial_dim=data["spatial_dim"],
            secondary_dim=data.get("secondary_dim"),
            n_tiles_2=int(data.get("n_tiles_2", 1)),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"mapping record is missing field {missing}"
        ) from None


def design_from_dict(data: Dict[str, Any]) -> AuTDesign:
    """Reconstruct (and re-validate) a design from its dictionary form."""
    version = data.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported design schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    try:
        energy_data = data["energy"]
        pmic_data = energy_data["pmic"]
        inference_data = data["inference"]
        mappings_data = data["mappings"]
    except KeyError as missing:
        raise ConfigurationError(
            f"design record is missing section {missing}"
        ) from None

    energy = EnergyDesign(
        panel_area_cm2=float(energy_data["panel_area_cm2"]),
        capacitance_f=float(energy_data["capacitance_f"]),
        k_cap=float(energy_data.get("k_cap", EnergyDesign(
            panel_area_cm2=1, capacitance_f=1e-6).k_cap)),
        pmic=PowerManagementIC(**pmic_data),
    )
    inference = InferenceDesign(
        family=AcceleratorFamily(inference_data["family"]),
        n_pes=int(inference_data["n_pes"]),
        cache_bytes_per_pe=int(inference_data["cache_bytes_per_pe"]),
        clock_scale=float(inference_data.get("clock_scale", 1.0)),
    )
    mappings = tuple(mapping_from_dict(m) for m in mappings_data)
    return AuTDesign(energy=energy, inference=inference, mappings=mappings)


def design_from_json(text: str) -> AuTDesign:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid design JSON: {error}") from None
    if not isinstance(data, dict):
        raise ConfigurationError("design JSON must be an object")
    return design_from_dict(data)


# ---------------------------------------------------------------------------
# solutions
# ---------------------------------------------------------------------------


def solution_to_dict(solution) -> Dict[str, Any]:
    """Serialise an :class:`~repro.core.result.AuTSolution` (metrics are
    included for the record but not round-tripped — re-evaluate the
    design to regenerate them)."""
    metrics = solution.average_metrics
    return {
        "schema_version": _SCHEMA_VERSION,
        "design": design_to_dict(solution.design),
        "objective": solution.objective_label,
        "score": solution.score,
        "evaluations": solution.evaluations,
        "metrics": {
            "e2e_latency_s": metrics.e2e_latency,
            "sustained_period_s": metrics.sustained_period,
            "total_energy_j": metrics.total_energy,
            "system_efficiency": metrics.system_efficiency,
        },
        "layer_plan": [
            {
                "layer": row.layer,
                "dataflow": row.dataflow,
                "n_tiles": row.n_tiles,
                "tile_dim": row.tile_dim,
                "spatial_dim": row.spatial_dim,
            }
            for row in solution.layer_plan
        ],
    }
