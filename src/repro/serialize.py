"""JSON (de)serialization of designs and solutions.

A design-space exploration is only useful if its output survives the
process: these helpers round-trip :class:`~repro.design.AuTDesign` and
:class:`~repro.core.result.AuTSolution` through plain JSON-compatible
dictionaries, so searches can be persisted, diffed and re-evaluated
later (e.g. ``python -m repro search ... > design.json`` pipelines).

Only data is serialized — never code: deserialization reconstructs the
dataclasses through their validating constructors, so a tampered or
stale file fails loudly instead of producing an impossible design.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.pmic import PowerManagementIC
from repro.errors import ConfigurationError
from repro.hardware.accelerators import AcceleratorFamily
from repro.sim.metrics import EnergyBreakdown, InferenceMetrics

_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# to dict
# ---------------------------------------------------------------------------


def mapping_to_dict(mapping: LayerMapping) -> Dict[str, Any]:
    return {
        "style": mapping.style.value,
        "n_tiles": mapping.n_tiles,
        "tile_dim": mapping.tile_dim,
        "spatial_dim": mapping.spatial_dim,
        "secondary_dim": mapping.secondary_dim,
        "n_tiles_2": mapping.n_tiles_2,
    }


def design_to_dict(design: AuTDesign) -> Dict[str, Any]:
    """A JSON-compatible description of a complete design point."""
    pmic = design.energy.pmic
    return {
        "schema_version": _SCHEMA_VERSION,
        "energy": {
            "panel_area_cm2": design.energy.panel_area_cm2,
            "capacitance_f": design.energy.capacitance_f,
            "k_cap": design.energy.k_cap,
            "pmic": {
                "v_on": pmic.v_on,
                "v_off": pmic.v_off,
                "boost_efficiency": pmic.boost_efficiency,
                "buck_efficiency": pmic.buck_efficiency,
                "quiescent_power": pmic.quiescent_power,
                "v_cold_start": pmic.v_cold_start,
            },
        },
        "inference": {
            "family": design.inference.family.value,
            "n_pes": design.inference.n_pes,
            "cache_bytes_per_pe": design.inference.cache_bytes_per_pe,
            "clock_scale": design.inference.clock_scale,
        },
        "mappings": [mapping_to_dict(m) for m in design.mappings],
    }


def design_to_json(design: AuTDesign, indent: int = 2) -> str:
    return json.dumps(design_to_dict(design), indent=indent)


# ---------------------------------------------------------------------------
# from dict
# ---------------------------------------------------------------------------


def mapping_from_dict(data: Dict[str, Any]) -> LayerMapping:
    try:
        return LayerMapping(
            style=DataflowStyle.from_string(data["style"]),
            n_tiles=int(data["n_tiles"]),
            tile_dim=data["tile_dim"],
            spatial_dim=data["spatial_dim"],
            secondary_dim=data.get("secondary_dim"),
            n_tiles_2=int(data.get("n_tiles_2", 1)),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"mapping record is missing field {missing}"
        ) from None


def design_from_dict(data: Dict[str, Any]) -> AuTDesign:
    """Reconstruct (and re-validate) a design from its dictionary form."""
    version = data.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported design schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    try:
        energy_data = data["energy"]
        pmic_data = energy_data["pmic"]
        inference_data = data["inference"]
        mappings_data = data["mappings"]
    except KeyError as missing:
        raise ConfigurationError(
            f"design record is missing section {missing}"
        ) from None

    energy = EnergyDesign(
        panel_area_cm2=float(energy_data["panel_area_cm2"]),
        capacitance_f=float(energy_data["capacitance_f"]),
        k_cap=float(energy_data.get("k_cap", EnergyDesign(
            panel_area_cm2=1, capacitance_f=1e-6).k_cap)),
        pmic=PowerManagementIC(**pmic_data),
    )
    inference = InferenceDesign(
        family=AcceleratorFamily(inference_data["family"]),
        n_pes=int(inference_data["n_pes"]),
        cache_bytes_per_pe=int(inference_data["cache_bytes_per_pe"]),
        clock_scale=float(inference_data.get("clock_scale", 1.0)),
    )
    mappings = tuple(mapping_from_dict(m) for m in mappings_data)
    return AuTDesign(energy=energy, inference=inference, mappings=mappings)


def design_from_json(text: str) -> AuTDesign:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid design JSON: {error}") from None
    if not isinstance(data, dict):
        raise ConfigurationError("design JSON must be an object")
    return design_from_dict(data)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def breakdown_to_dict(breakdown: EnergyBreakdown) -> Dict[str, float]:
    return {
        "compute": breakdown.compute,
        "vm": breakdown.vm,
        "nvm": breakdown.nvm,
        "static": breakdown.static,
        "checkpoint": breakdown.checkpoint,
        "cap_leakage": breakdown.cap_leakage,
        "conversion": breakdown.conversion,
    }


def breakdown_from_dict(data: Dict[str, Any]) -> EnergyBreakdown:
    try:
        return EnergyBreakdown(**{field: float(data[field])
                                  for field in breakdown_to_dict(
                                      EnergyBreakdown())})
    except KeyError as missing:
        raise ConfigurationError(
            f"energy-breakdown record is missing field {missing}") from None


def metrics_to_dict(metrics: InferenceMetrics) -> Dict[str, Any]:
    """Full, invertible form of one :class:`InferenceMetrics`."""
    return {
        "e2e_latency": metrics.e2e_latency,
        "busy_time": metrics.busy_time,
        "charge_time": metrics.charge_time,
        "energy": breakdown_to_dict(metrics.energy),
        "harvested_energy": metrics.harvested_energy,
        "power_cycles": metrics.power_cycles,
        "exceptions": metrics.exceptions,
        "feasible": metrics.feasible,
        "infeasible_reason": metrics.infeasible_reason,
        "sustained_period": metrics.sustained_period,
    }


def metrics_from_dict(data: Dict[str, Any]) -> InferenceMetrics:
    try:
        return InferenceMetrics(
            e2e_latency=float(data["e2e_latency"]),
            busy_time=float(data["busy_time"]),
            charge_time=float(data["charge_time"]),
            energy=breakdown_from_dict(data["energy"]),
            harvested_energy=float(data["harvested_energy"]),
            power_cycles=int(data["power_cycles"]),
            exceptions=int(data["exceptions"]),
            feasible=bool(data["feasible"]),
            infeasible_reason=str(data["infeasible_reason"]),
            sustained_period=float(data["sustained_period"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"metrics record is missing field {missing}") from None


# ---------------------------------------------------------------------------
# solutions
# ---------------------------------------------------------------------------


def solution_to_dict(solution) -> Dict[str, Any]:
    """Serialise an :class:`~repro.core.result.AuTSolution`.

    The ``metrics`` block is the historical human-oriented summary; the
    ``average_metrics`` / ``metrics_by_env`` blocks are the full,
    invertible forms that :func:`solution_from_dict` round-trips.
    """
    metrics = solution.average_metrics
    return {
        "schema_version": _SCHEMA_VERSION,
        "design": design_to_dict(solution.design),
        "objective": solution.objective_label,
        "score": solution.score,
        "evaluations": solution.evaluations,
        "absorbed_failures": solution.absorbed_failures,
        "metrics": {
            "e2e_latency_s": metrics.e2e_latency,
            "sustained_period_s": metrics.sustained_period,
            "total_energy_j": metrics.total_energy,
            "system_efficiency": metrics.system_efficiency,
        },
        "average_metrics": metrics_to_dict(metrics),
        "metrics_by_env": {
            name: metrics_to_dict(env_metrics)
            for name, env_metrics in solution.metrics_by_env.items()
        },
        "layer_plan": [
            {
                "layer": row.layer,
                "dataflow": row.dataflow,
                "n_tiles": row.n_tiles,
                "tile_dim": row.tile_dim,
                "spatial_dim": row.spatial_dim,
            }
            for row in solution.layer_plan
        ],
    }


def solution_from_dict(data: Dict[str, Any]):
    """Reconstruct an :class:`~repro.core.result.AuTSolution`.

    The inverse of :func:`solution_to_dict` (which long predates it —
    this closes a standing API asymmetry): the design is rebuilt through
    its validating constructors and the full metrics blocks are
    restored, so a campaign store can hand back exactly the solution the
    search produced.  An attached resilience report is *not* serialized;
    re-attach one with ``with_resilience`` after a fault-injected rerun.
    """
    from repro.core.result import AuTSolution, LayerPlanRow

    version = data.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported solution schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    if "average_metrics" not in data:
        raise ConfigurationError(
            "solution record has no 'average_metrics' block (written by a "
            "pre-campaign release?); re-evaluate the embedded design instead"
        )
    try:
        plan = [
            LayerPlanRow(
                layer=str(row["layer"]),
                dataflow=str(row["dataflow"]),
                n_tiles=int(row["n_tiles"]),
                tile_dim=str(row["tile_dim"]),
                spatial_dim=str(row["spatial_dim"]),
            )
            for row in data["layer_plan"]
        ]
        return AuTSolution(
            design=design_from_dict(data["design"]),
            average_metrics=metrics_from_dict(data["average_metrics"]),
            metrics_by_env={
                name: metrics_from_dict(env_metrics)
                for name, env_metrics in data["metrics_by_env"].items()
            },
            layer_plan=plan,
            objective_label=str(data["objective"]),
            score=float(data["score"]),
            evaluations=int(data["evaluations"]),
            absorbed_failures=int(data.get("absorbed_failures", 0)),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"solution record is missing field {missing}") from None


def solution_to_json(solution, indent: int = 2) -> str:
    return json.dumps(solution_to_dict(solution), indent=indent)


def solution_from_json(text: str):
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid solution JSON: {error}") from None
    if not isinstance(data, dict):
        raise ConfigurationError("solution JSON must be an object")
    return solution_from_dict(data)
