"""SWaP scenario presets for the application domains the paper motivates.

"Many AuT systems are part of mission-critical infrastructures in land,
sea, air, and space.  Each of the AuT faces rigorous and specific Space,
Weight, and Power (SWaP) constraints" (§I).  A :class:`Scenario` bundles
such constraints plus the environments to qualify in, and produces the
matching objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.objectives import Objective


@dataclass(frozen=True)
class Scenario:
    """A deployment scenario with SWaP constraints.

    ``max_panel_cm2`` caps the harvester footprint (size/weight proxy);
    ``max_latency_s`` caps single-inference latency (mission deadline).
    At least one must be set; when both are, the objective minimises the
    constrained quantity with the other as the cap.
    """

    name: str
    description: str
    environments: Tuple[LightEnvironment, ...]
    max_panel_cm2: Optional[float] = None
    max_latency_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_panel_cm2 is None and self.max_latency_s is None:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one SWaP constraint"
            )

    def objective(self) -> Objective:
        """The objective this scenario's constraints imply."""
        if self.max_panel_cm2 is not None and self.max_latency_s is not None:
            # Both constrained: minimise latency under the size cap (the
            # latency cap is then verified on the returned solution).
            return Objective.lat(self.max_panel_cm2)
        if self.max_panel_cm2 is not None:
            return Objective.lat(self.max_panel_cm2)
        return Objective.sp(self.max_latency_s)

    def satisfied_by(self, panel_cm2: float, latency_s: float) -> bool:
        if self.max_panel_cm2 is not None and panel_cm2 > self.max_panel_cm2:
            return False
        if self.max_latency_s is not None and latency_s > self.max_latency_s:
            return False
        return True


def _both() -> Tuple[LightEnvironment, LightEnvironment]:
    return LightEnvironment.paper_environments()


def scenario_by_name(name: str) -> Scenario:
    """Look up a preset scenario by name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names,
    listing what is available (mirrors ``zoo.workload_by_name``).
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


#: Ready-made scenarios for the paper's motivating domains.
SCENARIOS: Dict[str, Scenario] = {
    "wearable": Scenario(
        name="wearable",
        description="Body-worn health sensor: tiny harvester, relaxed "
                    "latency (continuous glucose-style monitoring).",
        environments=_both(),
        max_panel_cm2=4.0,
    ),
    "volcano-monitor": Scenario(
        name="volcano-monitor",
        description="Autonomous hazard-monitoring station: generous "
                    "footprint, hard detection deadline.",
        environments=_both(),
        max_latency_s=30.0,
    ),
    "uav": Scenario(
        name="uav",
        description="Micro-UAV perception: strict weight (panel) cap and "
                    "a flight-control latency deadline.",
        environments=(LightEnvironment.brighter(),),
        max_panel_cm2=12.0,
        max_latency_s=10.0,
    ),
    "smart-city": Scenario(
        name="smart-city",
        description="Street-level sensing node: moderate footprint, "
                    "overcast-tolerant.",
        environments=(LightEnvironment.darker(),),
        max_panel_cm2=20.0,
    ),
    "space-probe": Scenario(
        name="space-probe",
        description="Deep-space IoAT payload: footprint is everything; "
                    "latency is negotiable.",
        environments=(LightEnvironment.indoor(),),  # weak-light proxy
        max_panel_cm2=8.0,
    ),
}
