"""The CHRYSALIS front door — the usage model of §III-A.

    Given a domain-specific DNN model along with its corresponding
    dataset, the high-level specifications of the AuT (including
    environment and technology constraints) as well as specific
    objective demands, the tool can automatically generate the ideal
    AuT solution.

Example
-------
>>> from repro.core import Chrysalis
>>> from repro.explore.objectives import Objective
>>> from repro.workloads import zoo
>>> tool = Chrysalis(zoo.har_cnn(), setup="existing",
...                  objective=Objective.lat_sp())
>>> solution = tool.generate()          # doctest: +SKIP
>>> print(solution.report())            # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.result import AuTSolution
from repro.core.scenarios import Scenario
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.bilevel import BilevelExplorer, SearchResult
from repro.explore.ga import GAConfig
from repro.explore.objectives import Objective
from repro.explore.space import DesignSpace
from repro.hardware.checkpoint import CheckpointModel
from repro.workloads.network import Network


class Chrysalis:
    """Automated EA/IA co-design for one workload.

    Parameters
    ----------
    network:
        The domain-specific DNN task (see :mod:`repro.workloads.zoo`).
    objective:
        One of the paper's three objectives; defaults to ``lat*sp``.
    setup:
        ``"existing"`` for the Table IV MSP430-based space, ``"future"``
        for the Table V reconfigurable-accelerator space.  Ignored when
        an explicit ``space`` is given.
    space:
        A custom :class:`DesignSpace` (e.g. a Table VI ablation).
    scenario:
        Optional SWaP scenario; supplies environments and, when no
        objective was given, the constraint-derived objective.
    environments:
        Lighting environments to qualify in; defaults to the paper's
        brighter/darker pair (or the scenario's, when given).
    ga_config:
        Search budget knobs for the HW-level genetic algorithm.
    candidate_time_budget_s:
        Optional wall-clock budget per candidate evaluation; an
        over-budget candidate is absorbed as an ``EvaluationTimeout``
        penalty instead of stalling the search (campaign runs set this
        from their spec).
    surrogate:
        Optional :class:`~repro.explore.guided.SurrogateConfig`: route
        :meth:`generate` through the surrogate-guided explorer, which
        fully prices only the model's top slice of each GA generation
        (see docs/EXPLORATION.md).
    surrogate_model:
        Optional pre-fitted :class:`~repro.surrogate.model.
        SurrogateModel` (e.g. from ``repro surrogate fit``) to warm-
        start the guided search; implies a default ``surrogate`` config
        when none was given.
    """

    def __init__(self, network: Network,
                 objective: Optional[Objective] = None,
                 setup: str = "existing",
                 space: Optional[DesignSpace] = None,
                 scenario: Optional[Scenario] = None,
                 environments: Optional[Sequence[LightEnvironment]] = None,
                 ga_config: Optional[GAConfig] = None,
                 checkpoint: Optional[CheckpointModel] = None,
                 candidate_time_budget_s: Optional[float] = None,
                 surrogate=None, surrogate_model=None) -> None:
        self.network = network
        if space is not None:
            self.space = space
        elif setup == "existing":
            self.space = DesignSpace.existing_aut()
        elif setup == "future":
            self.space = DesignSpace.future_aut()
        else:
            raise ConfigurationError(
                f"setup must be 'existing' or 'future', got {setup!r}"
            )
        if objective is None and scenario is not None:
            objective = scenario.objective()
        if objective is None:
            objective = Objective.lat_sp()
        self.objective = objective
        if environments is None and scenario is not None:
            environments = scenario.environments
        self.environments = environments
        self.scenario = scenario
        self.ga_config = ga_config
        self.checkpoint = checkpoint
        self.candidate_time_budget_s = candidate_time_budget_s
        if surrogate is None and surrogate_model is not None:
            from repro.explore.guided import SurrogateConfig

            surrogate = SurrogateConfig()
        self.surrogate = surrogate
        self.surrogate_model = surrogate_model
        self.last_result: Optional[SearchResult] = None

    def generate(self) -> AuTSolution:
        """Run the bi-level search and package the ideal architecture."""
        options = dict(
            network=self.network,
            space=self.space,
            objective=self.objective,
            environments=self.environments,
            ga_config=self.ga_config,
            checkpoint=self.checkpoint,
            candidate_time_budget_s=self.candidate_time_budget_s,
        )
        if self.surrogate is not None:
            from repro.explore.guided import SurrogateGuidedExplorer

            explorer = SurrogateGuidedExplorer(
                surrogate=self.surrogate, model=self.surrogate_model,
                **options)
        else:
            explorer = BilevelExplorer(**options)
        result = explorer.run()
        self.last_result = result
        return AuTSolution.from_search(result, self.network,
                                       objective_label=self.objective.value_label())

    def evaluate(self, design, *, fidelity: str = "step", **options):
        """Price one explicit design under this tool's configuration.

        A thin pass-through to :func:`repro.api.evaluate` that fills in
        the tool's workload, environments (scenario-derived when one was
        given), and checkpoint model, so a design pulled out of
        :meth:`generate` or :meth:`pareto` can be re-priced — at either
        fidelity — without re-stating the setup.  Keyword ``options``
        forward unchanged (``fast_forward``, ``faults``, ``obs``, ...).
        """
        from repro.api import evaluate as _evaluate

        if self.environments is not None:
            options.setdefault("environments", self.environments)
        options.setdefault("checkpoint", self.checkpoint)
        return _evaluate(design, self.network, fidelity=fidelity, **options)

    def pareto(self):
        """The (panel area, sustained latency) Pareto front of the space.

        Runs the NSGA-II multi-objective explorer instead of the scalar
        bi-level search; returns a list of
        :class:`~repro.explore.pareto.ParetoPoint` whose payloads are
        the lowered :class:`~repro.design.AuTDesign` objects.
        """
        from repro.explore.nsga2 import ParetoExplorer

        explorer = ParetoExplorer(
            self.network, self.space,
            environments=self.environments,
            ga_config=self.ga_config,
            checkpoint=self.checkpoint,
        )
        return explorer.run()
