"""CHRYSALIS core: the usage-model API of §III-A / Table II.

:class:`~repro.core.chrysalis.Chrysalis` is the front door: give it a
DNN workload, platform constraints, an objective and (optionally) a
SWaP scenario, and it returns the ideal AuT architecture.
"""

from repro.core.chrysalis import Chrysalis
from repro.core.describer import describe_design
from repro.core.result import AuTSolution, LayerPlanRow
from repro.core.scenarios import SCENARIOS, Scenario

__all__ = [
    "AuTSolution",
    "Chrysalis",
    "LayerPlanRow",
    "SCENARIOS",
    "Scenario",
    "describe_design",
]
