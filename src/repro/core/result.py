"""The tool's output — Table II's "Output" rows made concrete.

An :class:`AuTSolution` carries the EH hardware sizing (``C``,
``A_eh``), the inference hardware sizing (``N_PE``, per-PE memory), and
the per-layer dataflow plan (``N_tile``, preferred dataflow style).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.design import AuTDesign
from repro.explore.bilevel import SearchResult
from repro.faults.report import ResilienceReport
from repro.sim.metrics import InferenceMetrics
from repro.workloads.network import Network


@dataclass(frozen=True)
class LayerPlanRow:
    """Per-layer slice of the solution (Table II: N_tile + dataflow)."""

    layer: str
    dataflow: str
    n_tiles: int
    tile_dim: str
    spatial_dim: str


@dataclass(frozen=True)
class AuTSolution:
    """The generated ideal AuT architecture."""

    design: AuTDesign
    average_metrics: InferenceMetrics
    metrics_by_env: Dict[str, InferenceMetrics]
    layer_plan: List[LayerPlanRow]
    objective_label: str
    score: float
    evaluations: int
    #: Candidate failures the search absorbed instead of crashing.
    absorbed_failures: int = 0
    #: Resilience of the winning design under fault injection, when a
    #: fault-injected run has been attached with :meth:`with_resilience`.
    resilience: Optional[ResilienceReport] = None

    # -- Table II output accessors ------------------------------------------

    @property
    def capacitor_size_f(self) -> float:
        """``C`` — capacitor size, farads."""
        return self.design.energy.capacitance_f

    @property
    def solar_panel_cm2(self) -> float:
        """``A_eh`` — solar-panel size, cm^2."""
        return self.design.energy.panel_area_cm2

    @property
    def n_pes(self) -> int:
        """``N_PE`` — processing-element count."""
        return self.design.inference.n_pes

    @property
    def vm_per_pe_bytes(self) -> int:
        """``N_mem`` — volatile memory per PE, bytes."""
        return self.design.inference.cache_bytes_per_pe

    @classmethod
    def from_search(cls, result: SearchResult, network: Network,
                    objective_label: str) -> "AuTSolution":
        plan = [
            LayerPlanRow(
                layer=layer.name,
                dataflow=mapping.style.value,
                n_tiles=mapping.effective_n_tiles(layer),
                tile_dim=mapping.tile_dim,
                spatial_dim=mapping.spatial_dim,
            )
            for layer, mapping in zip(network, result.design.mappings)
        ]
        return cls(
            design=result.design,
            average_metrics=result.average,
            metrics_by_env=result.metrics_by_env,
            layer_plan=plan,
            objective_label=objective_label,
            score=result.score,
            evaluations=result.history.evaluations,
            absorbed_failures=len(result.failures),
        )

    def with_resilience(self, report: ResilienceReport) -> "AuTSolution":
        """Copy of this solution annotated with a resilience report."""
        return replace(self, resilience=report)

    def report(self) -> str:
        """Human-readable solution report."""
        m = self.average_metrics
        lines = [
            f"objective      : {self.objective_label}",
            f"score          : {self.score:.4g}",
            f"solar panel    : {self.solar_panel_cm2:.2f} cm^2",
            f"capacitor      : {self.capacitor_size_f * 1e6:.1f} uF",
            f"inference HW   : {self.design.inference.family.value}, "
            f"{self.n_pes} PEs, {self.vm_per_pe_bytes} B/PE",
            f"avg latency    : {m.e2e_latency:.4g} s "
            f"(busy {m.busy_time:.4g} s, charge {m.charge_time:.4g} s)",
            f"avg energy     : {m.total_energy * 1e3:.4g} mJ "
            f"(ckpt {m.energy.checkpoint * 1e3:.3g} mJ, "
            f"leak {m.energy.cap_leakage * 1e3:.3g} mJ)",
            f"system eff.    : {m.system_efficiency:.3f}",
            f"HW evaluations : {self.evaluations} "
            f"({self.absorbed_failures} failure(s) absorbed)",
        ]
        if self.resilience is not None:
            r = self.resilience
            lines += [
                f"resilience     : "
                f"{'completed' if r.completed else 'did not complete'}, "
                f"fwd progress {r.forward_progress_ratio:.1%}, "
                f"re-exec {r.reexecution_overhead:.1%}, "
                f"ckpt loss {r.checkpoint_loss_rate:.1%}",
            ]
        lines += [
            "",
            f"{'layer':<16}{'dataflow':<10}{'N_tile':>8}  tile/spatial dims",
        ]
        for row in self.layer_plan:
            lines.append(
                f"{row.layer:<16}{row.dataflow:<10}{row.n_tiles:>8}  "
                f"{row.tile_dim}/{row.spatial_dim}"
            )
        return "\n".join(lines)
