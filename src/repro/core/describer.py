"""The AuT HW & SW Describer — renders a design as its component stack.

§III-C: "the AuT HW and SW Describer ... encompasses the hardware and
software aspects, capturing the intricacies of the system's
architecture."  In this reproduction the *descriptions* are the model
objects themselves; this module renders them (including the per-layer
mapping directives and their Fig. 4 loop nests) for inspection,
documentation and debugging.
"""

from __future__ import annotations

from typing import List

from repro.dataflow.loopnest import LoopNest
from repro.design import AuTDesign
from repro.workloads.network import Network


def describe_design(design: AuTDesign, network: Network,
                    loop_nests: bool = False) -> str:
    """Multi-section textual description of a candidate architecture."""
    design.validate_against(network)
    hardware = design.inference.build()
    energy = design.energy

    lines: List[str] = []
    lines.append("=== Energy subsystem describer ===")
    lines.append(f"harvester  : solar panel, {energy.panel_area_cm2:.2f} cm^2")
    lines.append(f"storage    : {energy.capacitance_f * 1e6:.1f} uF capacitor "
                 f"(k_cap={energy.k_cap:g} /s)")
    lines.append(f"controller : PMIC U_on={energy.pmic.v_on} V, "
                 f"U_off={energy.pmic.v_off} V, "
                 f"boost {energy.pmic.boost_efficiency:.0%} / "
                 f"buck {energy.pmic.buck_efficiency:.0%}")
    lines.append("")
    lines.append("=== Inference subsystem describer ===")
    lines.append(f"hardware   : {hardware.name} ({hardware.family.value})")
    lines.append(f"PE array   : {hardware.pes.n_pes} PEs x "
                 f"{hardware.pes.cache_bytes_per_pe} B cache, "
                 f"{hardware.pes.mac_energy * 1e12:.2f} pJ/MAC @ "
                 f"{hardware.pes.clock_hz / 1e6:.0f} MHz")
    lines.append(f"VM         : {hardware.vm.size_bytes} B "
                 f"{hardware.vm.technology.name}")
    lines.append(f"NVM        : {hardware.nvm.size_bytes} B "
                 f"{hardware.nvm.technology.name}")
    lines.append("")
    lines.append("=== Mapping describer ===")
    for layer, mapping in zip(network, design.mappings):
        directives = mapping.clamped(layer).to_directives(
            layer, hardware.pes.n_pes
        )
        lines.append(f"-- {layer.name} ({layer.kind.value}, "
                     f"{layer.macs:,} MACs)")
        for directive in directives:
            lines.append(f"   {directive.render()}")
        if loop_nests:
            nest = LoopNest.from_mapping(directives, layer)
            for nest_line in nest.render().splitlines():
                lines.append(f"   | {nest_line}")
    return "\n".join(lines)
