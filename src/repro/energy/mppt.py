"""Perturb-and-observe maximum-power-point tracking.

The paper's related-work section surveys MPPT algorithms [17], [19]; the
BQ25570 itself performs fractional-V_oc MPPT in hardware.  This module
implements the classic perturb & observe (P&O) hill climber so the
harvester model can report a realistic tracking efficiency rather than
assuming the panel always sits exactly at its maximum power point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.solar_panel import SolarPanel
from repro.errors import ConfigurationError


@dataclass
class PerturbObserveTracker:
    """Hill-climbing MPPT over a panel's P-V curve.

    Each call to :meth:`step` perturbs the operating voltage by
    ``step_voltage`` in the current direction; if the observed power
    decreased the direction is reversed.  At steady state the operating
    point oscillates around the MPP, which is why tracking efficiency is
    slightly below 1.
    """

    panel: SolarPanel
    step_voltage: float = 0.05
    operating_voltage: float = field(default=0.0)
    _direction: int = field(default=1, repr=False)
    _last_power: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.step_voltage <= 0:
            raise ConfigurationError(
                f"step_voltage must be positive, got {self.step_voltage}"
            )
        if self.operating_voltage == 0.0:
            # Start tracking from the fractional-V_oc heuristic the
            # BQ25570 uses (~80 % of open-circuit voltage).
            self.operating_voltage = 0.8 * self.panel.v_oc

    def step(self, k_eh: float) -> float:
        """One P&O iteration; returns the power now being extracted, W."""
        power = self.panel.power_at_voltage(k_eh, self.operating_voltage)
        if power < self._last_power:
            self._direction = -self._direction
        self._last_power = power
        next_v = self.operating_voltage + self._direction * self.step_voltage
        self.operating_voltage = min(max(next_v, 0.0), self.panel.v_oc)
        return power

    def tracking_efficiency(self, k_eh: float, iterations: int = 200) -> float:
        """Average extracted power over ``iterations`` steps, as a fraction
        of the panel's true maximum power.

        Returns 1.0 when there is no light (nothing to track).
        """
        p_max = self.panel.power(k_eh)
        if p_max == 0.0:
            return 1.0
        total = 0.0
        for _ in range(iterations):
            total = total + self.step(k_eh)
        return (total / iterations) / p_max
