"""Piecewise-constant ``k_eh(t)`` traces — time-varying harvest.

The paper evaluates under two *static* lighting presets because sunlight
is stable within one inference (§V), but its own diurnal model
(:meth:`~repro.energy.environment.LightEnvironment.k_eh_at`) points at
the real deployment question: how designs fare when the harvest varies —
across a day, under passing clouds, on an indoor lighting schedule, or
from a non-solar trickle source.  A :class:`TraceEnvironment` is the
common representation: a periodic sequence of constant-``k_eh`` segments
that is

* **duck-compatible** with :class:`~repro.energy.environment.
  LightEnvironment` where it matters (``.name`` and a representative
  scalar ``.k_eh`` — the only attributes the analytical model, the MPPT
  tracker and the surrogate featurizer consume), and
* **piecewise-constant by construction**, which is what lets the step
  simulator's cycle-skipping fast path run *within* each segment
  instead of falling back to exact stepping (see
  :meth:`TraceEnvironment.next_change_after` and ``sim/engine.py``).

Traces are content-hashable and JSON-round-trippable, so campaign run
keys and serve request keys can name them durably.  The generator
helpers at the bottom build the four families the registry
(:mod:`repro.environments`) exposes: diurnal clear-sky (via the
existing Haurwitz model), cloud-stochastic attenuation, indoor on/off
lighting schedules, and a constant non-solar trickle.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.energy.environment import LightEnvironment
from repro.energy.solar_panel import SolarPanel
from repro.errors import ConfigurationError

#: One civil day in seconds — the canonical trace period of the solar
#: and schedule generators.
DAY_S = 24.0 * 3600.0


@dataclass(frozen=True)
class TraceSegment:
    """One constant-harvest stretch of a trace."""

    duration_s: float
    k_eh: float  # W/cm^2 of panel area, same convention as LightEnvironment

    def __post_init__(self) -> None:
        if not self.duration_s > 0.0:
            raise ConfigurationError(
                f"segment duration must be positive, got {self.duration_s}")
        if self.k_eh < 0.0:
            raise ConfigurationError(
                f"segment k_eh must be non-negative, got {self.k_eh}")


@dataclass(frozen=True)
class TraceEnvironment:
    """A periodic piecewise-constant ``k_eh(t)`` profile.

    ``k_eh_at_s`` is right-continuous: at a segment boundary the *new*
    segment's coefficient applies, and the trace wraps at
    :attr:`period_s`.  The scalar :attr:`k_eh` property reports the
    time-weighted mean over one period so that every consumer of the
    paper's per-inference-constant coefficient (analytical model, MPPT,
    featurizer) keeps working unchanged on a trace.
    """

    name: str
    segments: Tuple[TraceSegment, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace environment needs a name")
        if not self.segments:
            raise ConfigurationError(
                f"trace {self.name!r} needs at least one segment")
        object.__setattr__(self, "segments", tuple(self.segments))
        starts: List[float] = [0.0]
        for segment in self.segments[:-1]:
            starts.append(starts[-1] + segment.duration_s)
        period = starts[-1] + self.segments[-1].duration_s
        mean = sum(s.k_eh * s.duration_s for s in self.segments) / period
        # Derived lookup tables; not dataclass fields, so equality and
        # hashing stay defined by (name, segments) alone.
        object.__setattr__(self, "_starts", tuple(starts))
        object.__setattr__(self, "_period", period)
        object.__setattr__(self, "_k_mean", mean)

    # -- LightEnvironment-compatible surface ---------------------------------

    @property
    def k_eh(self) -> float:
        """Representative (time-weighted mean) coefficient, W/cm^2."""
        return self._k_mean

    @property
    def period_s(self) -> float:
        return self._period

    # -- time lookup ---------------------------------------------------------

    def _locate(self, t: float) -> Tuple[int, int]:
        """(whole periods elapsed, local segment index) at time ``t``."""
        t = max(t, 0.0)
        cycles = int(t // self._period)
        local = t - cycles * self._period
        if local >= self._period:  # floating-point guard at the wrap
            cycles += 1
            local -= self._period
        index = bisect.bisect_right(self._starts, max(local, 0.0)) - 1
        return cycles, index

    def k_eh_at_s(self, t: float) -> float:
        """Coefficient at ``t`` seconds (right-continuous, periodic)."""
        _, index = self._locate(t)
        return self.segments[index].k_eh

    def segment_index(self, t: float) -> int:
        """Globally monotonic segment counter at ``t`` (never wraps)."""
        cycles, index = self._locate(t)
        return cycles * len(self.segments) + index

    def next_change_after(self, t: float) -> float:
        """Absolute time of the next segment boundary strictly after ``t``.

        ``math.inf`` for a single-segment (constant) trace.  The value
        is strictly increasing across boundaries, which is what the
        fast path's segment matching relies on.
        """
        n = len(self.segments)
        if n == 1:
            return math.inf
        t = max(t, 0.0)
        cycles, index = self._locate(t)
        counter = cycles * n + index
        while True:
            counter += 1
            c, i = divmod(counter, n)
            boundary = c * self._period + self._starts[i]
            if boundary > t:
                return boundary

    # -- content identity ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "segments": [[s.duration_s, s.k_eh] for s in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEnvironment":
        try:
            name = data["name"]
            raw = data["segments"]
        except KeyError as missing:
            raise ConfigurationError(
                f"trace record is missing field {missing}") from None
        segments = tuple(TraceSegment(float(d), float(k)) for d, k in raw)
        return cls(name=str(name), segments=segments)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TraceEnvironment":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid trace JSON: {error}") from None
        return cls.from_dict(data)

    @property
    def content_hash(self) -> str:
        """Deterministic 16-hex-digit hash of the trace content."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceHarvester:
    """Solar panel driven by a :class:`TraceEnvironment`.

    The piecewise-constant counterpart of
    :class:`~repro.energy.harvester.SolarHarvester`: output power is
    constant within each trace segment, and :meth:`next_change_after`
    tells the engine and the charge fast-forward exactly how long the
    current constant stretch lasts.
    """

    panel: SolarPanel
    trace: TraceEnvironment
    mppt_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.mppt_efficiency <= 1.0:
            raise ConfigurationError(
                f"mppt_efficiency must be in (0, 1], got {self.mppt_efficiency}"
            )

    @property
    def footprint_cm2(self) -> float:
        return self.panel.area_cm2

    @property
    def constant_power(self) -> bool:
        # A one-segment trace degenerates to a constant harvester.
        return len(self.trace.segments) == 1

    def power_at(self, t: float) -> float:
        return self.panel.power(self.trace.k_eh_at_s(t)) * self.mppt_efficiency

    def next_change_after(self, t: float) -> float:
        return self.trace.next_change_after(t)


# ---------------------------------------------------------------------------
# trace generators
# ---------------------------------------------------------------------------


def _merged(segments: List[TraceSegment]) -> Tuple[TraceSegment, ...]:
    """Coalesce equal-coefficient neighbours (e.g. the night hours)."""
    merged: List[TraceSegment] = []
    for segment in segments:
        if merged and merged[-1].k_eh == segment.k_eh:
            merged[-1] = TraceSegment(
                merged[-1].duration_s + segment.duration_s, segment.k_eh)
        else:
            merged.append(segment)
    return tuple(merged)


def _day_steps(step_s: float) -> int:
    if step_s <= 0.0:
        raise ConfigurationError(f"step_s must be positive, got {step_s}")
    steps = round(DAY_S / step_s)
    if steps < 1 or abs(steps * step_s - DAY_S) > 1e-6:
        raise ConfigurationError(
            f"step_s must divide 24 h evenly, got {step_s}")
    return steps


def diurnal_trace(base: LightEnvironment, step_s: float = 3600.0,
                  name: Optional[str] = None) -> TraceEnvironment:
    """Clear-sky diurnal profile sampled from the Haurwitz model.

    Samples ``base.k_eh_at`` at each step's midpoint over one 24 h day,
    giving a piecewise-constant staircase of the existing diurnal curve
    (night segments merge into one zero-harvest stretch per edge).
    """
    steps = _day_steps(step_s)
    segments = [
        TraceSegment(step_s, base.k_eh_at((i + 0.5) * step_s / 3600.0))
        for i in range(steps)
    ]
    return TraceEnvironment(name=name or f"diurnal-{base.name}",
                            segments=_merged(segments))


def cloud_trace(base: LightEnvironment, sigma: float = 0.4,
                floor: float = 0.05, seed: int = 0, step_s: float = 600.0,
                name: Optional[str] = None) -> TraceEnvironment:
    """Diurnal profile under seeded stochastic cloud attenuation.

    Each segment's clear-sky coefficient is multiplied by a log-normal
    draw with median 1 clipped to ``[floor, 1]`` — the same shading
    model as :class:`~repro.energy.harvester.FluctuatingHarvester`, but
    frozen into the trace so the result is content-hashable and
    bit-reproducible across processes.
    """
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if not 0.0 < floor <= 1.0:
        raise ConfigurationError(f"floor must be in (0, 1], got {floor}")
    steps = _day_steps(step_s)
    rng = random.Random(seed)
    segments = []
    for i in range(steps):
        clear = base.k_eh_at((i + 0.5) * step_s / 3600.0)
        attenuation = (1.0 if sigma == 0.0 else
                       min(1.0, max(floor, rng.lognormvariate(0.0, sigma))))
        segments.append(TraceSegment(step_s, clear * attenuation))
    return TraceEnvironment(name=name or f"cloudy-{base.name}-{seed}",
                            segments=_merged(segments))


def schedule_trace(k_on: float, k_off: float = 0.0, on_hour: float = 8.0,
                   off_hour: float = 18.0,
                   name: str = "indoor-schedule") -> TraceEnvironment:
    """Indoor on/off lighting schedule: lights on between two hours."""
    if not 0.0 <= on_hour < off_hour <= 24.0:
        raise ConfigurationError(
            f"need 0 <= on_hour < off_hour <= 24, "
            f"got on={on_hour}, off={off_hour}")
    segments: List[TraceSegment] = []
    if on_hour > 0.0:
        segments.append(TraceSegment(on_hour * 3600.0, k_off))
    segments.append(TraceSegment((off_hour - on_hour) * 3600.0, k_on))
    if off_hour < 24.0:
        segments.append(TraceSegment((24.0 - off_hour) * 3600.0, k_off))
    return TraceEnvironment(name=name, segments=_merged(segments))


def trickle_trace(k_eh: float, name: str = "trickle") -> TraceEnvironment:
    """Constant non-solar trickle (TEG/RF-style) as a one-segment trace."""
    return TraceEnvironment(name=name,
                            segments=(TraceSegment(DAY_S, k_eh),))
