"""Energy-storage capacitor with the paper's leakage model.

Physics implemented here:

* stored energy ``E = 1/2 C V^2``;
* leakage current ``I_R = k_cap * C * U`` (Eq. 2), hence leakage power
  ``P_leak = k_cap * C * U^2``;
* usable energy of one discharge cycle
  ``E_cycle = 1/2 C (U_on^2 - U_off^2)`` — the first term of Eq. 3.

Charging under constant input power with voltage-dependent leakage obeys
``C·U·dU/dt = P_in − k_cap·C·U²``.  Substituting ``y = U²`` yields a
linear ODE with the closed-form solution used by
:meth:`Capacitor.time_to_reach`, which lets the simulator fast-forward
through charging phases instead of stepping them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default leakage coefficient, 1/s.  Follows the aluminium-electrolytic
#: rule of thumb I_leak ~ 0.01 * C * V: a 10 mF device at 3 V leaks
#: ~300 uA (~0.9 mW) — enough to starve a small panel, which is exactly
#: the large-capacitor unavailability Fig. 2(b) of the paper shows —
#: while a 100 uF device leaks only ~3 uA.
DEFAULT_K_CAP = 1.0e-2


@dataclass
class Capacitor:
    """A capacitor with state (its voltage) and leakage.

    Parameters
    ----------
    capacitance:
        Farads.  The paper's design space spans 1 uF - 10 mF.
    rated_voltage:
        Maximum voltage the device tolerates; charging clamps here.
    k_cap:
        Leakage coefficient of Eq. 2, 1/s.
    voltage:
        Initial voltage, volts.
    """

    capacitance: float
    rated_voltage: float = 5.0
    k_cap: float = DEFAULT_K_CAP
    voltage: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ConfigurationError(
                f"capacitance must be positive, got {self.capacitance}"
            )
        if self.rated_voltage <= 0:
            raise ConfigurationError(
                f"rated voltage must be positive, got {self.rated_voltage}"
            )
        if self.k_cap < 0:
            raise ConfigurationError(f"k_cap must be non-negative, got {self.k_cap}")
        if not 0 <= self.voltage <= self.rated_voltage:
            raise ConfigurationError(
                f"initial voltage {self.voltage} outside [0, {self.rated_voltage}]"
            )

    # -- static properties ---------------------------------------------------

    def stored_energy(self) -> float:
        """Energy currently stored, J."""
        return 0.5 * self.capacitance * self.voltage**2

    def energy_between(self, v_high: float, v_low: float) -> float:
        """Usable energy of a discharge from ``v_high`` down to ``v_low``, J.

        This is the ``1/2 C (U_on^2 - U_off^2)`` term of Eq. 3.
        """
        if v_low > v_high:
            raise ConfigurationError(f"v_low={v_low} exceeds v_high={v_high}")
        return 0.5 * self.capacitance * (v_high**2 - v_low**2)

    def leakage_current(self, voltage: float | None = None) -> float:
        """Leakage current at the given (default: current) voltage, A (Eq. 2)."""
        u = self.voltage if voltage is None else voltage
        return self.k_cap * self.capacitance * u

    def leakage_power(self, voltage: float | None = None) -> float:
        """Power lost to leakage at the given (default: current) voltage, W."""
        u = self.voltage if voltage is None else voltage
        return self.leakage_current(u) * u

    def equilibrium_voltage(self, input_power: float) -> float:
        """Voltage at which leakage exactly consumes ``input_power``, V.

        With no load, charging asymptotically approaches this voltage
        (or the rated voltage, whichever is lower).
        """
        if input_power <= 0:
            return 0.0
        if self.k_cap == 0:
            return self.rated_voltage
        return math.sqrt(input_power / (self.k_cap * self.capacitance))

    # -- dynamics --------------------------------------------------------------

    def step(self, net_input_power: float, dt: float) -> float:
        """Advance the capacitor by ``dt`` seconds under external power.

        ``net_input_power`` is harvested power minus load power, W; the
        leakage of Eq. 2 is applied internally on top of it.  Voltage is
        clamped to [0, rated_voltage].  Returns the new voltage.
        """
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        if dt == 0:
            return self.voltage
        # Exact integration of C·U·dU/dt = P - a·U² with y = U², written
        # with expm1 so that the a -> 0 limit degrades gracefully to the
        # ideal-capacitor linear law instead of overflowing in P/a.
        a = self.k_cap * self.capacitance
        y0 = self.voltage**2
        x = 2.0 * a * dt / self.capacitance if a > 0 else 0.0
        if x > 1e-12:
            decay = -math.expm1(-x)  # 1 - e^-x, ~x for tiny x
            y = y0 * math.exp(-x) + net_input_power * decay / a
        else:
            # Leakage negligible over this step: ideal-capacitor law
            # (also avoids denormal noise when k_cap is pathologically
            # tiny).
            y = y0 + 2.0 * net_input_power * dt / self.capacitance
        y = min(max(y, 0.0), self.rated_voltage**2)
        self.voltage = math.sqrt(y)
        return self.voltage

    def draw_energy(self, energy: float) -> bool:
        """Instantaneously remove ``energy`` joules if available.

        Returns ``True`` on success; leaves the state unchanged and
        returns ``False`` if the capacitor does not hold that much.
        """
        if energy < 0:
            raise ConfigurationError(f"energy must be non-negative, got {energy}")
        stored = self.stored_energy()
        if energy > stored:
            return False
        self.voltage = math.sqrt(2.0 * (stored - energy) / self.capacitance)
        return True

    def time_to_reach(self, target_voltage: float, input_power: float) -> float:
        """Seconds of charging needed to reach ``target_voltage``.

        Uses the closed-form solution of the charging ODE.  Returns
        ``math.inf`` when the target exceeds the equilibrium voltage (the
        panel can never out-run leakage) and 0 when already there.
        """
        if target_voltage <= self.voltage:
            return 0.0
        if target_voltage > self.rated_voltage:
            return math.inf
        return self.time_until(target_voltage, input_power)

    def time_until(self, target_voltage: float,
                   net_input_power: float) -> float:
        """Seconds until the voltage crosses ``target_voltage`` under a
        constant net input power (charging *or* discharging).

        Returns 0 when already there and ``math.inf`` when the target is
        never reached (the trajectory converges to its equilibrium on
        the wrong side, or moves away from the target).
        """
        a = self.k_cap * self.capacitance
        y0 = self.voltage**2
        y1 = target_voltage**2
        if y1 == y0:
            return 0.0
        negligible_leak = (
            a == 0
            or a * self.rated_voltage**2 < abs(net_input_power) * 1e-9
        )
        if negligible_leak:
            if net_input_power == 0.0:
                return math.inf
            t = self.capacitance * (y1 - y0) / (2.0 * net_input_power)
            return t if t >= 0.0 else math.inf
        y_inf = net_input_power / a
        numerator = y1 - y_inf
        denominator = y0 - y_inf
        if denominator == 0.0:
            return math.inf  # sitting at equilibrium, never moving
        ratio = numerator / denominator
        # The trajectory is y_inf + (y0 - y_inf) e^{-x}: it reaches y1
        # only if y1 lies strictly between y0 and y_inf.
        if ratio <= 0.0 or ratio > 1.0:
            return math.inf
        return -(self.capacitance / (2.0 * a)) * math.log(ratio)
