"""Harvester interface and implementations.

The paper stresses that CHRYSALIS is interface-oriented so that "other
energy harvesters" can be substituted for the default solar panel.
:class:`Harvester` is that interface: anything that can report its
instantaneous output power and its physical footprint.  Three concrete
implementations are provided:

* :class:`SolarHarvester` — the paper's default (panel + environment,
  optionally de-rated by an MPPT tracking efficiency);
* :class:`ThermalHarvester` — a thermoelectric generator, the kind used
  by the volcano-monitoring motivation in the paper's introduction;
* :class:`RFHarvester` — WISP-style radio-frequency harvesting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.energy.environment import LightEnvironment
from repro.energy.mppt import PerturbObserveTracker
from repro.energy.solar_panel import SolarPanel
from repro.errors import ConfigurationError


@runtime_checkable
class Harvester(Protocol):
    """Anything that harvests ambient energy.

    ``power_at(t)`` reports the electrical output power (W) at simulation
    time ``t`` seconds; ``footprint_cm2`` is the physical size used for
    SWaP accounting.
    """

    footprint_cm2: float

    def power_at(self, t: float) -> float:
        """Electrical output power at time ``t``, W."""
        ...

    @property
    def constant_power(self) -> bool:
        """True when ``power_at`` does not depend on ``t``.

        The step simulator's cycle-skipping fast path requires a
        time-invariant harvest; harvesters that cannot guarantee it
        (or that omit the property) are conservatively treated as
        variable and simulated step by step.
        """
        ...


@dataclass(frozen=True)
class SolarHarvester:
    """Solar panel in a light environment — the paper's Eq. 1 source.

    The environment's ``k_eh`` is treated as constant during one
    inference (the paper's assumption); pass ``diurnal=True`` to follow
    the full day profile instead, with ``t`` interpreted as seconds from
    midnight.
    """

    panel: SolarPanel
    environment: LightEnvironment
    mppt_efficiency: float = 1.0
    diurnal: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.mppt_efficiency <= 1.0:
            raise ConfigurationError(
                f"mppt_efficiency must be in (0, 1], got {self.mppt_efficiency}"
            )

    @property
    def footprint_cm2(self) -> float:
        return self.panel.area_cm2

    @property
    def constant_power(self) -> bool:
        return not self.diurnal

    def power_at(self, t: float) -> float:
        if self.diurnal:
            hour = (t / 3600.0) % 24.0
            k_eh = self.environment.k_eh_at(hour)
        else:
            k_eh = self.environment.k_eh
        return self.panel.power(k_eh) * self.mppt_efficiency

    @classmethod
    def with_tracked_mppt(
        cls, panel: SolarPanel, environment: LightEnvironment
    ) -> "SolarHarvester":
        """Build a harvester whose MPPT efficiency comes from running the
        perturb-and-observe tracker on this panel's actual P-V curve."""
        tracker = PerturbObserveTracker(panel)
        efficiency = tracker.tracking_efficiency(environment.k_eh)
        return cls(panel, environment, mppt_efficiency=efficiency)


@dataclass(frozen=True)
class ThermalHarvester:
    """Thermoelectric generator across a temperature gradient.

    Output follows the standard TEG quadratic: ``P = k * dT^2`` per cm^2
    of module, with ``k`` the Seebeck figure folded into one coefficient.
    """

    area_cm2: float
    delta_t_kelvin: float
    k_teg_w_per_cm2_k2: float = 2.5e-6

    def __post_init__(self) -> None:
        if self.area_cm2 <= 0:
            raise ConfigurationError(f"area must be positive, got {self.area_cm2}")
        if self.delta_t_kelvin < 0:
            raise ConfigurationError(
                f"temperature delta must be non-negative, got {self.delta_t_kelvin}"
            )

    @property
    def footprint_cm2(self) -> float:
        return self.area_cm2

    @property
    def constant_power(self) -> bool:
        return True

    def power_at(self, t: float) -> float:
        return self.area_cm2 * self.k_teg_w_per_cm2_k2 * self.delta_t_kelvin**2


@dataclass(frozen=True)
class CompositeHarvester:
    """Several harvesters feeding one storage node.

    The paper's extension point "additional energy harvesting devices":
    e.g. a solar panel plus a thermoelectric module on a volcano
    station.  Powers add; footprints add.
    """

    harvesters: tuple

    def __post_init__(self) -> None:
        if not self.harvesters:
            raise ConfigurationError("CompositeHarvester needs at least one")

    @property
    def footprint_cm2(self) -> float:
        return sum(h.footprint_cm2 for h in self.harvesters)

    @property
    def constant_power(self) -> bool:
        return all(getattr(h, "constant_power", False)
                   for h in self.harvesters)

    def power_at(self, t: float) -> float:
        return sum(h.power_at(t) for h in self.harvesters)


@dataclass(frozen=True)
class FluctuatingHarvester:
    """A harvester under stochastic shading (passing clouds, foliage).

    Realises the paper's "variable source during inference" extension:
    the base harvester's output is modulated by a piecewise-constant
    random attenuation that redraws every ``correlation_time_s`` seconds
    (deterministic in ``seed``, so simulations are repeatable).  The
    attenuation is log-normal with median 1, clipped to [floor, 1]:
    shading can only remove power.
    """

    base: "Harvester"
    sigma: float = 0.4
    correlation_time_s: float = 30.0
    floor: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")
        if self.correlation_time_s <= 0:
            raise ConfigurationError("correlation_time_s must be positive")
        if not 0 < self.floor <= 1:
            raise ConfigurationError(f"floor must be in (0, 1], got {self.floor}")

    @property
    def footprint_cm2(self) -> float:
        return self.base.footprint_cm2

    @property
    def constant_power(self) -> bool:
        # sigma == 0 degenerates to the (possibly constant) base.
        return (self.sigma == 0.0
                and getattr(self.base, "constant_power", False))

    def attenuation_at(self, t: float) -> float:
        if self.sigma == 0.0:
            return 1.0
        bucket = int(t / self.correlation_time_s)
        rng = random.Random(self.seed * 1_000_003 + bucket)
        draw = rng.lognormvariate(0.0, self.sigma)
        return min(1.0, max(self.floor, draw))

    def power_at(self, t: float) -> float:
        return self.base.power_at(t) * self.attenuation_at(t)


@dataclass(frozen=True)
class RFHarvester:
    """WISP-style RF harvesting from a reader at a given distance.

    Friis free-space path loss: received power falls with the square of
    distance.  Defaults model a 30 dBm (1 W) UHF RFID reader and a 2 dBi
    tag antenna with 50 % rectifier efficiency.
    """

    distance_m: float
    tx_power_w: float = 1.0
    wavelength_m: float = 0.327  # 915 MHz
    antenna_gain: float = 1.58  # 2 dBi
    rectifier_efficiency: float = 0.5
    footprint_cm2: float = 4.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ConfigurationError(
                f"distance must be positive, got {self.distance_m}"
            )

    @property
    def constant_power(self) -> bool:
        return True

    def power_at(self, t: float) -> float:
        path_gain = (self.wavelength_m / (4.0 * math.pi * self.distance_m)) ** 2
        received = self.tx_power_w * self.antenna_gain**2 * path_gain
        return received * self.rectifier_efficiency
