"""Solar panel model — Eq. 1 of the paper plus a lightweight P-V curve.

The paper reduces the panel to ``P_eh = A_eh * k_eh`` where ``A_eh`` is
the panel area (cm^2) and ``k_eh`` the environment coefficient (W/cm^2).
:meth:`SolarPanel.power` implements exactly that.

For the MPPT experiments we additionally expose a concave power-voltage
curve: a real panel only delivers its maximum power when operated at the
maximum-power-point voltage ``V_mpp``; off-MPP operation wastes part of
the available power.  The shape used here is the standard single-diode
qualitative behaviour (power rises roughly linearly with voltage, then
collapses near the open-circuit voltage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SolarPanel:
    """A photovoltaic panel of a given area.

    Parameters
    ----------
    area_cm2:
        Panel area in cm^2.  The paper's design space spans 1-30 cm^2.
    v_mpp:
        Maximum-power-point voltage of the panel, volts.
    v_oc:
        Open-circuit voltage, volts.  Must exceed ``v_mpp``.
    """

    area_cm2: float
    v_mpp: float = 2.0
    v_oc: float = 2.5

    def __post_init__(self) -> None:
        if self.area_cm2 <= 0:
            raise ConfigurationError(f"panel area must be positive, got {self.area_cm2}")
        if not 0 < self.v_mpp < self.v_oc:
            raise ConfigurationError(
                f"need 0 < v_mpp < v_oc, got v_mpp={self.v_mpp}, v_oc={self.v_oc}"
            )

    def power(self, k_eh: float) -> float:
        """Maximum harvestable power under light coefficient ``k_eh`` (Eq. 1), W."""
        if k_eh < 0:
            raise ConfigurationError(f"k_eh must be non-negative, got {k_eh}")
        return self.area_cm2 * k_eh

    def power_at_voltage(self, k_eh: float, v_operating: float) -> float:
        """Power delivered when operated at ``v_operating``, W.

        The curve peaks at ``v_mpp`` with value ``power(k_eh)`` and falls
        to zero at 0 V and at ``v_oc``.  Between 0 and ``v_mpp`` the rise
        follows a saturating exponential (current-source region); above
        ``v_mpp`` the fall is quadratic to zero at ``v_oc`` (diode
        region).
        """
        p_max = self.power(k_eh)
        if v_operating <= 0.0 or v_operating >= self.v_oc:
            return 0.0
        if v_operating <= self.v_mpp:
            # Current-source region: I is nearly constant, P ~ V, with a
            # gentle saturation so the curve is smooth at the MPP.
            x = v_operating / self.v_mpp
            return p_max * (1.0 - math.exp(-4.0 * x)) / (1.0 - math.exp(-4.0))
        # Diode region: power collapses towards V_oc.
        x = (self.v_oc - v_operating) / (self.v_oc - self.v_mpp)
        return p_max * (2.0 * x - x * x)
