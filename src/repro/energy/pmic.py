"""Power-management IC model, based on the TI BQ25570 the paper uses.

The BQ25570 combines a boost charger (panel → storage), a buck regulator
(storage → load) and a programmable "VBAT_OK" hysteresis comparator that
implements the intermittent-computing on/off thresholds (the paper's
``U_on``/``U_off``).  We model:

* boost charging efficiency (harvest path);
* buck regulation efficiency (load path);
* the hysteresis comparator with cold-start behaviour;
* quiescent consumption of the IC itself.

Datasheet-flavoured defaults: ~85 % boost, ~90 % buck, 488 nA quiescent,
cold start from 600 mV, VBAT_OK window programmable (default 3.0 V on,
2.2 V off — representative of published intermittent-computing setups).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerManagementIC:
    """A BQ25570-like energy-harvesting PMIC.

    Parameters
    ----------
    v_on:
        Storage voltage at which the load rail is enabled (``U_on``).
    v_off:
        Storage voltage at which the load rail is cut (``U_off``).
    boost_efficiency:
        Fraction of harvested power that reaches the capacitor.
    buck_efficiency:
        Fraction of capacitor power that reaches the load.
    quiescent_power:
        Static draw of the IC itself, W.
    v_cold_start:
        Minimum panel voltage for the charger to start from a fully
        depleted capacitor.
    """

    v_on: float = 3.0
    v_off: float = 2.2
    boost_efficiency: float = 0.85
    buck_efficiency: float = 0.90
    quiescent_power: float = 1.5e-6
    v_cold_start: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.v_off < self.v_on:
            raise ConfigurationError(
                f"need 0 < v_off < v_on, got v_off={self.v_off}, v_on={self.v_on}"
            )
        for name in ("boost_efficiency", "buck_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if self.quiescent_power < 0:
            raise ConfigurationError(
                f"quiescent_power must be non-negative, got {self.quiescent_power}"
            )

    # -- power paths -----------------------------------------------------------

    def charge_power(self, harvested_power: float) -> float:
        """Power delivered into the capacitor for a given harvest, W."""
        if harvested_power < 0:
            raise ConfigurationError(
                f"harvested_power must be non-negative, got {harvested_power}"
            )
        return max(harvested_power * self.boost_efficiency - self.quiescent_power, 0.0)

    def drain_power(self, load_power: float) -> float:
        """Power drawn from the capacitor to serve ``load_power`` at the rail, W."""
        if load_power < 0:
            raise ConfigurationError(
                f"load_power must be non-negative, got {load_power}"
            )
        return load_power / self.buck_efficiency

    def usable_cycle_energy(self, capacitance: float) -> float:
        """Load-side energy of one full U_on → U_off discharge, J.

        ``1/2 C (U_on² − U_off²)`` reduced by the buck efficiency.
        """
        raw = 0.5 * capacitance * (self.v_on**2 - self.v_off**2)
        return raw * self.buck_efficiency

    # -- comparator --------------------------------------------------------------

    def rail_enabled(self, storage_voltage: float, currently_on: bool) -> bool:
        """Hysteresis comparator: should the load rail be on?

        When off, the rail turns on only once the storage voltage reaches
        ``v_on``; when on, it stays on until the voltage drops below
        ``v_off``.
        """
        if currently_on:
            return storage_voltage >= self.v_off
        return storage_voltage >= self.v_on
