"""Energy controller — the intermittent-power state machine.

The paper's energy subsystem describer includes "an energy controller
responsible for implementing the logic of the energy subsystem ...
[which] emulates the intermittent computing power logic and communicates
with the inference subsystem describer."  This module is that component.

The controller owns a harvester, a capacitor and a PMIC, and exposes:

* :meth:`EnergyController.step` — advance by ``dt`` while the load draws
  ``load_power``; reports whether the rail stayed up;
* :meth:`EnergyController.fast_forward_to_on` — analytically skip a
  charging phase (the step simulator uses this so that searches remain
  fast without losing the step-based semantics during computation);
* cumulative accounting of harvested / delivered / leaked energy, and
  the number of power cycles — the quantities Figs. 8, 9 and 11 plot.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.energy.capacitor import Capacitor
from repro.energy.harvester import Harvester
from repro.energy.pmic import PowerManagementIC
from repro.errors import ConfigurationError
from repro.obs.state import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.injector import FaultInjector


class PowerState(enum.Enum):
    """Rail state of the intermittent system."""

    OFF = "off"  # charging; load rail disabled
    ON = "on"  # load rail enabled; computation may proceed


@dataclass
class EnergyAccounting:
    """Cumulative energy bookkeeping, all in joules."""

    harvested: float = 0.0  # electrical energy out of the harvester
    stored: float = 0.0  # energy that actually entered the capacitor
    delivered: float = 0.0  # load-side energy consumed by computation
    leaked: float = 0.0  # lost to capacitor leakage
    conversion_loss: float = 0.0  # lost in the PMIC's converters
    curtailed: float = 0.0  # harvest discarded at the rated-voltage clamp
    power_cycles: int = 0  # number of OFF -> ON transitions


@dataclass
class EnergyController:
    """State machine tying harvester, capacitor and PMIC together."""

    harvester: Harvester
    capacitor: Capacitor
    pmic: PowerManagementIC = field(default_factory=PowerManagementIC)
    time: float = 0.0
    state: PowerState = PowerState.OFF
    accounting: EnergyAccounting = field(default_factory=EnergyAccounting)
    #: Optional fault-injection hook; ``None`` (the default) keeps the
    #: nominal path untouched, and an injector with all rates zero is
    #: numerically identical to it.
    faults: Optional["FaultInjector"] = None

    def __post_init__(self) -> None:
        if self.pmic.v_on > self.capacitor.rated_voltage:
            raise ConfigurationError(
                f"PMIC v_on={self.pmic.v_on} exceeds capacitor rating "
                f"{self.capacitor.rated_voltage}"
            )
        # Pristine leakage coefficient — the drift fault ages it as a
        # function of absolute time, so the baseline must be pinned.
        self._base_k_cap = self.capacitor.k_cap
        self._sync_state()

    # -- observers ---------------------------------------------------------------

    @property
    def voltage(self) -> float:
        """Current storage voltage, V."""
        return self.capacitor.voltage

    def rail_on(self) -> bool:
        return self.state is PowerState.ON

    def available_cycle_energy(self) -> float:
        """Load-side energy remaining before the rail cuts off, J.

        From the current voltage down to ``U_off``, through the buck.
        Zero when the rail is off.
        """
        if not self.rail_on():
            return 0.0
        raw = self.capacitor.energy_between(self.voltage, self.pmic.v_off)
        return raw * self.pmic.buck_efficiency

    # -- dynamics -----------------------------------------------------------------

    def step(self, dt: float, load_power: float = 0.0) -> PowerState:
        """Advance the subsystem by ``dt`` seconds.

        ``load_power`` is the rail-side power the inference subsystem is
        drawing; it is only honoured while the rail is on (an off rail
        delivers nothing).  Returns the state *after* the step.
        """
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        if load_power < 0:
            raise ConfigurationError(
                f"load_power must be non-negative, got {load_power}"
            )
        capacitor, pmic, faults = self.capacitor, self.pmic, self.faults
        if OBS.enabled:
            OBS.registry.counter("energy.controller.steps").inc()
        while True:
            harvested_power = self.harvester.power_at(self.time)
            if faults is not None:
                capacitor.k_cap = faults.k_cap_at(self.time, self._base_k_cap)
                harvested_power *= faults.harvest_factor(self.time)
            charge_power = pmic.charge_power(harvested_power)
            if self.rail_on() and load_power > 0:
                drain_power = pmic.drain_power(load_power)
                if faults is not None:
                    drain_power *= faults.esr_factor(
                        self.accounting.power_cycles)
            else:
                load_power = 0.0
                drain_power = 0.0

            # If the load will drag the storage down to U_off before the
            # step ends, split the step at the crossing: the rail (and
            # the load) cut exactly there, and the remainder charges
            # load-free in the next pass of this loop.
            if drain_power > charge_power:
                t_off = capacitor.time_until(pmic.v_off,
                                             charge_power - drain_power)
                if t_off < dt:
                    self._advance(t_off, harvested_power, charge_power,
                                  drain_power, load_power)
                    self.state = PowerState.OFF
                    dt -= t_off
                    load_power = 0.0
                    if OBS.enabled:
                        OBS.registry.counter(
                            "energy.controller.off_splits").inc()
                    continue

            self._advance(dt, harvested_power, charge_power, drain_power,
                          load_power)
            self._transition(v_before=self.voltage)
            return self.state

    def _advance(self, dt: float, harvested_power: float,
                 charge_power: float, drain_power: float,
                 load_power: float) -> None:
        """Integrate the capacitor and update the energy accounting.

        This is the hottest function of the step simulator, so the
        capacitor/accounting attribute chains are resolved once and the
        leakage power (``k_cap * C * U * U``, Eqs. 2) is inlined instead
        of paying two method calls per step.  The arithmetic matches
        ``Capacitor.leakage_power`` operation for operation, so results
        stay bit-identical.
        """
        capacitor = self.capacitor
        acct = self.accounting
        half_c = 0.5 * capacitor.capacitance
        leak_coeff = capacitor.k_cap * capacitor.capacitance
        u = capacitor.voltage
        energy_before = half_c * u**2
        leak_before = leak_coeff * u * u
        capacitor.step(charge_power - drain_power, dt)
        u = capacitor.voltage
        leak_after = leak_coeff * u * u
        energy_after = half_c * u**2

        leak_energy = 0.5 * (leak_before + leak_after) * dt
        # Anything the charger pushed that neither ended up stored, nor
        # served the load, nor leaked, was curtailed at the voltage clamp.
        curtailed = ((charge_power - drain_power) * dt - leak_energy
                     - (energy_after - energy_before))

        self.time += dt
        acct.harvested += harvested_power * dt
        acct.stored += charge_power * dt
        acct.delivered += load_power * dt
        acct.leaked += leak_energy
        acct.curtailed += max(curtailed, 0.0)
        acct.conversion_loss += (
            (harvested_power - charge_power) + (drain_power - load_power)
        ) * dt

    def fast_forward_to_on(self, max_wait: float = math.inf) -> float:
        """Charge with no load until the rail turns on; returns elapsed s.

        Uses the capacitor's closed-form charging solution, so the cost
        is O(1) regardless of how long the charge takes.  If the
        harvester cannot reach ``v_on`` within ``max_wait`` (for example
        leakage outpaces the panel) the method returns ``math.inf`` and
        leaves the state untouched so the caller can flag the design as
        infeasible.
        """
        if self.rail_on():
            return 0.0
        if OBS.enabled:
            OBS.registry.counter("energy.controller.charge_fastforwards").inc()
        if self.faults is not None and self.faults.perturbs_charging:
            return self._fast_forward_windowed(max_wait)
        next_change = getattr(self.harvester, "next_change_after", None)
        if next_change is not None:
            return self._fast_forward_segmented(next_change, max_wait)
        harvested_power = self.harvester.power_at(self.time)
        charge_power = self.pmic.charge_power(harvested_power)
        wait = self.capacitor.time_to_reach(self.pmic.v_on, charge_power)
        if math.isinf(wait) or wait > max_wait:
            return math.inf
        self._advance(wait, harvested_power, charge_power, 0.0, 0.0)
        self._snap_to_on()
        self._transition(v_before=0.0)
        return wait

    #: Iteration cap of the windowed fast-forward; only a backstop for
    #: an unbounded ``max_wait`` on a hopeless (leakage-bound) design.
    MAX_CHARGE_WINDOWS = 1_000_000

    def _fast_forward_segmented(self, next_change, max_wait: float) -> float:
        """Charge to ``v_on`` under a piecewise-constant harvester.

        The closed-form charging solution is applied per constant
        segment of the harvester (``next_change(t)`` is the absolute
        time of the next power change).  A segment whose power cannot
        reach ``v_on`` is not hopeless by itself — an indoor night ends
        when the lights come on — so the charge simply advances through
        it; only ``max_wait`` (or an infinite wait in an endless
        segment) declares failure.  Like the fault-windowed path, a
        failed (``inf``) fast-forward may leave the partially-charged
        state behind — callers treat ``inf`` as terminal anyway.
        """
        waited = 0.0
        obs_on = OBS.enabled
        for _ in range(self.MAX_CHARGE_WINDOWS):
            if obs_on:
                OBS.registry.counter("energy.controller.charge_windows").inc()
            if waited >= max_wait:
                return math.inf
            harvested_power = self.harvester.power_at(self.time)
            charge_power = self.pmic.charge_power(harvested_power)
            wait = self.capacitor.time_to_reach(self.pmic.v_on, charge_power)
            window = max(next_change(self.time) - self.time, 1e-9)
            if wait <= window:
                if math.isinf(wait) or waited + wait > max_wait:
                    return math.inf
                self._advance(wait, harvested_power, charge_power, 0.0, 0.0)
                self._snap_to_on()
                self._transition(v_before=0.0)
                return waited + wait
            chunk = min(window, max_wait - waited)
            self._advance(chunk, harvested_power, charge_power, 0.0, 0.0)
            waited += chunk
        return math.inf

    def _fast_forward_windowed(self, max_wait: float) -> float:
        """Charge to ``v_on`` when faults vary the input over time.

        Shading transients and leakage drift make the charge power
        piecewise-constant, so the closed-form fast-forward is applied
        per shading window instead of once.  Unlike the nominal path,
        a failed (``inf``) fast-forward leaves the partially-charged
        state behind — callers treat ``inf`` as terminal anyway.
        """
        faults, waited = self.faults, 0.0
        obs_on = OBS.enabled
        probe = getattr(self.harvester, "next_change_after", None)
        for _ in range(self.MAX_CHARGE_WINDOWS):
            if obs_on:
                OBS.registry.counter("energy.controller.charge_windows").inc()
            if waited >= max_wait:
                return math.inf
            self.capacitor.k_cap = faults.k_cap_at(self.time,
                                                   self._base_k_cap)
            harvested_power = (self.harvester.power_at(self.time)
                               * faults.harvest_factor(self.time))
            charge_power = self.pmic.charge_power(harvested_power)
            window_end = faults.window_end(self.time)
            if probe is not None:
                # A piecewise-constant harvester contributes its own
                # window boundaries: charge power is constant only up
                # to the nearer of the two changes.
                window_end = min(window_end, probe(self.time))
            window = max(window_end - self.time, 1e-9)
            wait = self.capacitor.time_to_reach(self.pmic.v_on, charge_power)
            if wait <= window:
                if waited + wait > max_wait:
                    return math.inf
                self._advance(wait, harvested_power, charge_power, 0.0, 0.0)
                self._snap_to_on()
                self._transition(v_before=0.0)
                return waited + wait
            # Even unshaded input cannot out-run leakage: hopeless.
            clear_power = self.pmic.charge_power(
                self.harvester.power_at(self.time))
            if math.isinf(wait) and math.isinf(
                    self.capacitor.time_to_reach(self.pmic.v_on,
                                                 clear_power)):
                return math.inf
            chunk = min(window, max_wait - waited)
            self._advance(chunk, harvested_power, charge_power, 0.0, 0.0)
            waited += chunk
        return math.inf

    def _snap_to_on(self) -> None:
        # The preceding charge was solved to land exactly on U_on, so
        # any residual deviation (~1e-13 V either side) is integration
        # noise: pin the comparator's view to exactly U_on.  This also
        # makes every charge-phase exit bitwise identical, which the
        # step simulator's cycle-skipping fast path relies on.
        if self.capacitor.voltage != self.pmic.v_on:
            self.capacitor.voltage = min(self.pmic.v_on,
                                         self.capacitor.rated_voltage)

    # -- internals -------------------------------------------------------------------

    def _transition(self, v_before: float) -> None:
        was_on = self.rail_on()
        now_on = self.pmic.rail_enabled(self.voltage, currently_on=was_on)
        if now_on and not was_on:
            self.accounting.power_cycles += 1
        self.state = PowerState.ON if now_on else PowerState.OFF

    def _sync_state(self) -> None:
        if self.pmic.rail_enabled(self.voltage, currently_on=False):
            self.state = PowerState.ON
            # Starting charged counts as the first energy cycle.
            self.accounting.power_cycles += 1
        else:
            self.state = PowerState.OFF
