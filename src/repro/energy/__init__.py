"""Energy subsystem of an AuT: harvesting, storage, and power management.

The paper (§III-B-1) models the energy subsystem as an energy harvester
(solar panel), a small capacitor, and a management IC that implements the
on/off voltage thresholds.  This package provides:

* :mod:`repro.energy.environment` — sunlight model producing the light
  coefficient ``k_eh`` (substitute for pvlib).
* :mod:`repro.energy.solar_panel` — Eq. 1, ``P_eh = A_eh * k_eh``, plus a
  lightweight P-V curve for MPPT experiments.
* :mod:`repro.energy.capacitor` — storage physics with the leakage model
  of Eq. 2 and the analytic charge ODE used for fast-forwarding.
* :mod:`repro.energy.pmic` — BQ25570-like power-management IC.
* :mod:`repro.energy.mppt` — perturb-and-observe maximum-power-point
  tracking.
* :mod:`repro.energy.harvester` — harvester interface with solar, thermal
  and RF implementations (the paper's extension point).
* :mod:`repro.energy.controller` — the intermittent-power state machine
  driving ON/OFF energy cycles.
"""

from repro.energy.capacitor import Capacitor
from repro.energy.controller import EnergyController, PowerState
from repro.energy.environment import LightEnvironment
from repro.energy.harvester import (
    CompositeHarvester,
    FluctuatingHarvester,
    Harvester,
    RFHarvester,
    SolarHarvester,
    ThermalHarvester,
)
from repro.energy.mppt import PerturbObserveTracker
from repro.energy.pmic import PowerManagementIC
from repro.energy.solar_panel import SolarPanel

__all__ = [
    "Capacitor",
    "CompositeHarvester",
    "EnergyController",
    "FluctuatingHarvester",
    "Harvester",
    "LightEnvironment",
    "PerturbObserveTracker",
    "PowerManagementIC",
    "PowerState",
    "RFHarvester",
    "SolarHarvester",
    "SolarPanel",
    "ThermalHarvester",
]
