"""Sunlight environment model — the source of the light coefficient k_eh.

The paper derives the harvested power from ``P_eh = A_eh * k_eh`` (Eq. 1)
where ``k_eh`` "reflects the complex attributes of photovoltaic modules
and can be obtained using existing EH modeling tools [pvlib]".  pvlib is
not available offline, so this module substitutes a self-contained
clear-sky irradiance model:

* the Haurwitz clear-sky model gives global horizontal irradiance (GHI)
  as a function of the solar zenith angle;
* a simple diurnal geometry gives the zenith angle from the hour of day;
* a cloudiness attenuation and the panel's conversion efficiency fold
  everything into the single coefficient ``k_eh`` in W/cm^2.

The paper evaluates under two static environments ("brighter" and
"darker") because sunlight is stable within one inference (<5 minutes)
but varies across a day; :meth:`LightEnvironment.brighter` and
:meth:`LightEnvironment.darker` are those presets, and
:meth:`LightEnvironment.k_eh_at` exposes the full diurnal profile for
long-horizon simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import irradiance_to_w_per_cm2

#: Extraterrestrial-scale constant of the Haurwitz model, W/m^2.
_HAURWITZ_SCALE = 1098.0
#: Optical-depth constant of the Haurwitz model.
_HAURWITZ_DECAY = 0.057


def haurwitz_ghi(zenith_deg: float) -> float:
    """Clear-sky global horizontal irradiance, W/m^2 (Haurwitz 1945).

    Returns 0 for zenith angles at or beyond 90 degrees (sun below the
    horizon).  This is the same clear-sky family pvlib ships.
    """
    if zenith_deg >= 90.0:
        return 0.0
    cos_z = math.cos(math.radians(zenith_deg))
    return _HAURWITZ_SCALE * cos_z * math.exp(-_HAURWITZ_DECAY / cos_z)


def solar_zenith_deg(hour_of_day: float, peak_elevation_deg: float = 70.0) -> float:
    """Approximate solar zenith angle for a mid-latitude site.

    Uses a sinusoidal elevation profile between 6:00 and 18:00 with the
    given peak elevation at solar noon.  Outside daylight hours the sun
    is below the horizon (zenith 90+).
    """
    if hour_of_day < 6.0 or hour_of_day > 18.0:
        return 90.0
    phase = (hour_of_day - 6.0) / 12.0 * math.pi
    elevation = peak_elevation_deg * math.sin(phase)
    return 90.0 - elevation


@dataclass(frozen=True)
class LightEnvironment:
    """A lighting scenario that yields the coefficient ``k_eh``.

    Parameters
    ----------
    cloudiness:
        0 for a perfectly clear sky, 1 for full overcast.  Irradiance is
        attenuated by ``(1 - 0.75 * cloudiness**3)``, the Kasten-Czeplak
        cloud model.
    panel_efficiency:
        Photovoltaic conversion efficiency folded into ``k_eh`` so that
        ``P_eh = A_eh * k_eh`` directly yields electrical power.
    peak_elevation_deg:
        Sun's elevation at solar noon (site latitude proxy).
    deployment_factor:
        Orientation / shading / soiling derating of a fielded panel.
        Deployed AuT harvesters rarely face the sun at normal incidence;
        published intermittent systems report a few mW from a few cm^2
        (the paper's Fig. 7 anchor is P_in = 6 mW), which corresponds to
        roughly a tenth of the normal-incidence clear-sky harvest.
    ambient_temp_c:
        Cell temperature, deg C.  Photovoltaic output derates by
        ``temp_coefficient`` per degree above the 25 C standard test
        condition — the "temperature" consideration the paper lists as
        a describer extension.
    temp_coefficient:
        Fractional power loss per Kelvin above 25 C (crystalline
        silicon: ~0.4 %/K).
    name:
        Human-readable label ("brighter", "darker", ...).
    """

    cloudiness: float = 0.0
    panel_efficiency: float = 0.20
    peak_elevation_deg: float = 70.0
    deployment_factor: float = 1.0
    ambient_temp_c: float = 25.0
    temp_coefficient: float = 0.004
    name: str = "custom"

    def __post_init__(self) -> None:
        if not 0.0 <= self.cloudiness <= 1.0:
            raise ConfigurationError(
                f"cloudiness must be in [0, 1], got {self.cloudiness}"
            )
        if not 0.0 < self.panel_efficiency <= 1.0:
            raise ConfigurationError(
                f"panel_efficiency must be in (0, 1], got {self.panel_efficiency}"
            )
        if not 0.0 < self.deployment_factor <= 1.0:
            raise ConfigurationError(
                f"deployment_factor must be in (0, 1], "
                f"got {self.deployment_factor}"
            )
        if self.temp_coefficient < 0:
            raise ConfigurationError(
                f"temp_coefficient must be non-negative, "
                f"got {self.temp_coefficient}"
            )

    # -- diurnal profile ---------------------------------------------------

    def irradiance_at(self, hour_of_day: float) -> float:
        """Cloud-attenuated GHI at the given hour, W/m^2."""
        clear = haurwitz_ghi(solar_zenith_deg(hour_of_day, self.peak_elevation_deg))
        attenuation = 1.0 - 0.75 * self.cloudiness**3
        return clear * attenuation

    @property
    def temperature_derating(self) -> float:
        """PV output factor for the ambient temperature (1.0 at 25 C).

        Cold deployments gain slightly (clamped at +10 %); hot ones
        lose ``temp_coefficient`` per Kelvin (clamped at -60 %).
        """
        factor = 1.0 - self.temp_coefficient * (self.ambient_temp_c - 25.0)
        return min(max(factor, 0.4), 1.1)

    def k_eh_at(self, hour_of_day: float) -> float:
        """Light coefficient at the given hour, W/cm^2 of panel area."""
        electrical = (self.irradiance_at(hour_of_day) * self.panel_efficiency
                      * self.deployment_factor * self.temperature_derating)
        return irradiance_to_w_per_cm2(electrical)

    # -- the per-inference-constant coefficient the paper uses --------------

    @property
    def k_eh(self) -> float:
        """Representative ``k_eh`` for this environment, W/cm^2.

        The paper treats harvested energy as stable during one inference;
        we therefore characterise an environment by its mid-morning value
        (10:00), which sits between the noon peak and the daily average.
        """
        return self.k_eh_at(10.0)

    # -- paper presets -------------------------------------------------------

    @classmethod
    def brighter(cls) -> "LightEnvironment":
        """The paper's brighter environment: near-clear sky, fielded panel.

        Yields k_eh of ~1.6 mW/cm^2, so a 4 cm^2 panel harvests ~6 mW —
        the paper's Fig. 7 operating point.
        """
        return cls(cloudiness=0.15, panel_efficiency=0.18,
                   deployment_factor=0.10, name="brighter")

    @classmethod
    def darker(cls) -> "LightEnvironment":
        """The paper's darker environment: heavy overcast, low sun.

        Yields k_eh of ~0.3 mW/cm^2, a fifth of the brighter preset.
        """
        return cls(
            cloudiness=0.92,
            panel_efficiency=0.18,
            peak_elevation_deg=45.0,
            deployment_factor=0.10,
            name="darker",
        )

    @classmethod
    def indoor(cls) -> "LightEnvironment":
        """Office-lighting scenario for indoor AuT deployments.

        Indoor illuminance (~500 lux) corresponds to a few W/m^2 of
        harvestable irradiance; k_eh lands around 0.03 mW/cm^2.
        """
        return cls(
            cloudiness=0.95,
            panel_efficiency=0.12,
            peak_elevation_deg=30.0,
            deployment_factor=0.02,
            name="indoor",
        )

    @classmethod
    def paper_environments(cls) -> tuple["LightEnvironment", "LightEnvironment"]:
        """The two environments every search in the paper averages over."""
        return cls.brighter(), cls.darker()
