"""Loop-nest view of a mapping, as drawn in Fig. 4 of the paper.

The figure shows the mapping description lowered to a loop nest whose
outermost ``cpkt`` loop corresponds to the ``InterTempMap`` directive.
:class:`LoopNest` performs that lowering for inspection, documentation
and validation: its trip-count product must cover the layer's full
iteration space exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.dataflow.directives import (
    InterTempMap,
    MappingDirectives,
    SpatialMap,
)
from repro.errors import MappingError
from repro.workloads.layers import DIM_NAMES, Layer


@dataclass(frozen=True)
class Loop:
    """One level of the nest."""

    dim: str
    trip_count: int
    chunk: int
    kind: str  # "ckpt" | "spatial" | "temporal"

    def render(self, indent: int) -> str:
        pad = "  " * indent
        if self.kind == "ckpt":
            head = f"for {self.dim.lower()}_ckpt in range({self.trip_count})"
            note = "# InterTempMap: energy-cycle tile"
        elif self.kind == "spatial":
            head = f"parallel_for {self.dim.lower()}_pe in range({self.trip_count})"
            note = "# SpatialMap: across PEs"
        else:
            head = f"for {self.dim.lower()} in range({self.trip_count})"
            note = "# TemporalMap"
        return f"{pad}{head}:  {note}"


@dataclass(frozen=True)
class LoopNest:
    """The lowered nest: outermost loop first."""

    loops: Tuple[Loop, ...]

    @classmethod
    def from_mapping(cls, directives: MappingDirectives,
                     layer: Layer) -> "LoopNest":
        dims = layer.dims()
        loops: List[Loop] = []
        covered = {}
        for directive in directives:
            total = dims[directive.dim]
            trips = math.ceil(total / directive.size)
            if isinstance(directive, InterTempMap):
                kind = "ckpt"
            elif isinstance(directive, SpatialMap):
                kind = "spatial"
            else:
                kind = "temporal"
            loops.append(Loop(directive.dim, trips, directive.size, kind))
            covered[directive.dim] = covered.get(directive.dim, 1) * trips
        # Implicit innermost loops: chunks introduced by each directive
        # still iterate internally; also any dimension never mentioned.
        for directive in directives:
            if directive.size > 1:
                loops.append(
                    Loop(directive.dim, directive.size, 1, "temporal")
                )
        for name in DIM_NAMES:
            if dims[name] > 1 and name not in covered:
                loops.append(Loop(name, dims[name], 1, "temporal"))
        nest = cls(tuple(loops))
        nest._validate_against(dims)
        return nest

    def _validate_against(self, dims) -> None:
        product = 1
        for loop in self.loops:
            product *= loop.trip_count
        full = math.prod(dims.values())
        if product < full:
            raise MappingError(
                f"loop nest covers {product} iterations but the layer "
                f"has {full}"
            )

    @property
    def trip_count(self) -> int:
        product = 1
        for loop in self.loops:
            product *= loop.trip_count
        return product

    def render(self) -> str:
        """Source-like rendering, outermost loop first."""
        lines = [loop.render(indent) for indent, loop in enumerate(self.loops)]
        lines.append("  " * len(self.loops) + "MAC(...)")
        return "\n".join(lines)
