"""Analytical dataflow cost model ("MAESTRO-lite").

Given a layer, a :class:`~repro.dataflow.mapping.LayerMapping` and an
:class:`~repro.hardware.accelerators.AcceleratorConfig`, this module
computes the per-energy-cycle-tile quantities the paper's Eqs. 4-6 need:

* **compute** — MAC count, active-PE utilisation, compute time;
* **NVM traffic** — every tile reads its inputs/weights from NVM and
  writes its outputs back (steps 1 and 5 of Fig. 4); a reduction split
  (``tile_dim == 'C'``) additionally round-trips partial sums;
* **VM <-> PE traffic** — reuse analysis in the MAESTRO data-centric
  spirit: the dataflow style pins one operand in the PE caches, and the
  number of passes the *streaming* operands make equals the number of
  resident sub-blocks the cache capacity forces;
* **energy** — datapath + cache + NoC/VM + NVM + static retention
  (Eq. 4: ``E_tile = E_read + E_infer + E_write + E_static``);
* **checkpoint volume** — the live VM working set, priced by the
  checkpoint model (the ``N_ckpt (e_r + e_w)`` term of Eq. 5).

The model is intentionally analytical (no cycle simulation): CHRYSALIS
calls it millions of times inside the bi-level search.  Its fidelity
target is faithful *ordering* of design points, which the step-based
simulator cross-checks.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.dataflow.tiling import halo_extent
from repro.errors import ConfigurationError, MappingError
from repro.hardware.accelerators import AcceleratorConfig
from repro.hardware.checkpoint import CheckpointModel
from repro.obs.state import OBS
from repro.workloads.layers import Layer, LayerKind

#: Fraction of each PE cache reserved for the resident operand; the rest
#: stages the streaming operands.
_RESIDENT_CACHE_SHARE = 0.7

#: Energy of one pooling operation relative to a full MAC.  A pooling
#: datapath performs a comparison/accumulate without the multiplier,
#: which dominates MAC energy; 0.3 is the ballpark of published
#: comparator-vs-MAC breakdowns at int8.  Pooling *time* is unchanged
#: (a compare still occupies an issue slot), only the datapath energy
#: is discounted.
_POOL_OP_ENERGY_SCALE = 0.3


class _LayerCostCache:
    """Process-local cache of :class:`LayerCost` results.

    The bi-level explorer re-prices identical ``(hardware, checkpoint,
    layer, mapping)`` combinations millions of times: the SW-level
    mapping scan queries one model per environment (tile costs are
    environment-independent), and every genome sharing an inference
    configuration repeats the whole scan.  :class:`LayerCost` is frozen,
    so cached instances are safe to share.

    The hit path must cost single-digit microseconds or it eats its own
    savings, so the structure is two-level: each
    :class:`DataflowCostModel` resolves its ``(hardware, checkpoint)``
    prefix to a per-prefix dict once at construction, and every lookup
    is then a single probe keyed by the raw ``(layer, mapping)`` pair.
    The bound is enforced by flushing everything when the entry count
    exceeds ``maxsize`` (at the default bound a realistic search never
    gets there), which keeps per-hit bookkeeping at zero.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._size = 0
        self._maps: Dict[tuple, Dict[tuple, LayerCost]] = {}

    def map_for(self, prefix: tuple) -> Dict[tuple, "LayerCost"]:
        """The per-prefix entry dict (created on first use)."""
        entries = self._maps.get(prefix)
        if entries is None:
            entries = self._maps[prefix] = {}
        return entries

    def note_insert(self) -> None:
        """Account one insertion; flush if the bound is exceeded."""
        self._size += 1
        if self._size > self.maxsize:
            self._flush()

    def _flush(self) -> None:
        # Clear the per-prefix dicts in place so models holding a
        # reference see the flush too.
        for entries in self._maps.values():
            entries.clear()
        self._size = 0

    def clear(self) -> None:
        self._flush()
        self._maps.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._size


_LAYER_COST_CACHE = _LayerCostCache()


def configure_layer_cost_cache(enabled: Optional[bool] = None,
                               maxsize: Optional[int] = None) -> None:
    """Tune the process-wide layer-cost cache (bench/testing hook)."""
    if maxsize is not None:
        if maxsize < 1:
            raise ConfigurationError(
                f"layer-cost cache maxsize must be positive, got {maxsize}"
            )
        _LAYER_COST_CACHE.maxsize = maxsize
    if enabled is not None:
        _LAYER_COST_CACHE.enabled = enabled


def clear_layer_cost_cache() -> None:
    """Drop all entries and reset the hit/miss counters."""
    _LAYER_COST_CACHE.clear()


def layer_cost_cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of the process-wide layer-cost cache."""
    return _LAYER_COST_CACHE.hits, _LAYER_COST_CACHE.misses


@dataclass(frozen=True)
class TileCost:
    """Costs of one energy-cycle tile (the unit Eq. 8 constrains)."""

    macs: int
    active_pes: int
    compute_time: float  # s, on the active PEs
    io_time: float  # s, NVM + VM transfer time
    latency: float  # s, after overlap policy
    compute_energy: float  # J, datapath + PE caches
    vm_energy: float  # J, NoC + shared-buffer accesses
    nvm_read_bytes: float
    nvm_write_bytes: float
    nvm_energy: float  # J
    static_energy: float  # J, rail-on static draw x latency
    working_set_bytes: float  # VM occupancy of the tile
    checkpoint_bytes: float  # N_ckpt
    checkpoint_energy: float  # J, expected (1 + r_exc) x (save + resume)
    checkpoint_time: float  # s, expected save + resume time
    fits_vm: bool

    @property
    def energy(self) -> float:
        """Total expected energy of the tile (Eq. 4 plus checkpointing)."""
        return (self.compute_energy + self.vm_energy + self.nvm_energy
                + self.static_energy + self.checkpoint_energy)

    @property
    def energy_without_checkpoint(self) -> float:
        return self.energy - self.checkpoint_energy

    @property
    def total_time(self) -> float:
        return self.latency + self.checkpoint_time


@dataclass(frozen=True)
class LayerCost:
    """Aggregate of one layer: ``n_tiles`` identical tiles (Eq. 5)."""

    layer_name: str
    n_tiles: int
    tile: TileCost

    @property
    def macs(self) -> int:
        return self.n_tiles * self.tile.macs

    @property
    def energy(self) -> float:
        return self.n_tiles * self.tile.energy

    @property
    def checkpoint_energy(self) -> float:
        return self.n_tiles * self.tile.checkpoint_energy

    @property
    def compute_energy(self) -> float:
        return self.n_tiles * self.tile.compute_energy

    @property
    def memory_energy(self) -> float:
        return self.n_tiles * (self.tile.vm_energy + self.tile.nvm_energy)

    @property
    def static_energy(self) -> float:
        return self.n_tiles * self.tile.static_energy

    @property
    def busy_time(self) -> float:
        """Rail-on time to execute all tiles, s (excludes recharging)."""
        return self.n_tiles * self.tile.total_time

    @property
    def fits_vm(self) -> bool:
        return self.tile.fits_vm


class DataflowCostModel:
    """Evaluates mappings against an accelerator configuration."""

    def __init__(self, hardware: AcceleratorConfig,
                 checkpoint: CheckpointModel) -> None:
        self.hardware = hardware
        self.checkpoint = checkpoint
        #: Hashable identity shared by every model built on the same
        #: hardware/checkpoint pair — resolved once, here, to the cache
        #: bucket for that prefix so the per-call hit path never hashes
        #: the hardware config again.  Tile costs do not depend on the
        #: light environment, so the prefix deliberately omits it:
        #: models for different environments share entries.
        self._cache_prefix = (hardware.cache_key(), checkpoint)
        self._cache_map = _LAYER_COST_CACHE.map_for(self._cache_prefix)

    # -- public API -----------------------------------------------------------

    def layer_cost(self, layer: Layer, mapping: LayerMapping) -> LayerCost:
        """Cost of executing ``layer`` under ``mapping`` (memoized).

        Entries are keyed by the *raw* mapping; clamping is
        deterministic, so two raw mappings that clamp to the same
        effective mapping simply occupy two entries with equal values.
        """
        if OBS.profile:
            return self._layer_cost_profiled(layer, mapping)
        cache = _LAYER_COST_CACHE
        if not cache.enabled:
            return self._layer_cost_uncached(layer, mapping.clamped(layer))
        key = (layer, mapping)
        cost = self._cache_map.get(key)
        if cost is not None:
            cache.hits += 1
            return cost
        cache.misses += 1
        cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
        self._cache_map[key] = cost
        cache.note_insert()
        return cost

    def _layer_cost_profiled(self, layer: Layer,
                             mapping: LayerMapping) -> LayerCost:
        """The profiling twin of :meth:`layer_cost`.

        Same logic, plus a latency histogram per outcome — cache hit,
        cache miss, or cache-disabled — so the report can show the
        hit/miss latency split.  Kept out of the default path: the hit
        path is microseconds and two ``perf_counter`` calls would be a
        measurable tax.
        """
        registry = OBS.registry
        cache = _LAYER_COST_CACHE
        start = _time.perf_counter()
        if not cache.enabled:
            cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
            registry.histogram("cost.layer_cost.uncached_seconds").observe(
                _time.perf_counter() - start)
            return cost
        key = (layer, mapping)
        cost = self._cache_map.get(key)
        if cost is not None:
            cache.hits += 1
            registry.histogram("cost.layer_cost.hit_seconds").observe(
                _time.perf_counter() - start)
            return cost
        cache.misses += 1
        cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
        self._cache_map[key] = cost
        cache.note_insert()
        registry.histogram("cost.layer_cost.miss_seconds").observe(
            _time.perf_counter() - start)
        return cost

    def _layer_cost_uncached(self, layer: Layer,
                             mapping: LayerMapping) -> LayerCost:
        n_tiles = mapping.effective_n_tiles(layer)
        tile = self._tile_cost(layer, mapping, n_tiles)
        return LayerCost(layer_name=layer.name, n_tiles=n_tiles, tile=tile)

    def single_pe_time(self, layer: Layer) -> float:
        """``T_df`` of Eq. 6: whole-layer compute time on one PE, s."""
        return layer.macs / self.hardware.pes.macs_per_second_per_pe

    # -- internals ----------------------------------------------------------------

    def _tile_cost(self, layer: Layer, mapping: LayerMapping,
                   n_tiles: int) -> TileCost:
        hw = self.hardware
        tile_dims = mapping.tile_dims(layer)
        macs = math.prod(tile_dims.values())
        if layer.kind is LayerKind.EMBEDDING:
            # Table lookups: no datapath ops at all.
            macs = 0

        in_bytes, w_bytes, out_bytes = self._tile_tensor_bytes(layer, mapping,
                                                               tile_dims)

        spatial_extent = tile_dims[mapping.spatial_dim]
        active_pes = max(1, min(hw.pes.n_pes, spatial_extent))

        # --- VM <-> PE reuse analysis -------------------------------------
        resident_bytes, streaming = self._split_operands(
            mapping.style, in_bytes, w_bytes, out_bytes
        )
        streaming_bytes = sum(size for _, size in streaming)
        cache_budget = _RESIDENT_CACHE_SHARE * active_pes * hw.pes.cache_bytes_per_pe
        n_sub = max(1, math.ceil(resident_bytes / max(cache_budget, 1.0)))
        penalty = hw.traffic_penalty(mapping.style)
        vm_traffic = (resident_bytes + n_sub * streaming_bytes) * penalty

        # --- NVM traffic (Fig. 4 steps 1 and 5) ----------------------------
        nvm_read = in_bytes + w_bytes
        nvm_write = out_bytes
        if mapping.tile_dim == "C" and n_tiles > 1:
            # Reduction split: partial outputs round-trip through NVM.
            nvm_read += out_bytes
        vm_capacity = hw.vm.size_bytes
        for name, size in streaming:
            if size <= vm_capacity or n_sub <= 1:
                continue
            # The operand cannot be cached in VM across sub-block passes,
            # so every extra pass re-touches backing NVM.
            if name == "out":
                # Partial sums: each extra pass is a read-modify-write.
                nvm_read += size * (n_sub - 1)
                nvm_write += size * (n_sub - 1)
            else:
                nvm_read += size * (n_sub - 1)
        # Partial sums spill to VM whenever outputs are not the resident
        # operand and the resident set had to be sub-blocked.
        if mapping.style is not DataflowStyle.OUTPUT_STATIONARY:
            vm_traffic += out_bytes * max(0, n_sub - 1) * 2.0

        # --- times -----------------------------------------------------------
        compute_time = hw.pes.compute_time(macs, active_pes) if macs else 0.0
        vm_tech = hw.vm.technology
        io_time = (
            hw.nvm.read_time(nvm_read)
            + hw.nvm.write_time(nvm_write)
            + vm_traffic / vm_tech.read_bandwidth
        )
        if hw.overlapped_io:
            latency = max(compute_time, io_time)
        else:
            latency = compute_time + io_time

        # --- energies -----------------------------------------------------------
        bpe = layer.bytes_per_element
        compute_energy = hw.pes.compute_energy(macs)
        if layer.kind is LayerKind.POOL:
            # Pooling ops are comparisons/accumulates, not full MACs.
            compute_energy *= _POOL_OP_ENERGY_SCALE
        compute_energy += 3.0 * macs * bpe * hw.pes.cache_access_energy_per_byte
        vm_energy = vm_traffic * (
            vm_tech.read_energy_per_byte + hw.noc_energy_per_byte
        )
        nvm_energy = (hw.nvm.read_energy(nvm_read)
                      + hw.nvm.write_energy(nvm_write))
        static_energy = hw.static_power * latency

        # --- checkpointing ----------------------------------------------------------
        working_set = min(in_bytes + w_bytes + out_bytes, hw.vm.size_bytes)
        if n_tiles > 1:
            ckpt_bytes = self.checkpoint.checkpoint_bytes(working_set)
            ckpt_energy = self.checkpoint.expected_tile_overhead_energy(
                working_set
            )
            ckpt_time = (1.0 + self.checkpoint.exception_rate) * (
                self.checkpoint.save_time(working_set)
                + self.checkpoint.resume_time(working_set)
            )
        else:
            ckpt_bytes = 0.0
            ckpt_energy = 0.0
            ckpt_time = 0.0

        return TileCost(
            macs=macs,
            active_pes=active_pes,
            compute_time=compute_time,
            io_time=io_time,
            latency=latency,
            compute_energy=compute_energy,
            vm_energy=vm_energy,
            nvm_read_bytes=nvm_read,
            nvm_write_bytes=nvm_write,
            nvm_energy=nvm_energy,
            static_energy=static_energy,
            working_set_bytes=working_set,
            checkpoint_bytes=ckpt_bytes,
            checkpoint_energy=ckpt_energy,
            checkpoint_time=ckpt_time,
            fits_vm=in_bytes + w_bytes + out_bytes <= hw.vm.size_bytes,
        )

    @staticmethod
    def _split_operands(
        style: DataflowStyle, in_bytes: float, w_bytes: float,
        out_bytes: float,
    ) -> Tuple[float, Tuple[Tuple[str, float], ...]]:
        """Resident volume and named streaming volumes for a style."""
        if style is DataflowStyle.WEIGHT_STATIONARY:
            return w_bytes, (("in", in_bytes), ("out", out_bytes))
        if style is DataflowStyle.OUTPUT_STATIONARY:
            return out_bytes, (("in", in_bytes), ("w", w_bytes))
        if style is DataflowStyle.INPUT_STATIONARY:
            return in_bytes, (("w", w_bytes), ("out", out_bytes))
        raise MappingError(f"unknown dataflow style {style!r}")

    @staticmethod
    def _tile_tensor_bytes(layer: Layer, mapping: LayerMapping,
                           tile_dims: Dict[str, int]) -> Tuple[float, float, float]:
        """(input, weight, output) bytes of one energy-cycle tile."""
        bpe = layer.bytes_per_element
        d = tile_dims
        out_elems = d["K"] * d["Y"] * d["X"]

        if layer.kind in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV,
                          LayerKind.POOL):
            stride = getattr(layer, "stride", 1)
            in_h = halo_extent(d["Y"], d["R"], stride)
            in_w = halo_extent(d["X"], d["S"], stride)
            if layer.kind is LayerKind.CONV:
                in_ch = d["C"]
                w_elems = d["K"] * d["C"] * d["R"] * d["S"]
            else:
                # Depthwise / pooling: channels come from K, no contraction.
                in_ch = d["K"]
                has_weights = layer.params > 0
                w_elems = d["K"] * d["R"] * d["S"] if has_weights else 0
            in_elems = in_ch * in_h * in_w
        elif layer.kind is LayerKind.DENSE:
            in_elems = d["Y"] * d["C"]
            w_elems = d["K"] * d["C"]
        elif layer.kind is LayerKind.MATMUL:
            in_elems = d["Y"] * d["C"] + d["C"] * d["K"]
            w_elems = 0
        elif layer.kind is LayerKind.EMBEDDING:
            in_elems = d["Y"]
            w_elems = d["Y"] * math.prod(layer.output_shape) // max(
                layer.output_shape[0], 1
            )
            out_elems = w_elems
        else:
            raise MappingError(f"unsupported layer kind {layer.kind!r}")

        return in_elems * bpe, w_elems * bpe, out_elems * bpe
