"""Analytical dataflow cost model ("MAESTRO-lite").

Given a layer, a :class:`~repro.dataflow.mapping.LayerMapping` and an
:class:`~repro.hardware.accelerators.AcceleratorConfig`, this module
computes the per-energy-cycle-tile quantities the paper's Eqs. 4-6 need:

* **compute** — MAC count, active-PE utilisation, compute time;
* **NVM traffic** — every tile reads its inputs/weights from NVM and
  writes its outputs back (steps 1 and 5 of Fig. 4); a reduction split
  (``tile_dim == 'C'``) additionally round-trips partial sums;
* **VM <-> PE traffic** — reuse analysis in the MAESTRO data-centric
  spirit: the dataflow style pins one operand in the PE caches, and the
  number of passes the *streaming* operands make equals the number of
  resident sub-blocks the cache capacity forces;
* **energy** — datapath + cache + NoC/VM + NVM + static retention
  (Eq. 4: ``E_tile = E_read + E_infer + E_write + E_static``);
* **checkpoint volume** — the live VM working set, priced by the
  checkpoint model (the ``N_ckpt (e_r + e_w)`` term of Eq. 5).

The model is intentionally analytical (no cycle simulation): CHRYSALIS
calls it millions of times inside the bi-level search.  Its fidelity
target is faithful *ordering* of design points, which the step-based
simulator cross-checks.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.dataflow.tiling import halo_extent
from repro.errors import ConfigurationError, MappingError
from repro.hardware.accelerators import AcceleratorConfig
from repro.hardware.checkpoint import CheckpointModel, CheckpointStrategy
from repro.obs.state import OBS
from repro.workloads.layers import Layer, LayerKind

#: Fraction of each PE cache reserved for the resident operand; the rest
#: stages the streaming operands.
_RESIDENT_CACHE_SHARE = 0.7

#: Energy of one pooling operation relative to a full MAC.  A pooling
#: datapath performs a comparison/accumulate without the multiplier,
#: which dominates MAC energy; 0.3 is the ballpark of published
#: comparator-vs-MAC breakdowns at int8.  Pooling *time* is unchanged
#: (a compare still occupies an issue slot), only the datapath energy
#: is discounted.
_POOL_OP_ENERGY_SCALE = 0.3


class _LayerCostCache:
    """Process-local cache of :class:`LayerCost` results.

    The bi-level explorer re-prices identical ``(hardware, checkpoint,
    layer, mapping)`` combinations millions of times: the SW-level
    mapping scan queries one model per environment (tile costs are
    environment-independent), and every genome sharing an inference
    configuration repeats the whole scan.  :class:`LayerCost` is frozen,
    so cached instances are safe to share.

    The hit path must cost single-digit microseconds or it eats its own
    savings, so the structure is two-level: each
    :class:`DataflowCostModel` resolves its ``(hardware, checkpoint)``
    prefix to a per-prefix dict once at construction, and every lookup
    is then a single probe keyed by the raw ``(layer, mapping)`` pair.
    The bound is enforced by flushing everything when the entry count
    exceeds ``maxsize`` (at the default bound a realistic search never
    gets there), which keeps per-hit bookkeeping at zero.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._size = 0
        self._maps: Dict[tuple, Dict[tuple, LayerCost]] = {}
        #: When a list, every organic insert is appended as a
        #: ``(prefix, key, cost)`` entry — the journal parallel workers
        #: drain per genome so the parent can merge their work back.
        self.journal: Optional[list] = None

    def map_for(self, prefix: tuple) -> Dict[tuple, "LayerCost"]:
        """The per-prefix entry dict (created on first use)."""
        entries = self._maps.get(prefix)
        if entries is None:
            entries = self._maps[prefix] = {}
        return entries

    def insert(self, prefix: tuple, entries: Dict[tuple, "LayerCost"],
               key: tuple, cost: "LayerCost", record: bool = True) -> None:
        """Insert one entry; journal it; flush if the bound is exceeded.

        ``record=False`` is the seeding/merge path: entries shipped in
        from another process must not re-enter this process's journal,
        or workers would echo their seed back to the parent forever.
        """
        entries[key] = cost
        self._size += 1
        if record and self.journal is not None:
            self.journal.append((prefix, key, cost))
        if self._size > self.maxsize:
            self._flush()

    def _flush(self) -> None:
        # Clear the per-prefix dicts in place so models holding a
        # reference see the flush too.
        for entries in self._maps.values():
            entries.clear()
        self._size = 0

    def clear(self) -> None:
        self._flush()
        self._maps.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._size


_LAYER_COST_CACHE = _LayerCostCache()


def configure_layer_cost_cache(enabled: Optional[bool] = None,
                               maxsize: Optional[int] = None) -> None:
    """Tune the process-wide layer-cost cache (bench/testing hook)."""
    if maxsize is not None:
        if maxsize < 1:
            raise ConfigurationError(
                f"layer-cost cache maxsize must be positive, got {maxsize}"
            )
        _LAYER_COST_CACHE.maxsize = maxsize
    if enabled is not None:
        _LAYER_COST_CACHE.enabled = enabled


def clear_layer_cost_cache() -> None:
    """Drop all entries and reset the hit/miss counters."""
    _LAYER_COST_CACHE.clear()


def layer_cost_cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of the process-wide layer-cost cache."""
    return _LAYER_COST_CACHE.hits, _LAYER_COST_CACHE.misses


def start_layer_cost_journal() -> None:
    """Record every subsequent insert (worker-process hook).

    Parallel workers keep the journal on for their whole lifetime and
    drain it per genome, shipping the entries home inside the
    :class:`~repro.explore.stats.GenomeOutcome`.
    """
    _LAYER_COST_CACHE.journal = []


def drain_layer_cost_journal() -> Tuple[tuple, ...]:
    """Return and clear the recorded inserts, keeping recording on."""
    journal = _LAYER_COST_CACHE.journal
    if not journal:
        return ()
    entries = tuple(journal)
    journal.clear()
    return entries


def snapshot_layer_cost_entries() -> Tuple[tuple, ...]:
    """Every cached entry as ``(prefix, key, cost)`` tuples.

    Used to pre-seed worker processes at pool creation so a warm parent
    cache (e.g. a second search in the same process) is not re-missed
    once per worker.
    """
    cache = _LAYER_COST_CACHE
    return tuple(
        (prefix, key, cost)
        for prefix, entries in cache._maps.items()
        for key, cost in entries.items()
    )


def seed_layer_cost_cache(entries: Sequence[tuple]) -> None:
    """Insert-if-absent without touching the hit/miss counters."""
    cache = _LAYER_COST_CACHE
    if not cache.enabled:
        return
    for prefix, key, cost in entries:
        entry_map = cache.map_for(prefix)
        if key not in entry_map:
            cache.insert(prefix, entry_map, key, cost, record=False)


def merge_layer_cost_entries(entries: Sequence[tuple]) -> int:
    """Merge journal entries shipped back from a worker.

    Returns how many of them the parent cache *already held* — each of
    those was a genuine miss in the worker's private cache but would
    have been a hit in a serial run, so the caller reclassifies exactly
    that many misses as hits.  Merging outcomes in submission order
    makes parallel hit/miss totals equal the serial run's, key for key.
    """
    cache = _LAYER_COST_CACHE
    already_present = 0
    if not cache.enabled:
        return already_present
    for prefix, key, cost in entries:
        entry_map = cache.map_for(prefix)
        if key in entry_map:
            already_present += 1
        else:
            cache.insert(prefix, entry_map, key, cost, record=False)
    return already_present


@dataclass(frozen=True)
class TileCost:
    """Costs of one energy-cycle tile (the unit Eq. 8 constrains)."""

    macs: int
    active_pes: int
    compute_time: float  # s, on the active PEs
    io_time: float  # s, NVM + VM transfer time
    latency: float  # s, after overlap policy
    compute_energy: float  # J, datapath + PE caches
    vm_energy: float  # J, NoC + shared-buffer accesses
    nvm_read_bytes: float
    nvm_write_bytes: float
    nvm_energy: float  # J
    static_energy: float  # J, rail-on static draw x latency
    working_set_bytes: float  # VM occupancy of the tile
    checkpoint_bytes: float  # N_ckpt
    checkpoint_energy: float  # J, expected (1 + r_exc) x (save + resume)
    checkpoint_time: float  # s, expected save + resume time
    fits_vm: bool

    @property
    def energy(self) -> float:
        """Total expected energy of the tile (Eq. 4 plus checkpointing)."""
        return (self.compute_energy + self.vm_energy + self.nvm_energy
                + self.static_energy + self.checkpoint_energy)

    @property
    def energy_without_checkpoint(self) -> float:
        return self.energy - self.checkpoint_energy

    @property
    def total_time(self) -> float:
        return self.latency + self.checkpoint_time


@dataclass(frozen=True)
class LayerCost:
    """Aggregate of one layer: ``n_tiles`` identical tiles (Eq. 5)."""

    layer_name: str
    n_tiles: int
    tile: TileCost

    @property
    def macs(self) -> int:
        return self.n_tiles * self.tile.macs

    @property
    def energy(self) -> float:
        return self.n_tiles * self.tile.energy

    @property
    def checkpoint_energy(self) -> float:
        return self.n_tiles * self.tile.checkpoint_energy

    @property
    def compute_energy(self) -> float:
        return self.n_tiles * self.tile.compute_energy

    @property
    def memory_energy(self) -> float:
        return self.n_tiles * (self.tile.vm_energy + self.tile.nvm_energy)

    @property
    def static_energy(self) -> float:
        return self.n_tiles * self.tile.static_energy

    @property
    def busy_time(self) -> float:
        """Rail-on time to execute all tiles, s (excludes recharging)."""
        return self.n_tiles * self.tile.total_time

    @property
    def fits_vm(self) -> bool:
        return self.tile.fits_vm


class DataflowCostModel:
    """Evaluates mappings against an accelerator configuration."""

    def __init__(self, hardware: AcceleratorConfig,
                 checkpoint: CheckpointModel) -> None:
        self.hardware = hardware
        self.checkpoint = checkpoint
        #: Hashable identity shared by every model built on the same
        #: hardware/checkpoint pair — resolved once, here, to the cache
        #: bucket for that prefix so the per-call hit path never hashes
        #: the hardware config again.  Tile costs do not depend on the
        #: light environment, so the prefix deliberately omits it:
        #: models for different environments share entries.
        self._cache_prefix = (hardware.cache_key(), checkpoint)
        self._cache_map = _LAYER_COST_CACHE.map_for(self._cache_prefix)

    # -- public API -----------------------------------------------------------

    def layer_cost(self, layer: Layer, mapping: LayerMapping) -> LayerCost:
        """Cost of executing ``layer`` under ``mapping`` (memoized).

        Entries are keyed by the *raw* mapping; clamping is
        deterministic, so two raw mappings that clamp to the same
        effective mapping simply occupy two entries with equal values.
        """
        if OBS.profile:
            return self._layer_cost_profiled(layer, mapping)
        cache = _LAYER_COST_CACHE
        if not cache.enabled:
            return self._layer_cost_uncached(layer, mapping.clamped(layer))
        key = (layer, mapping)
        cost = self._cache_map.get(key)
        if cost is not None:
            cache.hits += 1
            return cost
        cache.misses += 1
        cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
        cache.insert(self._cache_prefix, self._cache_map, key, cost)
        return cost

    def _layer_cost_profiled(self, layer: Layer,
                             mapping: LayerMapping) -> LayerCost:
        """The profiling twin of :meth:`layer_cost`.

        Same logic, plus a latency histogram per outcome — cache hit,
        cache miss, or cache-disabled — so the report can show the
        hit/miss latency split.  Kept out of the default path: the hit
        path is microseconds and two ``perf_counter`` calls would be a
        measurable tax.
        """
        registry = OBS.registry
        cache = _LAYER_COST_CACHE
        start = _time.perf_counter()
        if not cache.enabled:
            cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
            registry.histogram("cost.layer_cost.uncached_seconds").observe(
                _time.perf_counter() - start)
            return cost
        key = (layer, mapping)
        cost = self._cache_map.get(key)
        if cost is not None:
            cache.hits += 1
            registry.histogram("cost.layer_cost.hit_seconds").observe(
                _time.perf_counter() - start)
            return cost
        cache.misses += 1
        cost = self._layer_cost_uncached(layer, mapping.clamped(layer))
        cache.insert(self._cache_prefix, self._cache_map, key, cost)
        registry.histogram("cost.layer_cost.miss_seconds").observe(
            _time.perf_counter() - start)
        return cost

    def _layer_cost_uncached(self, layer: Layer,
                             mapping: LayerMapping) -> LayerCost:
        n_tiles = mapping.effective_n_tiles(layer)
        tile = self._tile_cost(layer, mapping, n_tiles)
        return LayerCost(layer_name=layer.name, n_tiles=n_tiles, tile=tile)

    def single_pe_time(self, layer: Layer) -> float:
        """``T_df`` of Eq. 6: whole-layer compute time on one PE, s."""
        return layer.macs / self.hardware.pes.macs_per_second_per_pe

    def layer_cost_batch(self, layer: Layer,
                         mappings: Sequence[LayerMapping]) -> List[LayerCost]:
        """Price many mappings of ``layer`` in one vectorized sweep.

        Semantically ``[self.layer_cost(layer, m) for m in mappings]``
        — same cache probes, same hit/miss accounting (a duplicate
        later in the batch counts as the hit it would have been in the
        scalar loop), and one :class:`LayerCostBatch` sweep plus a
        single cache fill for whatever is missing.
        """
        mappings = list(mappings)
        if not mappings:
            return []
        cache = _LAYER_COST_CACHE
        if not cache.enabled:
            batch = LayerCostBatch(self.hardware, self.checkpoint, layer,
                                   [m.clamped(layer) for m in mappings])
            return batch.layer_costs()
        results: List[Optional[LayerCost]] = [None] * len(mappings)
        order: List[tuple] = []  # first-occurrence keys to compute
        pending: Dict[tuple, List[int]] = {}
        for i, mapping in enumerate(mappings):
            key = (layer, mapping)
            cost = self._cache_map.get(key)
            if cost is not None:
                cache.hits += 1
                results[i] = cost
                continue
            slots = pending.get(key)
            if slots is None:
                cache.misses += 1
                pending[key] = [i]
                order.append(key)
            else:
                # Batch-internal duplicate: the scalar loop would hit
                # the entry its first occurrence had just inserted.
                cache.hits += 1
                slots.append(i)
        if order:
            batch = LayerCostBatch(self.hardware, self.checkpoint, layer,
                                   [key[1].clamped(layer) for key in order])
            for key, cost in zip(order, batch.layer_costs()):
                cache.insert(self._cache_prefix, self._cache_map, key, cost)
                for i in pending[key]:
                    results[i] = cost
        return results

    # -- internals ----------------------------------------------------------------

    def _tile_cost(self, layer: Layer, mapping: LayerMapping,
                   n_tiles: int) -> TileCost:
        hw = self.hardware
        tile_dims = mapping.tile_dims(layer)
        macs = math.prod(tile_dims.values())
        if layer.kind is LayerKind.EMBEDDING:
            # Table lookups: no datapath ops at all.
            macs = 0

        in_bytes, w_bytes, out_bytes = self._tile_tensor_bytes(layer, mapping,
                                                               tile_dims)

        spatial_extent = tile_dims[mapping.spatial_dim]
        active_pes = max(1, min(hw.pes.n_pes, spatial_extent))

        # --- VM <-> PE reuse analysis -------------------------------------
        resident_bytes, streaming = self._split_operands(
            mapping.style, in_bytes, w_bytes, out_bytes
        )
        streaming_bytes = sum(size for _, size in streaming)
        cache_budget = _RESIDENT_CACHE_SHARE * active_pes * hw.pes.cache_bytes_per_pe
        n_sub = max(1, math.ceil(resident_bytes / max(cache_budget, 1.0)))
        penalty = hw.traffic_penalty(mapping.style)
        vm_traffic = (resident_bytes + n_sub * streaming_bytes) * penalty

        # --- NVM traffic (Fig. 4 steps 1 and 5) ----------------------------
        nvm_read = in_bytes + w_bytes
        nvm_write = out_bytes
        if mapping.tile_dim == "C" and n_tiles > 1:
            # Reduction split: partial outputs round-trip through NVM.
            nvm_read += out_bytes
        vm_capacity = hw.vm.size_bytes
        for name, size in streaming:
            if size <= vm_capacity or n_sub <= 1:
                continue
            # The operand cannot be cached in VM across sub-block passes,
            # so every extra pass re-touches backing NVM.
            if name == "out":
                # Partial sums: each extra pass is a read-modify-write.
                nvm_read += size * (n_sub - 1)
                nvm_write += size * (n_sub - 1)
            else:
                nvm_read += size * (n_sub - 1)
        # Partial sums spill to VM whenever outputs are not the resident
        # operand and the resident set had to be sub-blocked.
        if mapping.style is not DataflowStyle.OUTPUT_STATIONARY:
            vm_traffic += out_bytes * max(0, n_sub - 1) * 2.0

        # --- times -----------------------------------------------------------
        compute_time = hw.pes.compute_time(macs, active_pes) if macs else 0.0
        vm_tech = hw.vm.technology
        io_time = (
            hw.nvm.read_time(nvm_read)
            + hw.nvm.write_time(nvm_write)
            + vm_traffic / vm_tech.read_bandwidth
        )
        if hw.overlapped_io:
            latency = max(compute_time, io_time)
        else:
            latency = compute_time + io_time

        # --- energies -----------------------------------------------------------
        bpe = layer.bytes_per_element
        compute_energy = hw.pes.compute_energy(macs)
        if layer.kind is LayerKind.POOL:
            # Pooling ops are comparisons/accumulates, not full MACs.
            compute_energy *= _POOL_OP_ENERGY_SCALE
        compute_energy += 3.0 * macs * bpe * hw.pes.cache_access_energy_per_byte
        vm_energy = vm_traffic * (
            vm_tech.read_energy_per_byte + hw.noc_energy_per_byte
        )
        nvm_energy = (hw.nvm.read_energy(nvm_read)
                      + hw.nvm.write_energy(nvm_write))
        static_energy = hw.static_power * latency

        # --- checkpointing ----------------------------------------------------------
        working_set = min(in_bytes + w_bytes + out_bytes, hw.vm.size_bytes)
        if n_tiles > 1:
            ckpt_bytes = self.checkpoint.checkpoint_bytes(working_set)
            ckpt_energy = self.checkpoint.expected_tile_overhead_energy(
                working_set
            )
            ckpt_time = (1.0 + self.checkpoint.exception_rate) * (
                self.checkpoint.save_time(working_set)
                + self.checkpoint.resume_time(working_set)
            )
        else:
            ckpt_bytes = 0.0
            ckpt_energy = 0.0
            ckpt_time = 0.0

        return TileCost(
            macs=macs,
            active_pes=active_pes,
            compute_time=compute_time,
            io_time=io_time,
            latency=latency,
            compute_energy=compute_energy,
            vm_energy=vm_energy,
            nvm_read_bytes=nvm_read,
            nvm_write_bytes=nvm_write,
            nvm_energy=nvm_energy,
            static_energy=static_energy,
            working_set_bytes=working_set,
            checkpoint_bytes=ckpt_bytes,
            checkpoint_energy=ckpt_energy,
            checkpoint_time=ckpt_time,
            fits_vm=in_bytes + w_bytes + out_bytes <= hw.vm.size_bytes,
        )

    @staticmethod
    def _split_operands(
        style: DataflowStyle, in_bytes: float, w_bytes: float,
        out_bytes: float,
    ) -> Tuple[float, Tuple[Tuple[str, float], ...]]:
        """Resident volume and named streaming volumes for a style."""
        if style is DataflowStyle.WEIGHT_STATIONARY:
            return w_bytes, (("in", in_bytes), ("out", out_bytes))
        if style is DataflowStyle.OUTPUT_STATIONARY:
            return out_bytes, (("in", in_bytes), ("w", w_bytes))
        if style is DataflowStyle.INPUT_STATIONARY:
            return in_bytes, (("w", w_bytes), ("out", out_bytes))
        raise MappingError(f"unknown dataflow style {style!r}")

    @staticmethod
    def _tile_tensor_bytes(layer: Layer, mapping: LayerMapping,
                           tile_dims: Dict[str, int]) -> Tuple[float, float, float]:
        """(input, weight, output) bytes of one energy-cycle tile."""
        bpe = layer.bytes_per_element
        d = tile_dims
        out_elems = d["K"] * d["Y"] * d["X"]

        if layer.kind in (LayerKind.CONV, LayerKind.DEPTHWISE_CONV,
                          LayerKind.POOL):
            stride = getattr(layer, "stride", 1)
            in_h = halo_extent(d["Y"], d["R"], stride)
            in_w = halo_extent(d["X"], d["S"], stride)
            if layer.kind is LayerKind.CONV:
                in_ch = d["C"]
                w_elems = d["K"] * d["C"] * d["R"] * d["S"]
            else:
                # Depthwise / pooling: channels come from K, no contraction.
                in_ch = d["K"]
                has_weights = layer.params > 0
                w_elems = d["K"] * d["R"] * d["S"] if has_weights else 0
            in_elems = in_ch * in_h * in_w
        elif layer.kind is LayerKind.DENSE:
            in_elems = d["Y"] * d["C"]
            w_elems = d["K"] * d["C"]
        elif layer.kind is LayerKind.MATMUL:
            in_elems = d["Y"] * d["C"] + d["C"] * d["K"]
            w_elems = 0
        elif layer.kind is LayerKind.EMBEDDING:
            in_elems = d["Y"]
            w_elems = d["Y"] * math.prod(layer.output_shape) // max(
                layer.output_shape[0], 1
            )
            out_elems = w_elems
        else:
            raise MappingError(f"unsupported layer kind {layer.kind!r}")

        return in_elems * bpe, w_elems * bpe, out_elems * bpe


class LayerCostBatch:
    """All requested tilings of one layer priced as one numpy sweep.

    This mirrors :meth:`DataflowCostModel._tile_cost` operation for
    operation.  The integer geometry — tile shapes, tensor volumes,
    operand split, per-style flags — is enumerated per mapping in plain
    Python (exact by construction); the floating-point cost chain then
    runs once over float64 arrays.  Elementwise ``+ * / max min ceil``
    on float64 are IEEE-754-identical to the equivalent CPython float
    ops when applied in the same order, which this class is careful to
    do, so every materialized :class:`LayerCost` equals the scalar
    oracle bit for bit.  (Fields the scalar path leaves as Python ints,
    e.g. ``nvm_read_bytes``, come back as floats of equal value.)

    ``mappings`` must already be clamped to ``layer`` — the cache-aware
    callers clamp before dispatching, exactly like the scalar path.
    """

    def __init__(self, hardware: AcceleratorConfig,
                 checkpoint: CheckpointModel, layer: Layer,
                 mappings: Sequence[LayerMapping]) -> None:
        self.hardware = hardware
        self.checkpoint = checkpoint
        self.layer = layer
        self.mappings = list(mappings)
        self._sweep()

    def __len__(self) -> int:
        return len(self.mappings)

    def _sweep(self) -> None:
        hw = self.hardware
        layer = self.layer
        n = len(self.mappings)
        split = DataflowCostModel._split_operands
        tensor_bytes = DataflowCostModel._tile_tensor_bytes
        is_embedding = layer.kind is LayerKind.EMBEDDING

        # --- per-mapping integer geometry (plain Python, exact) ------------
        macs_i = [0] * n
        active_i = [0] * n
        self.n_tiles = [0] * n
        in_b = np.empty(n)
        w_b = np.empty(n)
        out_b = np.empty(n)
        resident = np.empty(n)
        s0 = np.empty(n)
        s1 = np.empty(n)
        s0_out = np.zeros(n, dtype=bool)
        s1_out = np.zeros(n, dtype=bool)
        penalty = np.empty(n)
        reduction = np.zeros(n, dtype=bool)
        spill_out = np.zeros(n, dtype=bool)  # not OUTPUT_STATIONARY
        multi = np.zeros(n, dtype=bool)  # n_tiles > 1

        for i, mapping in enumerate(self.mappings):
            tile_dims = mapping.tile_dims(layer)
            macs_i[i] = 0 if is_embedding else math.prod(tile_dims.values())
            ib, wb, ob = tensor_bytes(layer, mapping, tile_dims)
            in_b[i], w_b[i], out_b[i] = ib, wb, ob
            spatial_extent = tile_dims[mapping.spatial_dim]
            active_i[i] = max(1, min(hw.pes.n_pes, spatial_extent))
            res, streaming = split(mapping.style, ib, wb, ob)
            resident[i] = res
            (name0, size0), (name1, size1) = streaming
            s0[i], s1[i] = size0, size1
            s0_out[i] = name0 == "out"
            s1_out[i] = name1 == "out"
            penalty[i] = hw.traffic_penalty(mapping.style)
            n_tiles = mapping.effective_n_tiles(layer)
            self.n_tiles[i] = n_tiles
            multi[i] = n_tiles > 1
            reduction[i] = mapping.tile_dim == "C" and n_tiles > 1
            spill_out[i] = mapping.style is not DataflowStyle.OUTPUT_STATIONARY

        macs = np.array(macs_i, dtype=np.float64)
        active = np.array(active_i, dtype=np.float64)
        n_tiles_f = np.array(self.n_tiles, dtype=np.float64)
        self.macs = macs_i
        self.active_pes = active_i

        # --- VM <-> PE reuse analysis --------------------------------------
        streaming_bytes = s0 + s1
        cache_budget = (_RESIDENT_CACHE_SHARE * active) * hw.pes.cache_bytes_per_pe
        n_sub = np.maximum(1.0, np.ceil(resident / np.maximum(cache_budget, 1.0)))
        vm_traffic = (resident + n_sub * streaming_bytes) * penalty

        # --- NVM traffic ----------------------------------------------------
        nvm_read = in_b + w_b
        nvm_write = out_b.copy()
        nvm_read = nvm_read + np.where(reduction, out_b, 0.0)
        vm_capacity = float(hw.vm.size_bytes)
        for sizes, is_out in ((s0, s0_out), (s1, s1_out)):
            extra = np.where((sizes > vm_capacity) & (n_sub > 1.0),
                             sizes * (n_sub - 1.0), 0.0)
            nvm_read = nvm_read + extra
            nvm_write = nvm_write + np.where(is_out, extra, 0.0)
        vm_traffic = vm_traffic + np.where(
            spill_out, (out_b * np.maximum(0.0, n_sub - 1.0)) * 2.0, 0.0)

        # --- times ------------------------------------------------------------
        compute_time = macs / (active * hw.pes.macs_per_second_per_pe)
        vm_tech = hw.vm.technology
        nvm_tech = hw.nvm.technology
        io_time = (
            nvm_read / nvm_tech.read_bandwidth
            + nvm_write / nvm_tech.write_bandwidth
            + vm_traffic / vm_tech.read_bandwidth
        )
        if hw.overlapped_io:
            latency = np.maximum(compute_time, io_time)
        else:
            latency = compute_time + io_time

        # --- energies ----------------------------------------------------------
        bpe = layer.bytes_per_element
        compute_energy = macs * hw.pes.mac_energy
        if layer.kind is LayerKind.POOL:
            compute_energy = compute_energy * _POOL_OP_ENERGY_SCALE
        compute_energy = compute_energy + (
            (3.0 * macs) * bpe) * hw.pes.cache_access_energy_per_byte
        vm_energy = vm_traffic * (
            vm_tech.read_energy_per_byte + hw.noc_energy_per_byte
        )
        nvm_energy = (nvm_read * nvm_tech.read_energy_per_byte
                      + nvm_write * nvm_tech.write_energy_per_byte)
        static_energy = hw.static_power * latency

        # --- checkpointing ----------------------------------------------------
        ckpt = self.checkpoint
        total_bytes = in_b + w_b + out_b
        working_set = np.minimum(total_bytes, vm_capacity)
        ckpt_bytes = ckpt.header_bytes + ckpt.live_fraction * working_set
        if ckpt.strategy is CheckpointStrategy.JIT:
            jit_bytes = ckpt.header_bytes + working_set
            ckpt_energy = ckpt.exception_rate * (
                jit_bytes * ckpt.nvm.write_energy_per_byte
                + jit_bytes * ckpt.nvm.read_energy_per_byte)
        else:
            ckpt_energy = (1.0 + ckpt.exception_rate) * (
                ckpt_bytes * ckpt.nvm.write_energy_per_byte
                + ckpt_bytes * ckpt.nvm.read_energy_per_byte)
        ckpt_time = (1.0 + ckpt.exception_rate) * (
            ckpt_bytes / ckpt.nvm.write_bandwidth
            + ckpt_bytes / ckpt.nvm.read_bandwidth)
        ckpt_bytes = np.where(multi, ckpt_bytes, 0.0)
        ckpt_energy = np.where(multi, ckpt_energy, 0.0)
        ckpt_time = np.where(multi, ckpt_time, 0.0)

        # --- published arrays ---------------------------------------------
        self.compute_time = compute_time
        self.io_time = io_time
        self.latency = latency
        self.compute_energy = compute_energy
        self.vm_energy = vm_energy
        self.nvm_read_bytes = nvm_read
        self.nvm_write_bytes = nvm_write
        self.nvm_energy = nvm_energy
        self.static_energy = static_energy
        self.working_set_bytes = working_set
        self.checkpoint_bytes = ckpt_bytes
        self.checkpoint_energy = ckpt_energy
        self.checkpoint_time = ckpt_time
        self.fits_vm = total_bytes <= vm_capacity
        # TileCost.energy / .total_time / LayerCost.energy, same
        # left-associated order as the scalar properties.
        self.tile_energy = (compute_energy + vm_energy + nvm_energy
                            + static_energy + ckpt_energy)
        self.total_time = latency + ckpt_time
        self.layer_energy = n_tiles_f * self.tile_energy
        self.busy_time = n_tiles_f * self.total_time

    def layer_costs(self) -> List[LayerCost]:
        """Materialize one :class:`LayerCost` per mapping, in order."""
        name = self.layer.name
        costs = []
        for i in range(len(self.mappings)):
            tile = TileCost(
                macs=self.macs[i],
                active_pes=self.active_pes[i],
                compute_time=float(self.compute_time[i]),
                io_time=float(self.io_time[i]),
                latency=float(self.latency[i]),
                compute_energy=float(self.compute_energy[i]),
                vm_energy=float(self.vm_energy[i]),
                nvm_read_bytes=float(self.nvm_read_bytes[i]),
                nvm_write_bytes=float(self.nvm_write_bytes[i]),
                nvm_energy=float(self.nvm_energy[i]),
                static_energy=float(self.static_energy[i]),
                working_set_bytes=float(self.working_set_bytes[i]),
                checkpoint_bytes=float(self.checkpoint_bytes[i]),
                checkpoint_energy=float(self.checkpoint_energy[i]),
                checkpoint_time=float(self.checkpoint_time[i]),
                fits_vm=bool(self.fits_vm[i]),
            )
            costs.append(LayerCost(layer_name=name, n_tiles=self.n_tiles[i],
                                   tile=tile))
        return costs
