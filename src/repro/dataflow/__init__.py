"""Data-centric dataflow description and cost modelling.

This package re-implements, in pure Python, the slice of MAESTRO's
data-centric mapping methodology that CHRYSALIS builds on (§III-B-2 and
Fig. 4 of the paper), extended with the paper's contribution: the
``InterTempMap`` directive that partitions a layer across *energy
cycles*, forcing all inter-tile data back through NVM.

* :mod:`repro.dataflow.directives` — TemporalMap / SpatialMap /
  InterTempMap and the dataflow-style taxonomy (WS / OS / IS).
* :mod:`repro.dataflow.tiling` — factor enumeration for tile sizes.
* :mod:`repro.dataflow.loopnest` — loop-nest rendering & trip counts.
* :mod:`repro.dataflow.mapping` — a complete per-layer mapping scheme.
* :mod:`repro.dataflow.cost_model` — the analytical reuse/energy/latency
  model that the CHRYSALIS evaluator consumes.
"""

from repro.dataflow.cost_model import DataflowCostModel, LayerCost, TileCost
from repro.dataflow.directives import (
    DataflowStyle,
    Directive,
    InterTempMap,
    MappingDirectives,
    SpatialMap,
    TemporalMap,
)
from repro.dataflow.loopnest import LoopNest
from repro.dataflow.mapping import LayerMapping
from repro.dataflow.tiling import divisors, even_split, tile_candidates

__all__ = [
    "DataflowCostModel",
    "DataflowStyle",
    "Directive",
    "InterTempMap",
    "LayerCost",
    "LayerMapping",
    "LoopNest",
    "MappingDirectives",
    "SpatialMap",
    "TemporalMap",
    "TileCost",
    "divisors",
    "even_split",
    "tile_candidates",
]
