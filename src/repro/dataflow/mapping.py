"""A complete per-layer mapping scheme.

:class:`LayerMapping` is what the SW-level optimizer searches over for
each layer (§III-C): the dataflow style, the dimension split across PEs,
and — the intermittent-specific part — which dimension ``InterTempMap``
partitions and into how many energy-cycle tiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.dataflow.directives import (
    DataflowStyle,
    InterTempMap,
    MappingDirectives,
    SpatialMap,
    TemporalMap,
)
from repro.dataflow.tiling import chunk_count, pick_intermittent_dim
from repro.errors import MappingError
from repro.workloads.layers import DIM_NAMES, Layer


@dataclass(frozen=True)
class LayerMapping:
    """Mapping of one layer onto intermittent inference hardware.

    Parameters
    ----------
    style:
        Dataflow taxonomy entry (WS / OS / IS).
    n_tiles:
        Number of energy-cycle chunks along ``tile_dim`` (the primary
        ``InterTempMap``).  1 means no split along that dimension.
    tile_dim:
        Which loop dimension the primary ``InterTempMap`` splits.
    spatial_dim:
        Which loop dimension is spread across PEs.
    secondary_dim / n_tiles_2:
        Optional second ``InterTempMap``: when even single-iteration
        chunks of ``tile_dim`` exceed one energy cycle, the cpkt tile
        must shrink along another dimension too (the paper's loop nest
        permits multi-dimensional checkpoint tiles).  The effective
        ``N_tile`` of Eq. 5 is the product of both chunk counts.
    """

    style: DataflowStyle
    n_tiles: int
    tile_dim: str
    spatial_dim: str = "K"
    secondary_dim: str | None = None
    n_tiles_2: int = 1

    def __post_init__(self) -> None:
        if self.n_tiles <= 0:
            raise MappingError(f"n_tiles must be positive, got {self.n_tiles}")
        if self.n_tiles_2 <= 0:
            raise MappingError(
                f"n_tiles_2 must be positive, got {self.n_tiles_2}"
            )
        for attr in ("tile_dim", "spatial_dim"):
            value = getattr(self, attr)
            if value not in DIM_NAMES:
                raise MappingError(
                    f"{attr}={value!r} is not one of {DIM_NAMES}"
                )
        if self.tile_dim == self.spatial_dim:
            raise MappingError(
                "tile_dim and spatial_dim must differ: the energy-cycle "
                "partition is temporal by definition"
            )
        if self.secondary_dim is not None:
            if self.secondary_dim not in DIM_NAMES:
                raise MappingError(
                    f"secondary_dim={self.secondary_dim!r} is not one of "
                    f"{DIM_NAMES}"
                )
            if self.secondary_dim in (self.tile_dim, self.spatial_dim):
                raise MappingError(
                    "secondary_dim must differ from tile_dim and "
                    "spatial_dim"
                )
        elif self.n_tiles_2 != 1:
            raise MappingError("n_tiles_2 > 1 requires a secondary_dim")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def default(cls, layer: Layer,
                style: DataflowStyle = DataflowStyle.WEIGHT_STATIONARY,
                n_tiles: int = 1) -> "LayerMapping":
        """A sensible starting mapping for ``layer``.

        The spatial dimension is the widest remaining loop so that the
        PE array actually parallelises (a Dense layer with batch 1 must
        spread its reduction or neuron dimension, not the unit batch).
        """
        dims = layer.dims()
        tile_dim = pick_intermittent_dim(dims)
        candidates = [name for name in ("K", "C", "Y", "X", "R", "S")
                      if name != tile_dim]
        spatial_dim = max(candidates, key=lambda name: dims[name])
        return cls(style=style, n_tiles=n_tiles, tile_dim=tile_dim,
                   spatial_dim=spatial_dim)

    def clamped(self, layer: Layer) -> "LayerMapping":
        """The same mapping with tile counts clamped to dimension sizes.

        A dimension of size 8 cannot be split into 20 energy-cycle
        chunks; searches may propose such points and the evaluator
        silently clamps rather than rejecting them.
        """
        dims = layer.dims()
        clamped = self
        if self.n_tiles > dims[self.tile_dim]:
            clamped = replace(clamped, n_tiles=dims[self.tile_dim])
        if (self.secondary_dim is not None
                and self.n_tiles_2 > dims[self.secondary_dim]):
            clamped = replace(clamped, n_tiles_2=dims[self.secondary_dim])
        return clamped

    # -- derived geometry ----------------------------------------------------------

    def validate_for(self, layer: Layer) -> None:
        """Raise :class:`MappingError` if this mapping cannot serve ``layer``."""
        dims = layer.dims()
        if self.n_tiles > dims[self.tile_dim]:
            raise MappingError(
                f"n_tiles={self.n_tiles} exceeds {self.tile_dim}="
                f"{dims[self.tile_dim]} on layer {layer.name!r}"
            )
        if (self.secondary_dim is not None
                and self.n_tiles_2 > dims[self.secondary_dim]):
            raise MappingError(
                f"n_tiles_2={self.n_tiles_2} exceeds {self.secondary_dim}="
                f"{dims[self.secondary_dim]} on layer {layer.name!r}"
            )

    def tile_chunk(self, layer: Layer) -> int:
        """Iterations of ``tile_dim`` covered by one energy-cycle tile."""
        dims = layer.dims()
        return math.ceil(dims[self.tile_dim] / min(self.n_tiles,
                                                   dims[self.tile_dim]))

    def secondary_chunk(self, layer: Layer) -> int:
        """Iterations of ``secondary_dim`` per tile (its full extent when
        no secondary split is configured)."""
        dims = layer.dims()
        if self.secondary_dim is None:
            return 0
        return math.ceil(dims[self.secondary_dim]
                         / min(self.n_tiles_2, dims[self.secondary_dim]))

    def effective_n_tiles(self, layer: Layer) -> int:
        """Actual number of tiles after clamping and ceil-division."""
        dims = layer.dims()
        total = chunk_count(dims[self.tile_dim], self.tile_chunk(layer))
        if self.secondary_dim is not None:
            total *= chunk_count(dims[self.secondary_dim],
                                 self.secondary_chunk(layer))
        return total

    def tile_dims(self, layer: Layer) -> Dict[str, int]:
        """Loop bounds of one energy-cycle tile (largest chunk)."""
        dims = dict(layer.dims())
        dims[self.tile_dim] = self.tile_chunk(layer)
        if self.secondary_dim is not None:
            dims[self.secondary_dim] = self.secondary_chunk(layer)
        return dims

    def to_directives(self, layer: Layer, n_pes: int) -> MappingDirectives:
        """Expand into the ordered directive list of Fig. 4.

        Outermost the ``InterTempMap`` (checkpoint tile), then the
        ``SpatialMap`` across PEs, then ``TemporalMap`` for every
        remaining dimension in canonical order.
        """
        if n_pes <= 0:
            raise MappingError(f"n_pes must be positive, got {n_pes}")
        dims = layer.dims()
        directives = []
        mapped = set()
        if self.effective_n_tiles(layer) > 1:
            if min(self.n_tiles, dims[self.tile_dim]) > 1:
                directives.append(
                    InterTempMap(self.tile_dim, self.tile_chunk(layer)))
                mapped.add(self.tile_dim)
            if (self.secondary_dim is not None
                    and min(self.n_tiles_2, dims[self.secondary_dim]) > 1):
                directives.append(
                    InterTempMap(self.secondary_dim,
                                 self.secondary_chunk(layer)))
                mapped.add(self.secondary_dim)
        spatial_size = math.ceil(dims[self.spatial_dim] / n_pes)
        directives.append(SpatialMap(self.spatial_dim, spatial_size))
        mapped.add(self.spatial_dim)
        for name in DIM_NAMES:
            if name in mapped or dims[name] == 1:
                continue
            directives.append(TemporalMap(name, 1))
        return MappingDirectives(tuple(directives))
