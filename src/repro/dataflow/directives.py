"""Data-centric mapping directives (MAESTRO style + InterTempMap).

A mapping is described by an ordered list of directives, outermost
first.  Each directive binds one loop dimension of the layer's
iteration space:

* :class:`TemporalMap` — the dimension is executed sequentially on the
  same hardware, ``size`` iterations at a time;
* :class:`SpatialMap` — the dimension is distributed across PEs,
  ``size`` iterations per PE;
* :class:`InterTempMap` — the paper's new directive: the dimension is
  partitioned across *energy cycles*.  A power interruption may occur
  between consecutive chunks, so no volatile state survives the
  boundary and all inter-chunk data must round-trip through NVM.

The dataflow-style taxonomy (§III-A input 4) labels which operand stays
resident in the PE: weight-stationary (WS), output-stationary (OS) or
input-stationary (IS).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Tuple

from repro.errors import MappingError
from repro.workloads.layers import DIM_NAMES


class DataflowStyle(Enum):
    """Which operand a PE keeps resident across its temporal loop."""

    WEIGHT_STATIONARY = "ws"
    OUTPUT_STATIONARY = "os"
    INPUT_STATIONARY = "is"

    @classmethod
    def from_string(cls, text: str) -> "DataflowStyle":
        for style in cls:
            if style.value == text.lower():
                return style
        raise MappingError(
            f"unknown dataflow style {text!r}; expected one of "
            f"{[s.value for s in cls]}"
        )


@dataclass(frozen=True)
class Directive:
    """Base mapping directive: bind ``dim`` with chunk size ``size``.

    ``offset`` is the step between consecutive chunks; it equals ``size``
    for non-overlapping dimensions and may be smaller for the sliding
    filter dimensions (R/S), matching MAESTRO's semantics.
    """

    dim: str
    size: int
    offset: int | None = None

    def __post_init__(self) -> None:
        if self.dim not in DIM_NAMES:
            raise MappingError(
                f"unknown dimension {self.dim!r}; expected one of {DIM_NAMES}"
            )
        if self.size <= 0:
            raise MappingError(f"directive size must be positive, got {self.size}")
        if self.offset is not None and self.offset <= 0:
            raise MappingError(
                f"directive offset must be positive, got {self.offset}"
            )

    @property
    def step(self) -> int:
        return self.size if self.offset is None else self.offset

    @property
    def keyword(self) -> str:
        raise NotImplementedError

    def render(self) -> str:
        """MAESTRO-like textual form, e.g. ``TemporalMap(4, 4) K``."""
        return f"{self.keyword}({self.size}, {self.step}) {self.dim}"


@dataclass(frozen=True)
class TemporalMap(Directive):
    """Execute chunks of ``dim`` one after another on the same hardware."""

    @property
    def keyword(self) -> str:
        return "TemporalMap"


@dataclass(frozen=True)
class SpatialMap(Directive):
    """Distribute chunks of ``dim`` across PEs."""

    @property
    def keyword(self) -> str:
        return "SpatialMap"


@dataclass(frozen=True)
class InterTempMap(Directive):
    """Partition ``dim`` across energy cycles (checkpoint boundaries)."""

    @property
    def keyword(self) -> str:
        return "InterTempMap"


@dataclass(frozen=True)
class MappingDirectives:
    """An ordered directive list, outermost first.

    Validity rules enforced here:

    * at most one directive per dimension;
    * every :class:`InterTempMap` must be outermost — energy-cycle
      partitioning wraps everything else (Fig. 4's loop nest puts the
      ``cpkt`` tile at the top; a multi-dimensional cpkt tile is a run
      of leading InterTempMaps);
    * at most one :class:`SpatialMap` (1-D PE array abstraction, as in
      the paper's Table V spaces).
    """

    directives: Tuple[Directive, ...]

    def __post_init__(self) -> None:
        seen = set()
        for directive in self.directives:
            if directive.dim in seen:
                raise MappingError(
                    f"dimension {directive.dim!r} mapped more than once"
                )
            seen.add(directive.dim)
        inter_positions = [i for i, d in enumerate(self.directives)
                           if isinstance(d, InterTempMap)]
        if inter_positions and inter_positions != list(
                range(len(inter_positions))):
            raise MappingError(
                "InterTempMap directives must form the outermost run"
            )
        spatial = [d for d in self.directives if isinstance(d, SpatialMap)]
        if len(spatial) > 1:
            raise MappingError("at most one SpatialMap is allowed")

    def __iter__(self) -> Iterator[Directive]:
        return iter(self.directives)

    def __len__(self) -> int:
        return len(self.directives)

    @property
    def intermittent(self) -> InterTempMap | None:
        first = self.directives[0] if self.directives else None
        return first if isinstance(first, InterTempMap) else None

    @property
    def spatial(self) -> SpatialMap | None:
        for directive in self.directives:
            if isinstance(directive, SpatialMap):
                return directive
        return None

    def render(self) -> str:
        """Multi-line textual mapping description as in Fig. 4."""
        return "\n".join(d.render() for d in self.directives)
