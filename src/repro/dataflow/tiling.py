"""Tile-size enumeration helpers.

The paper's Table IV design space defines tiling as "factors of each
dimension"; these helpers enumerate those factors and split iteration
spaces into (near-)even chunks for the intermittent partition.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.errors import MappingError


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n <= 0:
        raise MappingError(f"divisors() needs a positive integer, got {n}")
    small, large = [], []
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
    return small + large[::-1]


def even_split(total: int, parts: int) -> List[int]:
    """Split ``total`` iterations into ``parts`` near-even chunks.

    Chunk sizes differ by at most one; the larger chunks come first.
    ``parts`` may exceed ``total``, in which case the excess chunks are
    dropped (a dimension of 3 cannot be split 5 ways).
    """
    if total <= 0:
        raise MappingError(f"even_split total must be positive, got {total}")
    if parts <= 0:
        raise MappingError(f"even_split parts must be positive, got {parts}")
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def tile_candidates(dim_size: int, max_candidates: int = 12) -> List[int]:
    """Representative tile sizes for one dimension.

    All divisors when there are few; otherwise a geometric subsample so
    that search spaces stay tractable while still spanning the full
    range (the smallest and largest divisors are always kept).
    """
    divs = divisors(dim_size)
    if len(divs) <= max_candidates:
        return divs
    picked = {divs[0], divs[-1]}
    for i in range(1, max_candidates - 1):
        idx = round(i * (len(divs) - 1) / (max_candidates - 1))
        picked.add(divs[idx])
    return sorted(picked)


def tile_space(dims: Dict[str, int],
               dims_to_tile: Iterable[str]) -> Dict[str, List[int]]:
    """Candidate tile sizes per requested dimension."""
    space: Dict[str, List[int]] = {}
    for name in dims_to_tile:
        if name not in dims:
            raise MappingError(f"unknown dimension {name!r} in tile_space")
        space[name] = tile_candidates(dims[name])
    return space


def chunk_count(total: int, chunk: int) -> int:
    """Number of chunks of size ``chunk`` covering ``total`` iterations."""
    if chunk <= 0:
        raise MappingError(f"chunk must be positive, got {chunk}")
    return math.ceil(total / chunk)


def halo_extent(out_tile: int, kernel: int, stride: int) -> int:
    """Input extent needed to produce ``out_tile`` outputs of a sliding
    window with the given kernel and stride (the classic halo formula)."""
    if out_tile <= 0 or kernel <= 0 or stride <= 0:
        raise MappingError("halo_extent arguments must be positive")
    return (out_tile - 1) * stride + kernel


def pick_intermittent_dim(dims: Dict[str, int]) -> str:
    """Heuristic default for which dimension InterTempMap splits.

    Prefer the output spatial height ``Y`` (slicing rows keeps input
    halos small), then output channels ``K``, then whatever is largest.
    """
    for preferred in ("Y", "K", "X", "C"):
        if dims.get(preferred, 1) > 1:
            return preferred
    return max(dims, key=lambda name: dims[name])
