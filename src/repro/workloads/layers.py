"""Layer-level intermediate representation for DNN workloads.

Every layer exposes the six-dimensional iteration space used by
data-centric mapping descriptions (MAESTRO convention, which the paper
builds its dataflow describer on):

====  =======================================
dim   meaning
====  =======================================
K     output channels / neurons
C     input channels
R, S  filter height / width
Y, X  *output* spatial height / width
====  =======================================

so that ``MACs = K * C * R * S * Y * X`` for a standard convolution.
Dense layers degenerate to ``R = S = Y = X = 1``; depthwise convolutions
have a unit ``C`` contraction per output channel; pooling layers carry no
weights and perform comparisons instead of MACs.

Data volumes are reported in bytes for a configurable element width
(int8 by default — the precision intermittent-inference systems such as
HAWAII and iNAS deploy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Loop-dimension names in canonical order.
DIM_NAMES: Tuple[str, ...] = ("K", "C", "R", "S", "Y", "X")


class LayerKind(Enum):
    """Families a layer can belong to; the mapper specialises on these."""

    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    DENSE = "dense"
    POOL = "pool"
    MATMUL = "matmul"
    EMBEDDING = "embedding"


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ConfigurationError(
            f"kernel {kernel} / stride {stride} / padding {padding} "
            f"produce empty output for input size {size}"
        )
    return out


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    Subclasses populate the iteration-space bounds via :meth:`dims` and
    the shape bookkeeping below.  ``bytes_per_element`` is the datatype
    width shared by activations and weights.
    """

    name: str
    bytes_per_element: int = field(default=1, kw_only=True)

    def __post_init__(self) -> None:
        if self.bytes_per_element <= 0:
            raise ConfigurationError(
                f"bytes_per_element must be positive, got {self.bytes_per_element}"
            )

    # -- to be provided by subclasses -------------------------------------

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    def dims(self) -> Dict[str, int]:
        """The six loop bounds of the iteration space."""
        raise NotImplementedError

    @property
    def input_shape(self) -> Tuple[int, ...]:
        raise NotImplementedError

    @property
    def output_shape(self) -> Tuple[int, ...]:
        raise NotImplementedError

    @property
    def params(self) -> int:
        """Trainable parameter count (weights + biases)."""
        raise NotImplementedError

    # -- derived quantities --------------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of one inference of this layer."""
        d = self.dims()
        return d["K"] * d["C"] * d["R"] * d["S"] * d["Y"] * d["X"]

    @property
    def flops(self) -> int:
        """Floating-point (or int) operations: 2 per MAC."""
        return 2 * self.macs

    @property
    def input_bytes(self) -> int:
        return math.prod(self.input_shape) * self.bytes_per_element

    @property
    def output_bytes(self) -> int:
        return math.prod(self.output_shape) * self.bytes_per_element

    @property
    def weight_bytes(self) -> int:
        return self.params * self.bytes_per_element

    @property
    def total_data_bytes(self) -> int:
        """All data touched once: inputs + weights + outputs."""
        return self.input_bytes + self.weight_bytes + self.output_bytes


@dataclass(frozen=True)
class Conv2D(Layer):
    """Standard 2D convolution over an NCHW activation.

    ``kernel``/``padding`` apply to the height axis; ``kernel_w`` /
    ``padding_w`` default to the same values, so square convolutions need
    only the short spelling while 1-D-style kernels (e.g. 3x1 filters
    over time-series data) set ``kernel_w=1, padding_w=0``.
    """

    in_channels: int = 1
    out_channels: int = 1
    in_height: int = 1
    in_width: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    bias: bool = True
    kernel_w: int | None = None
    padding_w: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("in_channels", "out_channels", "in_height", "in_width",
                     "kernel", "stride"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")
        if self.padding < 0:
            raise ConfigurationError(f"padding must be non-negative on {self.name}")
        if self.kernel_w is not None and self.kernel_w <= 0:
            raise ConfigurationError(f"kernel_w must be positive on {self.name}")
        if self.padding_w is not None and self.padding_w < 0:
            raise ConfigurationError(
                f"padding_w must be non-negative on {self.name}"
            )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    @property
    def _kernel_w(self) -> int:
        return self.kernel if self.kernel_w is None else self.kernel_w

    @property
    def _padding_w(self) -> int:
        return self.padding if self.padding_w is None else self.padding_w

    @property
    def out_height(self) -> int:
        return _conv_out(self.in_height, self.kernel, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return _conv_out(self.in_width, self._kernel_w, self.stride, self._padding_w)

    def dims(self) -> Dict[str, int]:
        return {
            "K": self.out_channels,
            "C": self.in_channels,
            "R": self.kernel,
            "S": self._kernel_w,
            "Y": self.out_height,
            "X": self.out_width,
        }

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.in_channels, self.in_height, self.in_width)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.out_channels, self.out_height, self.out_width)

    @property
    def params(self) -> int:
        weights = (
            self.out_channels * self.in_channels * self.kernel * self._kernel_w
        )
        return weights + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class DepthwiseConv2D(Layer):
    """Depthwise convolution: each channel is filtered independently."""

    channels: int = 1
    in_height: int = 1
    in_width: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("channels", "in_height", "in_width", "kernel", "stride"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.DEPTHWISE_CONV

    @property
    def out_height(self) -> int:
        return _conv_out(self.in_height, self.kernel, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return _conv_out(self.in_width, self.kernel, self.stride, self.padding)

    def dims(self) -> Dict[str, int]:
        # No channel contraction: C = 1 in the MAC product, K spans channels.
        return {
            "K": self.channels,
            "C": 1,
            "R": self.kernel,
            "S": self.kernel,
            "Y": self.out_height,
            "X": self.out_width,
        }

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.channels, self.in_height, self.in_width)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.channels, self.out_height, self.out_width)

    @property
    def params(self) -> int:
        weights = self.channels * self.kernel * self.kernel
        return weights + (self.channels if self.bias else 0)


@dataclass(frozen=True)
class Dense(Layer):
    """Fully-connected layer (also used for transformer GEMMs).

    ``batch`` models a sequence dimension: a transformer projection over
    ``L`` tokens is a Dense with ``batch = L``, which lands in the ``Y``
    loop dimension so mappers can tile it.
    """

    in_features: int = 1
    out_features: int = 1
    batch: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("in_features", "out_features", "batch"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.DENSE

    def dims(self) -> Dict[str, int]:
        return {
            "K": self.out_features,
            "C": self.in_features,
            "R": 1,
            "S": 1,
            "Y": self.batch,
            "X": 1,
        }

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.batch, self.in_features)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.batch, self.out_features)

    @property
    def params(self) -> int:
        weights = self.in_features * self.out_features
        return weights + (self.out_features if self.bias else 0)


@dataclass(frozen=True)
class Pool2D(Layer):
    """Max/average pooling: no weights, one comparison/add per window item."""

    channels: int = 1
    in_height: int = 1
    in_width: int = 1
    kernel: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("channels", "in_height", "in_width", "kernel", "stride"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOL

    @property
    def out_height(self) -> int:
        return _conv_out(self.in_height, self.kernel, self.stride, 0)

    @property
    def out_width(self) -> int:
        return _conv_out(self.in_width, self.kernel, self.stride, 0)

    def dims(self) -> Dict[str, int]:
        return {
            "K": self.channels,
            "C": 1,
            "R": self.kernel,
            "S": self.kernel,
            "Y": self.out_height,
            "X": self.out_width,
        }

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.channels, self.in_height, self.in_width)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.channels, self.out_height, self.out_width)

    @property
    def params(self) -> int:
        return 0

    @property
    def flops(self) -> int:
        # One comparison (or add) per window element, not a MAC pair.
        return self.macs


@dataclass(frozen=True)
class MatMul(Layer):
    """Weight-free matrix multiply: ``(batch x contract) @ (contract x out)``.

    Used for the data-dependent products inside attention (QK^T and
    attention-weights x V), which perform MACs but carry no trainable
    parameters — both operands are activations.
    """

    contract: int = 1
    out_features: int = 1
    batch: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("contract", "out_features", "batch"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MATMUL

    def dims(self) -> Dict[str, int]:
        return {
            "K": self.out_features,
            "C": self.contract,
            "R": 1,
            "S": 1,
            "Y": self.batch,
            "X": 1,
        }

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.batch, self.contract)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.batch, self.out_features)

    @property
    def params(self) -> int:
        return 0

    @property
    def input_bytes(self) -> int:
        # Both operands are live inputs: the (batch x contract) left-hand
        # side and the (contract x out) right-hand side.
        lhs = self.batch * self.contract
        rhs = self.contract * self.out_features
        return (lhs + rhs) * self.bytes_per_element


@dataclass(frozen=True)
class Embedding(Layer):
    """Table lookup: large parameter footprint, no MACs.

    Matters for intermittent inference because the table lives in NVM and
    dominates the model's storage, even though each token only reads one
    row.  ``tokens`` rows are fetched per inference.
    """

    vocab_size: int = 1
    hidden: int = 1
    tokens: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("vocab_size", "hidden", "tokens"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive on {self.name}")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.EMBEDDING

    def dims(self) -> Dict[str, int]:
        # No compute: a degenerate iteration space.
        return {"K": 1, "C": 1, "R": 1, "S": 1, "Y": self.tokens, "X": 1}

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return (self.tokens, 1)

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return (self.tokens, self.hidden)

    @property
    def params(self) -> int:
        return self.vocab_size * self.hidden

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_bytes(self) -> int:
        # Only the fetched rows are moved at inference time; the table
        # itself stays in NVM.  Storage accounting uses ``params``.
        return self.tokens * self.hidden * self.bytes_per_element
