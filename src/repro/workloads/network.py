"""Network container: an ordered chain of layers with shape validation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workloads.layers import Layer


@dataclass(frozen=True)
class Network:
    """A feed-forward DNN described as an ordered list of layers.

    Residual connections (ResNet) are flattened into the chain: the add
    itself is negligible next to the convolutions, which is the standard
    simplification analytical accelerator models make.  Shape chaining is
    validated by element count rather than exact shape so that implicit
    flattens (conv → dense) need no dedicated layer.
    """

    name: str
    layers: Tuple[Layer, ...]
    input_shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"network {self.name!r} has no layers")
        expected = math.prod(self.input_shape)
        for layer in self.layers:
            got = math.prod(layer.input_shape)
            if got != expected:
                raise ConfigurationError(
                    f"{self.name!r}: layer {layer.name!r} expects "
                    f"{got} input elements but the previous layer "
                    f"produces {expected}"
                )
            expected = math.prod(layer.output_shape)

    @classmethod
    def chain(cls, name: str, input_shape: Sequence[int],
              layers: Sequence[Layer]) -> "Network":
        return cls(name=name, layers=tuple(layers),
                   input_shape=tuple(input_shape))

    # -- iteration ------------------------------------------------------------

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # -- aggregates ------------------------------------------------------------

    @property
    def weight_layers(self) -> List[Layer]:
        """Layers that carry parameters (what the paper counts as layers)."""
        return [layer for layer in self.layers if layer.params > 0]

    @property
    def num_weight_layers(self) -> int:
        return len(self.weight_layers)

    @property
    def params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def flops(self) -> int:
        return sum(layer.flops for layer in self.layers)

    @property
    def total_data_bytes(self) -> int:
        """Bytes touched once over a whole inference (N_data in Eq. 5)."""
        return sum(layer.total_data_bytes for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def peak_activation_bytes(self) -> int:
        """Largest single activation tensor anywhere in the network."""
        sizes = [layer.input_bytes for layer in self.layers]
        sizes.extend(layer.output_bytes for layer in self.layers)
        return max(sizes)

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, MACs, params)."""
        lines = [f"{self.name}  (input {self.input_shape})"]
        header = f"{'layer':<22}{'kind':<16}{'MACs':>14}{'params':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for layer in self.layers:
            lines.append(
                f"{layer.name:<22}{layer.kind.value:<16}"
                f"{layer.macs:>14,}{layer.params:>12,}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<22}{'':<16}{self.macs:>14,}{self.params:>12,}"
        )
        return "\n".join(lines)
