"""Builders for every network the paper evaluates.

Table IV (existing-AuT setup): Simple Conv, CIFAR-10, HAR, KWS — plus the
MNIST-CNN used in the Fig. 2(a) platform-gap comparison.

Table V (future-AuT setup): AlexNet, VGG16, ResNet18, BERT.

Where the paper's tabulated parameter/FLOP counts are mutually
inconsistent with the stated input shapes (e.g. Simple Conv: 1.2 k params
*and* 13.8 kFLOPs cannot both hold for a (3,32,32) input), we match the
quantity that drives the energy model — operation count — and record the
deviation in EXPERIMENTS.md.  Residual-shortcut 1x1 convolutions in
ResNet18 are folded out of the flattened chain (<4 % of params/FLOPs);
the HAR input is interpreted as the UCI 9-channel x 128-sample window.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.workloads.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    Layer,
    MatMul,
    Pool2D,
)
from repro.workloads.network import Network


def simple_conv() -> Network:
    """Table IV "Simple Conv": one convolution on a (3,32,32) input.

    13.8 kFLOPs, matching the paper's operation count exactly.
    """
    return Network.chain(
        "simple_conv",
        (3, 32, 32),
        [
            Conv2D(
                "conv",
                in_channels=3,
                out_channels=4,
                in_height=32,
                in_width=32,
                kernel=3,
                stride=4,
                padding=1,
            )
        ],
    )


def cifar10_cnn() -> Network:
    """Table IV CIFAR-10: a 7-weight-layer CNN, ~77 k params."""
    return Network.chain(
        "cifar10_cnn",
        (3, 32, 32),
        [
            Conv2D("conv1", in_channels=3, out_channels=8,
                   in_height=32, in_width=32, kernel=3, padding=1),
            Conv2D("conv2", in_channels=8, out_channels=16,
                   in_height=32, in_width=32, kernel=3, padding=1),
            Pool2D("pool1", channels=16, in_height=32, in_width=32),
            Conv2D("conv3", in_channels=16, out_channels=16,
                   in_height=16, in_width=16, kernel=3, padding=1),
            Conv2D("conv4", in_channels=16, out_channels=32,
                   in_height=16, in_width=16, kernel=3, padding=1),
            Pool2D("pool2", channels=32, in_height=16, in_width=16),
            Conv2D("conv5", in_channels=32, out_channels=32,
                   in_height=8, in_width=8, kernel=3, padding=1),
            Pool2D("pool3", channels=32, in_height=8, in_width=8),
            Dense("fc1", in_features=512, out_features=112),
            Dense("fc2", in_features=112, out_features=10),
        ],
    )


def har_cnn() -> Network:
    """Table IV HAR: 1-D CNN over a (9, 128) accelerometer window.

    Five weight layers, ~9.7 k params — the UCI HAR workload [58].
    """
    return Network.chain(
        "har_cnn",
        (9, 128, 1),
        [
            Conv2D("conv1", in_channels=9, out_channels=8,
                   in_height=128, in_width=1, kernel=3, stride=1,
                   padding=1, kernel_w=1, padding_w=0),
            Conv2D("conv2", in_channels=8, out_channels=16,
                   in_height=128, in_width=1, kernel=3, stride=2,
                   padding=1, kernel_w=1, padding_w=0),
            Conv2D("conv3", in_channels=16, out_channels=16,
                   in_height=64, in_width=1, kernel=3, stride=2,
                   padding=1, kernel_w=1, padding_w=0),
            Dense("fc1", in_features=512, out_features=16),
            Dense("fc2", in_features=16, out_features=6),
        ],
    )


def kws_mlp() -> Network:
    """Table IV KWS: 5-layer MLP on a 250-dim MFCC feature vector.

    ~50 k params; keyword spotting over the Speech Commands set [69].
    """
    return Network.chain(
        "kws_mlp",
        (1, 250),
        [
            Dense("fc1", in_features=250, out_features=144),
            Dense("fc2", in_features=144, out_features=64),
            Dense("fc3", in_features=64, out_features=48),
            Dense("fc4", in_features=48, out_features=32),
            Dense("fc5", in_features=32, out_features=12),
        ],
    )


def mnist_cnn() -> Network:
    """The MNIST-CNN of Fig. 2(a): LeNet-style net on a 28x28 input."""
    return Network.chain(
        "mnist_cnn",
        (1, 28, 28),
        [
            Conv2D("conv1", in_channels=1, out_channels=16,
                   in_height=28, in_width=28, kernel=5),
            Pool2D("pool1", channels=16, in_height=24, in_width=24),
            Conv2D("conv2", in_channels=16, out_channels=16,
                   in_height=12, in_width=12, kernel=5),
            Pool2D("pool2", channels=16, in_height=8, in_width=8),
            Dense("fc1", in_features=256, out_features=64),
            Dense("fc2", in_features=64, out_features=10),
        ],
    )


# ---------------------------------------------------------------------------
# Table V — future-AuT workloads
# ---------------------------------------------------------------------------


def alexnet() -> Network:
    """Table V AlexNet: the classic 227x227 network, 7 weight layers.

    The paper counts 7 layers / 58.7 M params; that matches AlexNet's
    five convolutions plus the first two fully-connected layers, so the
    1000-way classifier head is folded out.
    """
    return Network.chain(
        "alexnet",
        (3, 227, 227),
        [
            Conv2D("conv1", in_channels=3, out_channels=64,
                   in_height=227, in_width=227, kernel=11, stride=4),
            Pool2D("pool1", channels=64, in_height=55, in_width=55,
                   kernel=3, stride=2),
            Conv2D("conv2", in_channels=64, out_channels=192,
                   in_height=27, in_width=27, kernel=5, padding=2),
            Pool2D("pool2", channels=192, in_height=27, in_width=27,
                   kernel=3, stride=2),
            Conv2D("conv3", in_channels=192, out_channels=384,
                   in_height=13, in_width=13, kernel=3, padding=1),
            Conv2D("conv4", in_channels=384, out_channels=256,
                   in_height=13, in_width=13, kernel=3, padding=1),
            Conv2D("conv5", in_channels=256, out_channels=256,
                   in_height=13, in_width=13, kernel=3, padding=1),
            Pool2D("pool3", channels=256, in_height=13, in_width=13,
                   kernel=3, stride=2),
            Dense("fc6", in_features=9216, out_features=4096),
            Dense("fc7", in_features=4096, out_features=4096),
        ],
    )


def _vgg_block(index: int, in_ch: int, out_ch: int, size: int,
               convs: int) -> List[Layer]:
    layers: List[Layer] = []
    ch = in_ch
    for i in range(convs):
        layers.append(
            Conv2D(f"conv{index}_{i + 1}", in_channels=ch, out_channels=out_ch,
                   in_height=size, in_width=size, kernel=3, padding=1)
        )
        ch = out_ch
    layers.append(Pool2D(f"pool{index}", channels=out_ch,
                         in_height=size, in_width=size))
    return layers


def vgg16() -> Network:
    """Table V VGG16: 13 convolutions + 3 FC, 138 M params, 15.5 GFLOPs."""
    layers: List[Layer] = []
    layers += _vgg_block(1, 3, 64, 224, convs=2)
    layers += _vgg_block(2, 64, 128, 112, convs=2)
    layers += _vgg_block(3, 128, 256, 56, convs=3)
    layers += _vgg_block(4, 256, 512, 28, convs=3)
    layers += _vgg_block(5, 512, 512, 14, convs=3)
    layers += [
        Dense("fc1", in_features=25088, out_features=4096),
        Dense("fc2", in_features=4096, out_features=4096),
        Dense("fc3", in_features=4096, out_features=1000),
    ]
    return Network.chain("vgg16", (3, 224, 224), layers)


def _resnet_stage(index: int, in_ch: int, out_ch: int, in_size: int,
                  downsample: bool) -> List[Layer]:
    """Two basic blocks (four 3x3 convolutions) of ResNet18's main path."""
    stride = 2 if downsample else 1
    out_size = in_size // stride
    return [
        Conv2D(f"s{index}_b1_conv1", in_channels=in_ch, out_channels=out_ch,
               in_height=in_size, in_width=in_size, kernel=3,
               stride=stride, padding=1),
        Conv2D(f"s{index}_b1_conv2", in_channels=out_ch, out_channels=out_ch,
               in_height=out_size, in_width=out_size, kernel=3, padding=1),
        Conv2D(f"s{index}_b2_conv1", in_channels=out_ch, out_channels=out_ch,
               in_height=out_size, in_width=out_size, kernel=3, padding=1),
        Conv2D(f"s{index}_b2_conv2", in_channels=out_ch, out_channels=out_ch,
               in_height=out_size, in_width=out_size, kernel=3, padding=1),
    ]


def resnet18() -> Network:
    """Table V ResNet18: the main path flattened into a chain.

    conv1 + 16 stage convolutions + the classifier = 18 weight layers;
    the three 1x1 shortcut-projection convolutions (<4 % of params and
    FLOPs) are folded out because a pure chain cannot branch.
    """
    layers: List[Layer] = [
        Conv2D("conv1", in_channels=3, out_channels=64,
               in_height=224, in_width=224, kernel=7, stride=2, padding=3),
        Pool2D("pool1", channels=64, in_height=112, in_width=112,
               kernel=2, stride=2),
    ]
    layers += _resnet_stage(1, 64, 64, 56, downsample=False)
    layers += _resnet_stage(2, 64, 128, 56, downsample=True)
    layers += _resnet_stage(3, 128, 256, 28, downsample=True)
    layers += _resnet_stage(4, 256, 512, 14, downsample=True)
    layers += [
        Pool2D("gap", channels=512, in_height=7, in_width=7,
               kernel=7, stride=7),
        Dense("fc", in_features=512, out_features=1000),
    ]
    return Network.chain("resnet18", (3, 224, 224), layers)


def _bert_block(index: int, hidden: int, seq_len: int, ffn: int) -> List[Layer]:
    """One transformer encoder block flattened into a chain.

    Q/K/V projections all read the block input; flattening them in
    sequence preserves both the MAC count and the data volumes, which is
    what the analytical cost model consumes.
    """
    p = f"enc{index}"
    return [
        Dense(f"{p}_q", in_features=hidden, out_features=hidden, batch=seq_len),
        Dense(f"{p}_k", in_features=hidden, out_features=hidden, batch=seq_len),
        Dense(f"{p}_v", in_features=hidden, out_features=hidden, batch=seq_len),
        MatMul(f"{p}_qk", contract=hidden, out_features=seq_len, batch=seq_len),
        MatMul(f"{p}_av", contract=seq_len, out_features=hidden, batch=seq_len),
        Dense(f"{p}_o", in_features=hidden, out_features=hidden, batch=seq_len),
        Dense(f"{p}_ffn1", in_features=hidden, out_features=ffn, batch=seq_len),
        Dense(f"{p}_ffn2", in_features=ffn, out_features=hidden, batch=seq_len),
    ]


def bert_tiny(seq_len: int = 16) -> Network:
    """Table V BERT: 5 encoder blocks, hidden 768, plus the embedding.

    ~59 M params (35 M encoder + 23 M embedding table) and ~1 GFLOP at
    the default 16-token sequence — the edge-sized BERT of the paper.
    """
    hidden = 768
    layers: List[Layer] = [
        Embedding("embedding", vocab_size=30522, hidden=hidden, tokens=seq_len)
    ]
    for i in range(5):
        layers += _bert_block(i + 1, hidden, seq_len, ffn=4 * hidden)
    return Network.chain("bert", (seq_len, 1), layers)


def _dw_block(index: int, channels: int, out_channels: int, size: int,
              stride: int) -> List[Layer]:
    """Depthwise-separable block: depthwise 3x3 + pointwise 1x1."""
    out_size = (size + 2 - 3) // stride + 1
    return [
        DepthwiseConv2D(f"dw{index}", channels=channels, in_height=size,
                        in_width=size, kernel=3, stride=stride, padding=1),
        Conv2D(f"pw{index}", in_channels=channels,
               out_channels=out_channels, in_height=out_size,
               in_width=out_size, kernel=1),
    ]


def mobilenet_tiny() -> Network:
    """A MobileNet-style depthwise-separable CNN (extension workload).

    Not in the paper's tables; included because depthwise-separable
    networks are the natural next workload class for AuT devices and
    they exercise the :class:`DepthwiseConv2D` path of the cost model.
    ~20 k params, ~4.5 MMACs on a 96x96 input.
    """
    layers: List[Layer] = [
        Conv2D("conv1", in_channels=3, out_channels=8, in_height=96,
               in_width=96, kernel=3, stride=2, padding=1),
    ]
    layers += _dw_block(1, 8, 16, 48, stride=1)
    layers += _dw_block(2, 16, 32, 48, stride=2)
    layers += _dw_block(3, 32, 32, 24, stride=1)
    layers += _dw_block(4, 32, 64, 24, stride=2)
    layers += [
        Pool2D("gap", channels=64, in_height=12, in_width=12,
               kernel=12, stride=12),
        Dense("fc", in_features=64, out_features=10),
    ]
    return Network.chain("mobilenet_tiny", (3, 96, 96), layers)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

#: The four Table IV applications, in the paper's order.
EXISTING_AUT_WORKLOADS: Dict[str, Callable[[], Network]] = {
    "simple_conv": simple_conv,
    "cifar10": cifar10_cnn,
    "har": har_cnn,
    "kws": kws_mlp,
}

#: The four Table V applications, in the paper's order.
FUTURE_AUT_WORKLOADS: Dict[str, Callable[[], Network]] = {
    "bert": bert_tiny,
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet18": resnet18,
}

def cifar10_early_exit() -> Network:
    """Early-exit head for :func:`cifar10_cnn` (extension workload).

    The first four layers of the CIFAR-10 CNN plus a small classifier:
    easy inputs leave here at ~40 % of the full network's MACs.  Use
    with :func:`repro.sim.mix.early_exit_mix` to model input-dependent
    ("input correlation") energy demand.
    """
    full = cifar10_cnn()
    prefix = list(full.layers[:3])  # conv1, conv2, pool1
    prefix += [
        Pool2D("exit_pool", channels=16, in_height=16, in_width=16,
               kernel=4, stride=4),
        Dense("exit_fc", in_features=16 * 4 * 4, out_features=10),
    ]
    return Network.chain("cifar10_early_exit", (3, 32, 32), prefix)


#: Extension workloads beyond the paper's tables.
EXTENSION_WORKLOADS: Dict[str, Callable[[], Network]] = {
    "mnist": mnist_cnn,
    "mobilenet": mobilenet_tiny,
    "cifar10_early_exit": cifar10_early_exit,
}

_ALL = {**EXISTING_AUT_WORKLOADS, **FUTURE_AUT_WORKLOADS,
        **EXTENSION_WORKLOADS}


def workload_by_name(name: str) -> Network:
    """Build a paper workload by its registry name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names,
    listing what is available.
    """
    try:
        builder = _ALL[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(_ALL)}"
        ) from None
    return builder()
