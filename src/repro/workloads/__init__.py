"""DNN workload descriptions.

CHRYSALIS takes "a domain-specific DNN model along with its corresponding
dataset" as input.  This package provides the layer-level intermediate
representation the mapper consumes (:mod:`repro.workloads.layers`), the
network container (:mod:`repro.workloads.network`) and builders for every
network evaluated in the paper (:mod:`repro.workloads.zoo` — Tables IV
and V).
"""

from repro.workloads.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    Layer,
    LayerKind,
    MatMul,
    Pool2D,
)
from repro.workloads.network import Network
from repro.workloads.zoo import (
    EXISTING_AUT_WORKLOADS,
    EXTENSION_WORKLOADS,
    FUTURE_AUT_WORKLOADS,
    alexnet,
    bert_tiny,
    cifar10_cnn,
    har_cnn,
    kws_mlp,
    mnist_cnn,
    mobilenet_tiny,
    resnet18,
    simple_conv,
    vgg16,
    workload_by_name,
)

__all__ = [
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "EXISTING_AUT_WORKLOADS",
    "EXTENSION_WORKLOADS",
    "Embedding",
    "FUTURE_AUT_WORKLOADS",
    "Layer",
    "LayerKind",
    "MatMul",
    "Network",
    "Pool2D",
    "alexnet",
    "bert_tiny",
    "cifar10_cnn",
    "har_cnn",
    "kws_mlp",
    "mnist_cnn",
    "mobilenet_tiny",
    "resnet18",
    "simple_conv",
    "vgg16",
    "workload_by_name",
]
