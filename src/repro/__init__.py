"""CHRYSALIS — automated EA/IA co-design for Autonomous Things.

Reproduction of "A Tale of Two Domains: Exploring Efficient Architecture
Design for Truly Autonomous Things" (ISCA 2024).

Quickstart::

    from repro import Chrysalis, Objective, evaluate, zoo

    tool = Chrysalis(zoo.har_cnn(), setup="existing",
                     objective=Objective.lat_sp())
    solution = tool.generate()
    print(solution.report())

    report = evaluate(solution.design, "har")     # re-price any design
    print(report.metrics.e2e_latency)

The blessed surface is ``__all__`` below (~20 names; see docs/API.md).
Everything previously re-exported here still imports — via lazy
deprecation shims that warn once per name and point at the module the
symbol now lives in.

Package map
-----------
``repro.energy``     energy subsystem (harvesting, storage, PMIC, MPPT)
``repro.workloads``  DNN layer IR + the paper's workload zoo
``repro.dataflow``   data-centric mapping directives + cost model
``repro.hardware``   MSP430/LEA and TPU/Eyeriss-like hardware models
``repro.sim``        analytical (Eqs. 1-9) and step-based evaluation
``repro.explore``    design spaces, objectives, GA, bi-level explorer
``repro.faults``     seeded fault injection + resilience reporting
``repro.core``       the Table II usage-model API
``repro.campaign``   durable, resumable multi-scenario DSE campaigns
``repro.obs``        metrics registry, run-scoped spans, profiling
``repro.api``        the single-entry :func:`evaluate` facade
``repro.serve``      always-on evaluation service (coalesce + batch)
"""

import importlib
import warnings

from repro import obs, serve
from repro.api import (FIDELITIES, EvalRequest, EvaluationReport, evaluate,
                       evaluate_batch, evaluate_many)
from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.core.chrysalis import Chrysalis
from repro.core.result import AuTSolution
from repro.core.scenarios import Scenario
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.energy.traces import TraceEnvironment
from repro.environments import (
    EnvironmentSpec,
    ScenarioGenerator,
    environment_by_name,
    register_environment,
)
from repro.explore.objectives import Objective, ObjectiveKind
from repro.explore.space import DesignSpace
from repro.faults import FaultConfig, run_faults_sweep
from repro.sim.evaluator import ChrysalisEvaluator
from repro.workloads import zoo

__version__ = "1.1.0"

#: The blessed public surface (tests/test_public_api.py snapshots it).
__all__ = [
    "AuTDesign",
    "AuTSolution",
    "CampaignSpec",
    "Chrysalis",
    "ChrysalisEvaluator",
    "DesignSpace",
    "EnergyDesign",
    "EnvironmentSpec",
    "EvalRequest",
    "EvaluationReport",
    "FIDELITIES",
    "FaultConfig",
    "InferenceDesign",
    "LightEnvironment",
    "Objective",
    "ObjectiveKind",
    "ResultStore",
    "Scenario",
    "ScenarioGenerator",
    "TraceEnvironment",
    "__version__",
    "environment_by_name",
    "evaluate",
    "evaluate_batch",
    "evaluate_many",
    "obs",
    "register_environment",
    "run_campaign",
    "run_faults_sweep",
    "serve",
    "zoo",
]

# -- deprecation shims (PEP 562) ----------------------------------------------
#
# Names demoted from the top level in the API curation.  Each still
# resolves — lazily — but emits one DeprecationWarning per process
# naming its canonical home.

_DEPRECATED = {
    "CampaignReport": ("repro.campaign", "CampaignReport"),
    "CampaignRunner": ("repro.campaign", "CampaignRunner"),
    "RunKey": ("repro.campaign", "RunKey"),
    "EvaluationMode": ("repro.sim.evaluator", "EvaluationMode"),
    "FaultInjector": ("repro.faults", "FaultInjector"),
    "ResilienceReport": ("repro.faults", "ResilienceReport"),
    "ParetoExplorer": ("repro.explore.nsga2", "ParetoExplorer"),
    "SCENARIOS": ("repro.core.scenarios", "SCENARIOS"),
    "scenario_by_name": ("repro.core.scenarios", "scenario_by_name"),
    "WorkloadMix": ("repro.sim.mix", "WorkloadMix"),
    "early_exit_mix": ("repro.sim.mix", "early_exit_mix"),
    "grid_sweep": ("repro.explore.sweeps", "grid_sweep"),
    "sweep": ("repro.explore.sweeps", "sweep"),
    "design_from_json": ("repro.serialize", "design_from_json"),
    "design_to_json": ("repro.serialize", "design_to_json"),
    "solution_from_dict": ("repro.serialize", "solution_from_dict"),
    "solution_from_json": ("repro.serialize", "solution_from_json"),
    "solution_to_dict": ("repro.serialize", "solution_to_dict"),
    "solution_to_json": ("repro.serialize", "solution_to_json"),
}

_warned = set()


def __getattr__(name):
    try:
        module_name, attribute = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.{name} is deprecated; import it from "
            f"{module_name} instead",
            DeprecationWarning, stacklevel=2)
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: warn and resolve only once
    return value


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
