"""CHRYSALIS — automated EA/IA co-design for Autonomous Things.

Reproduction of "A Tale of Two Domains: Exploring Efficient Architecture
Design for Truly Autonomous Things" (ISCA 2024).

Quickstart::

    from repro import Chrysalis, Objective, zoo

    tool = Chrysalis(zoo.har_cnn(), setup="existing",
                     objective=Objective.lat_sp())
    solution = tool.generate()
    print(solution.report())

Package map
-----------
``repro.energy``     energy subsystem (harvesting, storage, PMIC, MPPT)
``repro.workloads``  DNN layer IR + the paper's workload zoo
``repro.dataflow``   data-centric mapping directives + cost model
``repro.hardware``   MSP430/LEA and TPU/Eyeriss-like hardware models
``repro.sim``        analytical (Eqs. 1-9) and step-based evaluation
``repro.explore``    design spaces, objectives, GA, bi-level explorer
``repro.faults``     seeded fault injection + resilience reporting
``repro.core``       the Table II usage-model API
``repro.campaign``   durable, resumable multi-scenario DSE campaigns
"""

from repro.core.chrysalis import Chrysalis
from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    RunKey,
    run_campaign,
)
from repro.core.result import AuTSolution
from repro.core.scenarios import SCENARIOS, Scenario, scenario_by_name
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.explore.nsga2 import ParetoExplorer
from repro.explore.objectives import Objective, ObjectiveKind
from repro.explore.space import DesignSpace
from repro.explore.sweeps import grid_sweep, sweep
from repro.faults import (
    FaultConfig,
    FaultInjector,
    ResilienceReport,
    run_faults_sweep,
)
from repro.serialize import (
    design_from_json,
    design_to_json,
    solution_from_dict,
    solution_from_json,
    solution_to_dict,
    solution_to_json,
)
from repro.sim.evaluator import ChrysalisEvaluator, EvaluationMode
from repro.sim.mix import WorkloadMix, early_exit_mix
from repro.workloads import zoo

__version__ = "1.0.0"

__all__ = [
    "AuTDesign",
    "AuTSolution",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "Chrysalis",
    "ChrysalisEvaluator",
    "DesignSpace",
    "EnergyDesign",
    "EvaluationMode",
    "FaultConfig",
    "FaultInjector",
    "InferenceDesign",
    "LightEnvironment",
    "Objective",
    "ObjectiveKind",
    "ParetoExplorer",
    "ResilienceReport",
    "ResultStore",
    "RunKey",
    "SCENARIOS",
    "Scenario",
    "WorkloadMix",
    "__version__",
    "design_from_json",
    "design_to_json",
    "early_exit_mix",
    "grid_sweep",
    "run_campaign",
    "run_faults_sweep",
    "scenario_by_name",
    "solution_from_dict",
    "solution_from_json",
    "solution_to_dict",
    "solution_to_json",
    "sweep",
    "zoo",
]
