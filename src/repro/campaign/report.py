"""Cross-run aggregation: winners, Pareto fronts, campaign reports.

Everything here is computed *purely from the SQLite store* — no spec,
no re-execution — so a report is reproducible from the database file
alone, long after the processes that filled it are gone.

A *scenario* is the grouping cell of Tables IV/V: one
``workload/setup/environment/objective`` combination.  Multiple seeds
of the same scenario compete and the best score wins; the campaign-wide
(panel area, latency) Pareto front comes from
:func:`repro.explore.pareto.pareto_front` over every finished run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.store import (
    STATUS_DONE,
    STATUS_EXHAUSTED,
    ResultStore,
    StoredRun,
)
from repro.errors import StoreError
from repro.explore.pareto import ParetoPoint, hypervolume_2d, pareto_front


def _scenario_points(members: List[StoredRun]) -> List[ParetoPoint]:
    """Every (panel cm^2, latency s) point a scenario cell contributed.

    A scalar run contributes its winner; an ``objective: pareto`` run
    contributes its whole stored front.
    """
    points: List[ParetoPoint] = []
    for row in members:
        if row.status != STATUS_DONE:
            continue
        if row.front:
            points.extend(
                ParetoPoint(values=(entry["panel_cm2"], entry["latency_s"]),
                            payload=row)
                for entry in row.front)
        elif row.panel_cm2 is not None and row.latency_s is not None:
            points.append(ParetoPoint(values=(row.panel_cm2, row.latency_s),
                                      payload=row))
    return points


def _hypervolume_reference(
    points_by_cell: Dict[str, List[ParetoPoint]],
) -> Optional[Tuple[float, float]]:
    """Shared worst-corner reference: 1.1x the campaign-wide nadir.

    One reference across every scenario keeps the per-scenario
    hypervolumes comparable; the 10% margin keeps nadir points from
    contributing exactly zero.
    """
    everything = [p for points in points_by_cell.values() for p in points]
    if not everything:
        return None
    return (1.1 * max(p.values[0] for p in everything),
            1.1 * max(p.values[1] for p in everything))


@dataclass(frozen=True)
class ScenarioSummary:
    """Aggregate of all seeds of one scenario cell."""

    scenario: str
    runs: int
    done: int
    failed: int
    best: Optional[StoredRun]  # lowest-score finished run, if any
    #: Runs that burned through ``max_attempts`` and will never retry.
    exhausted: int = 0
    #: Dominated (panel, latency) hypervolume of this scenario's points
    #: against the campaign-wide reference; only computed on request
    #: (``campaign report --hypervolume``).
    hypervolume: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario": self.scenario,
            "runs": self.runs,
            "done": self.done,
            "failed": self.failed,
            "exhausted": self.exhausted,
        }
        if self.hypervolume is not None:
            data["hypervolume"] = self.hypervolume
        if self.best is not None:
            data["winner"] = {
                "run_hash": self.best.run_hash,
                "seed": self.best.key.seed,
                "score": self.best.score,
                "panel_cm2": self.best.panel_cm2,
                "latency_s": self.best.latency_s,
            }
        return data


@dataclass
class CampaignReport:
    """Everything ``repro campaign report`` renders."""

    campaign: str
    counts: Dict[str, int]
    scenarios: List[ScenarioSummary] = field(default_factory=list)
    front: List[ParetoPoint] = field(default_factory=list)
    #: The shared worst-corner reference the per-scenario hypervolumes
    #: were computed against (``None`` unless they were requested).
    hypervolume_reference: Optional[Tuple[float, float]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_store(cls, store: ResultStore,
                   campaign: Optional[str] = None, *,
                   hypervolume: bool = False) -> "CampaignReport":
        """Build the report from stored rows only.

        With ``campaign=None`` the store must hold exactly one campaign
        (the common case); stores shared by several campaigns need the
        name spelled out.
        """
        if campaign is None:
            names = store.campaigns()
            if len(names) != 1:
                raise StoreError(
                    f"store holds {len(names)} campaign(s) "
                    f"({', '.join(names) or 'none'}); pass the campaign name"
                )
            campaign = names[0]
        rows = store.runs(campaign=campaign)
        if not rows:
            raise StoreError(f"store has no runs for campaign {campaign!r}")
        cells: Dict[str, List[StoredRun]] = {}
        for row in rows:
            cells.setdefault(row.scenario_label, []).append(row)
        points_by_cell = ({label: _scenario_points(members)
                           for label, members in cells.items()}
                          if hypervolume else {})
        reference = (_hypervolume_reference(points_by_cell)
                     if hypervolume else None)
        scenarios = []
        for label in sorted(cells):
            members = cells[label]
            finished = [r for r in members
                        if r.status == STATUS_DONE and r.score is not None]
            best = min(finished, key=lambda r: r.score) if finished else None
            cell_hv = None
            if reference is not None and points_by_cell.get(label):
                cell_hv = hypervolume_2d(points_by_cell[label], reference)
            scenarios.append(ScenarioSummary(
                scenario=label,
                runs=len(members),
                done=sum(1 for r in members if r.status == STATUS_DONE),
                failed=sum(1 for r in members if r.status == "failed"),
                exhausted=sum(1 for r in members
                              if r.status == STATUS_EXHAUSTED),
                best=best,
                hypervolume=cell_hv,
            ))
        return cls(
            campaign=campaign,
            counts=store.status_counts(campaign),
            scenarios=scenarios,
            front=pareto_front(store.pareto_points(campaign)),
            hypervolume_reference=reference,
        )

    # -- renderings ----------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (``repro campaign report --json``)."""
        data: Dict[str, Any] = {
            "campaign": self.campaign,
            "counts": dict(self.counts),
            "scenarios": [s.as_dict() for s in self.scenarios],
            "pareto_front": [
                {
                    "panel_cm2": point.values[0],
                    "latency_s": point.values[1],
                    "run_hash": point.payload.run_hash,
                    "scenario": point.payload.scenario_label,
                }
                for point in self.front
            ],
        }
        if self.hypervolume_reference is not None:
            data["hypervolume_reference"] = {
                "panel_cm2": self.hypervolume_reference[0],
                "latency_s": self.hypervolume_reference[1],
            }
        return data

    def render_markdown(self) -> str:
        done = self.counts.get(STATUS_DONE, 0)
        lines = [
            f"# Campaign report: {self.campaign}",
            "",
            f"{done}/{self.total} runs complete "
            f"({self.counts.get('failed', 0)} failed, "
            f"{self.counts.get(STATUS_EXHAUSTED, 0)} exhausted, "
            f"{self.counts.get('pending', 0) + self.counts.get('running', 0)}"
            " pending)",
            "",
            "## Per-scenario winners",
            "",
        ]
        with_hv = self.hypervolume_reference is not None
        if with_hv:
            reference = self.hypervolume_reference
            lines += [
                f"Hypervolume reference (1.1x campaign nadir): "
                f"panel {reference[0]:.2f} cm^2, "
                f"latency {reference[1]:.4g} s",
                "",
                "| scenario | runs | best score | panel cm^2 | latency s "
                "| hypervolume |",
                "|---|---|---|---|---|---|",
            ]
        else:
            lines += [
                "| scenario | runs | best score | panel cm^2 | latency s |",
                "|---|---|---|---|---|",
            ]
        for summary in self.scenarios:
            hv_cell = ""
            if with_hv:
                hv_cell = (" - |" if summary.hypervolume is None
                           else f" {summary.hypervolume:.4g} |")
            if summary.best is None:
                lines.append(f"| {summary.scenario} | {summary.runs} | "
                             f"(no finished run) | - | - |" + hv_cell)
                continue
            best = summary.best
            lines.append(
                f"| {summary.scenario} | {summary.runs} | {best.score:.4g} "
                f"| {best.panel_cm2:.2f} | {best.latency_s:.4g} |" + hv_cell)
        lines += [
            "",
            "## Pareto front (panel area vs latency)",
            "",
        ]
        if not self.front:
            lines.append("(no feasible finished runs)")
        else:
            lines += ["| panel cm^2 | latency s | scenario |",
                      "|---|---|---|"]
            for point in self.front:
                lines.append(f"| {point.values[0]:.2f} "
                             f"| {point.values[1]:.4g} "
                             f"| {point.payload.scenario_label} |")
        return "\n".join(lines)
