"""Cross-run aggregation: winners, Pareto fronts, campaign reports.

Everything here is computed *purely from the SQLite store* — no spec,
no re-execution — so a report is reproducible from the database file
alone, long after the processes that filled it are gone.

A *scenario* is the grouping cell of Tables IV/V: one
``workload/setup/environment/objective`` combination.  Multiple seeds
of the same scenario compete and the best score wins; the campaign-wide
(panel area, latency) Pareto front comes from
:func:`repro.explore.pareto.pareto_front` over every finished run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.campaign.store import (
    STATUS_DONE,
    STATUS_EXHAUSTED,
    ResultStore,
    StoredRun,
)
from repro.errors import StoreError
from repro.explore.pareto import ParetoPoint, pareto_front


@dataclass(frozen=True)
class ScenarioSummary:
    """Aggregate of all seeds of one scenario cell."""

    scenario: str
    runs: int
    done: int
    failed: int
    best: Optional[StoredRun]  # lowest-score finished run, if any
    #: Runs that burned through ``max_attempts`` and will never retry.
    exhausted: int = 0

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario": self.scenario,
            "runs": self.runs,
            "done": self.done,
            "failed": self.failed,
            "exhausted": self.exhausted,
        }
        if self.best is not None:
            data["winner"] = {
                "run_hash": self.best.run_hash,
                "seed": self.best.key.seed,
                "score": self.best.score,
                "panel_cm2": self.best.panel_cm2,
                "latency_s": self.best.latency_s,
            }
        return data


@dataclass
class CampaignReport:
    """Everything ``repro campaign report`` renders."""

    campaign: str
    counts: Dict[str, int]
    scenarios: List[ScenarioSummary] = field(default_factory=list)
    front: List[ParetoPoint] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_store(cls, store: ResultStore,
                   campaign: Optional[str] = None) -> "CampaignReport":
        """Build the report from stored rows only.

        With ``campaign=None`` the store must hold exactly one campaign
        (the common case); stores shared by several campaigns need the
        name spelled out.
        """
        if campaign is None:
            names = store.campaigns()
            if len(names) != 1:
                raise StoreError(
                    f"store holds {len(names)} campaign(s) "
                    f"({', '.join(names) or 'none'}); pass the campaign name"
                )
            campaign = names[0]
        rows = store.runs(campaign=campaign)
        if not rows:
            raise StoreError(f"store has no runs for campaign {campaign!r}")
        cells: Dict[str, List[StoredRun]] = {}
        for row in rows:
            cells.setdefault(row.scenario_label, []).append(row)
        scenarios = []
        for label in sorted(cells):
            members = cells[label]
            finished = [r for r in members
                        if r.status == STATUS_DONE and r.score is not None]
            best = min(finished, key=lambda r: r.score) if finished else None
            scenarios.append(ScenarioSummary(
                scenario=label,
                runs=len(members),
                done=sum(1 for r in members if r.status == STATUS_DONE),
                failed=sum(1 for r in members if r.status == "failed"),
                exhausted=sum(1 for r in members
                              if r.status == STATUS_EXHAUSTED),
                best=best,
            ))
        return cls(
            campaign=campaign,
            counts=store.status_counts(campaign),
            scenarios=scenarios,
            front=pareto_front(store.pareto_points(campaign)),
        )

    # -- renderings ----------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (``repro campaign report --json``)."""
        return {
            "campaign": self.campaign,
            "counts": dict(self.counts),
            "scenarios": [s.as_dict() for s in self.scenarios],
            "pareto_front": [
                {
                    "panel_cm2": point.values[0],
                    "latency_s": point.values[1],
                    "run_hash": point.payload.run_hash,
                    "scenario": point.payload.scenario_label,
                }
                for point in self.front
            ],
        }

    def render_markdown(self) -> str:
        done = self.counts.get(STATUS_DONE, 0)
        lines = [
            f"# Campaign report: {self.campaign}",
            "",
            f"{done}/{self.total} runs complete "
            f"({self.counts.get('failed', 0)} failed, "
            f"{self.counts.get(STATUS_EXHAUSTED, 0)} exhausted, "
            f"{self.counts.get('pending', 0) + self.counts.get('running', 0)}"
            " pending)",
            "",
            "## Per-scenario winners",
            "",
            "| scenario | runs | best score | panel cm^2 | latency s |",
            "|---|---|---|---|---|",
        ]
        for summary in self.scenarios:
            if summary.best is None:
                lines.append(f"| {summary.scenario} | {summary.runs} | "
                             f"(no finished run) | - | - |")
                continue
            best = summary.best
            lines.append(
                f"| {summary.scenario} | {summary.runs} | {best.score:.4g} "
                f"| {best.panel_cm2:.2f} | {best.latency_s:.4g} |")
        lines += [
            "",
            "## Pareto front (panel area vs latency)",
            "",
        ]
        if not self.front:
            lines.append("(no feasible finished runs)")
        else:
            lines += ["| panel cm^2 | latency s | scenario |",
                      "|---|---|---|"]
            for point in self.front:
                lines.append(f"| {point.values[0]:.2f} "
                             f"| {point.values[1]:.4g} "
                             f"| {point.payload.scenario_label} |")
        return "\n".join(lines)
