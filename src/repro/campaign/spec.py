"""Declarative campaign specifications and deterministic run keys.

The paper's headline tables are *fleets* of CHRYSALIS searches — every
cell of Tables IV/V is one (workload x environment x objective x
design-space) combination — so reproducing them needs a first-class
description of the whole grid, not a shell loop.  A
:class:`CampaignSpec` declares that grid once (and loads from JSON);
:meth:`CampaignSpec.expand` turns it into a deterministic list of
:class:`RunKey` cells, each with a content hash that names the run
forever.  The hash is what makes campaigns durable: the result store
keys rows by it, so re-expanding the same spec finds the same rows and
a re-invoked campaign resumes instead of re-running.

Hashes cover exactly the inputs that can change a search's *result*
(workload, setup, environments, objective, GA budget, seed, candidate
time budget).  Execution details that are guaranteed result-neutral —
worker-process count, store path — stay out, so the same run computed
serially or in parallel lands on the same row.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.scenarios import scenario_by_name
# SCENARIO_PREFIX is re-exported here for backward compatibility; its
# canonical home is the unified registry in repro.environments.
from repro.environments import (
    SCENARIO_PREFIX,
    Environment,
    ScenarioGenerator,
    environment_by_name,
)
from repro.errors import ConfigurationError
from repro.explore.objectives import Objective, ObjectiveKind

_SPEC_SCHEMA_VERSION = 1

_SETUPS = ("existing", "future")


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Deterministic cartesian product of named axes.

    The library's single grid-expansion code path: campaign specs and
    the structured sweep helpers (:mod:`repro.explore.sweeps`) both
    expand through it.  Cells come out in row-major order (last axis
    fastest), each as a ``{axis: value}`` dict.
    """
    cells: List[Dict[str, Any]] = [{}]
    for name, values in axes.items():
        values = list(values)
        if not values:
            raise ConfigurationError(f"grid axis {name!r} has no values")
        cells = [dict(cell, **{name: value})
                 for cell in cells for value in values]
    return cells


def resolve_environments(label: str) -> Tuple[Environment, ...]:
    """The concrete environments an environment label qualifies in.

    A thin delegate to the unified registry
    (:func:`repro.environments.environment_by_name`), kept as the
    campaign layer's historical entry point.
    """
    return environment_by_name(label)


# ---------------------------------------------------------------------------
# objectives
# ---------------------------------------------------------------------------


#: Campaign-level objective kind that is not a scalar
#: :class:`ObjectiveKind`: the run executes the NSGA-II explorer and
#: persists the whole (panel, latency) Pareto front next to a
#: representative scalar solution.
PARETO_KIND = "pareto"


@dataclass(frozen=True)
class ObjectiveSpec:
    """A serializable description of one run objective.

    The three scalar kinds mirror the paper's objectives; the extra
    ``"pareto"`` kind requests a multi-objective NSGA-II search whose
    result is a front, not a point (see
    :func:`repro.campaign.runner.execute_search`).
    """

    kind: str  # "lat" | "sp" | "lat*sp" | "pareto"
    sp_cap_cm2: Optional[float] = None
    lat_cap_s: Optional[float] = None

    def __post_init__(self) -> None:
        kinds = tuple(k.value for k in ObjectiveKind) + (PARETO_KIND,)
        if self.kind not in kinds:
            raise ConfigurationError(
                f"unknown objective kind {self.kind!r}; expected one of {kinds}"
            )
        if self.kind == "lat" and self.sp_cap_cm2 is None:
            raise ConfigurationError("objective 'lat' needs sp_cap_cm2")
        if self.kind == "sp" and self.lat_cap_s is None:
            raise ConfigurationError("objective 'sp' needs lat_cap_s")

    @classmethod
    def from_objective(cls, objective: Objective) -> "ObjectiveSpec":
        return cls(kind=objective.kind.value,
                   sp_cap_cm2=objective.sp_constraint_cm2,
                   lat_cap_s=objective.latency_constraint_s)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObjectiveSpec":
        try:
            kind = data["kind"]
        except KeyError:
            raise ConfigurationError(
                "objective entry is missing 'kind'") from None
        sp_cap = data.get("sp_cap_cm2")
        lat_cap = data.get("lat_cap_s")
        return cls(kind=str(kind),
                   sp_cap_cm2=None if sp_cap is None else float(sp_cap),
                   lat_cap_s=None if lat_cap is None else float(lat_cap))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.sp_cap_cm2 is not None:
            data["sp_cap_cm2"] = self.sp_cap_cm2
        if self.lat_cap_s is not None:
            data["lat_cap_s"] = self.lat_cap_s
        return data

    def to_objective(self) -> Objective:
        if self.kind == "lat":
            return Objective.lat(self.sp_cap_cm2)
        if self.kind == "sp":
            return Objective.sp(self.lat_cap_s)
        return Objective.lat_sp()

    def label(self) -> str:
        """Compact rendering for tables (``lat(sp<=4)``, ``lat*sp``)."""
        if self.kind == "lat":
            return f"lat(sp<={self.sp_cap_cm2:g})"
        if self.kind == "sp":
            return f"sp(lat<={self.lat_cap_s:g})"
        return self.kind


# ---------------------------------------------------------------------------
# run keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunKey:
    """One fully-determined search of a campaign grid.

    A run key is pure content: every field either changes the search
    result or names what is being searched.  :attr:`run_hash` is the
    SHA-256 of the canonical JSON form and is the run's identity in the
    result store across processes, machines, and re-invocations.
    """

    workload: str
    setup: str
    environment: str  # environment-set label or "scenario:<name>"
    objective: ObjectiveSpec
    seed: int = 0
    population: int = 12
    generations: int = 8
    candidate_time_budget_s: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "setup": self.setup,
            "environment": self.environment,
            "objective": self.objective.to_dict(),
            "seed": self.seed,
            "population": self.population,
            "generations": self.generations,
            "candidate_time_budget_s": self.candidate_time_budget_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunKey":
        try:
            return cls(
                workload=str(data["workload"]),
                setup=str(data["setup"]),
                environment=str(data["environment"]),
                objective=ObjectiveSpec.from_dict(data["objective"]),
                seed=int(data["seed"]),
                population=int(data["population"]),
                generations=int(data["generations"]),
                candidate_time_budget_s=data.get("candidate_time_budget_s"),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"run-key record is missing field {missing}") from None

    @property
    def run_hash(self) -> str:
        """Deterministic 16-hex-digit content hash of this run."""
        canonical = json.dumps(self.as_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def scenario_label(self) -> str:
        """The grouping cell for per-scenario reports (seed excluded)."""
        return (f"{self.workload}/{self.setup}/{self.environment}/"
                f"{self.objective.label()}")

    def describe(self) -> str:
        return f"{self.scenario_label} seed={self.seed} [{self.run_hash}]"

    def to_objective(self) -> Objective:
        return self.objective.to_objective()

    def resolve_environments(self) -> Tuple[Environment, ...]:
        return resolve_environments(self.environment)


# ---------------------------------------------------------------------------
# campaign specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of CHRYSALIS runs.

    The grid is ``workloads x setups x conditions x seeds`` where a
    *condition* is either an explicit (environment, objective) pair from
    the cartesian product of :attr:`environments` and :attr:`objectives`,
    or a named SWaP scenario preset (which supplies both).  An optional
    :attr:`generator` contributes seeded trace-scenario labels to the
    environment axis: expanding the same spec in any process registers
    byte-identical content-addressed scenarios, so run hashes stay
    stable across workers and machines.
    """

    name: str
    workloads: Tuple[str, ...]
    objectives: Tuple[ObjectiveSpec, ...] = ()
    scenarios: Tuple[str, ...] = ()
    setups: Tuple[str, ...] = ("existing",)
    environments: Tuple[str, ...] = ("paper",)
    seeds: Tuple[int, ...] = (0,)
    population: int = 12
    generations: int = 8
    workers: int = 1
    candidate_time_budget_s: Optional[float] = None
    #: Execution policy, not run identity: how many times a failing run
    #: is attempted (by any runner or fleet worker) before it becomes
    #: ``exhausted``.  Result-neutral — a retry of a deterministic run
    #: recomputes the same result — so it stays out of the run hash.
    max_attempts: int = 3
    #: Optional seeded trace-scenario generator whose labels join the
    #: environment axis (crossed with :attr:`objectives` like any other
    #: environment label).
    generator: Optional[ScenarioGenerator] = None

    def __post_init__(self) -> None:
        from repro.workloads import zoo

        if not self.name:
            raise ConfigurationError("campaign needs a non-empty name")
        if not self.workloads:
            raise ConfigurationError("campaign needs at least one workload")
        if not self.objectives and not self.scenarios:
            raise ConfigurationError(
                "campaign needs at least one objective or scenario")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if self.population < 2:
            raise ConfigurationError("population must be at least 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be at least 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        for setup in self.setups:
            if setup not in _SETUPS:
                raise ConfigurationError(
                    f"unknown setup {setup!r}; expected one of {_SETUPS}")
        for workload in self.workloads:
            zoo.workload_by_name(workload)  # raises with the full list
        for scenario in self.scenarios:
            scenario_by_name(scenario)
        for environment in self.environments:
            resolve_environments(environment)
        if self.generator is not None:
            # Register the generated scenarios eagerly so every process
            # that loads this spec (runner, fleet worker, reporter) can
            # resolve the labels its run keys carry.
            self.generator.expand()

    # -- expansion -----------------------------------------------------------

    def conditions(self) -> List[Tuple[str, ObjectiveSpec]]:
        """All (environment label, objective) cells of this campaign."""
        conditions: List[Tuple[str, ObjectiveSpec]] = []
        env_labels = list(self.environments)
        if self.generator is not None:
            env_labels.extend(self.generator.expand())
        if self.objectives:
            for cell in expand_grid({"environment": env_labels,
                                     "objective": self.objectives}):
                conditions.append((cell["environment"], cell["objective"]))
        for scenario in self.scenarios:
            preset = scenario_by_name(scenario)
            conditions.append((SCENARIO_PREFIX + scenario,
                               ObjectiveSpec.from_objective(preset.objective())))
        return conditions

    def expand(self) -> List[RunKey]:
        """The deterministic, duplicate-free run list of this campaign."""
        keys: List[RunKey] = []
        seen: set = set()
        for cell in expand_grid({"workload": self.workloads,
                                 "setup": self.setups,
                                 "condition": self.conditions(),
                                 "seed": self.seeds}):
            environment, objective = cell["condition"]
            key = RunKey(
                workload=cell["workload"],
                setup=cell["setup"],
                environment=environment,
                objective=objective,
                seed=cell["seed"],
                population=self.population,
                generations=self.generations,
                candidate_time_budget_s=self.candidate_time_budget_s,
            )
            if key.run_hash not in seen:
                seen.add(key.run_hash)
                keys.append(key)
        return keys

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": _SPEC_SCHEMA_VERSION,
            "name": self.name,
            "workloads": list(self.workloads),
            "setups": list(self.setups),
            "environments": list(self.environments),
            "objectives": [o.to_dict() for o in self.objectives],
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "ga": {"population": self.population,
                   "generations": self.generations,
                   "workers": self.workers},
            "max_attempts": self.max_attempts,
        }
        if self.candidate_time_budget_s is not None:
            data["candidate_time_budget_s"] = self.candidate_time_budget_s
        if self.generator is not None:
            data["generator"] = self.generator.to_dict()
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        version = data.get("schema_version", _SPEC_SCHEMA_VERSION)
        if version != _SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported campaign-spec schema version {version!r} "
                f"(expected {_SPEC_SCHEMA_VERSION})"
            )
        try:
            name = data["name"]
            workloads = data["workloads"]
        except KeyError as missing:
            raise ConfigurationError(
                f"campaign spec is missing field {missing}") from None
        ga = data.get("ga", {})
        budget = data.get("candidate_time_budget_s")
        generator = data.get("generator")
        return cls(
            name=str(name),
            workloads=tuple(str(w) for w in workloads),
            objectives=tuple(ObjectiveSpec.from_dict(o)
                             for o in data.get("objectives", ())),
            scenarios=tuple(str(s) for s in data.get("scenarios", ())),
            setups=tuple(str(s) for s in data.get("setups", ("existing",))),
            environments=tuple(str(e)
                               for e in data.get("environments", ("paper",))),
            seeds=tuple(int(s) for s in data.get("seeds", (0,))),
            population=int(ga.get("population", 12)),
            generations=int(ga.get("generations", 8)),
            workers=int(ga.get("workers", 1)),
            candidate_time_budget_s=None if budget is None else float(budget),
            max_attempts=int(data.get("max_attempts", 3)),
            generator=(None if generator is None
                       else ScenarioGenerator.from_dict(generator)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid campaign-spec JSON: {error}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("campaign-spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def from_path(cls, path) -> "CampaignSpec":
        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read campaign spec {path}: {error}") from None
        return cls.from_json(text)
