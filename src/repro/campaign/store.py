"""SQLite-backed durable result store for DSE campaigns.

A campaign's value is its accumulated results, so they must survive the
process (and the machine): :class:`ResultStore` persists one row per
:class:`~repro.campaign.spec.RunKey`, keyed by the key's content hash,
into a single SQLite file in WAL mode.  Each finished row carries the
winning solution (via :mod:`repro.serialize`), the scalar score, the
(panel, latency) Pareto coordinates, the search's throughput stats and
absorbed-failure log, and wall-clock — enough for
:mod:`repro.campaign.report` to rebuild winners and Pareto fronts from
the store alone, with no spec and no re-execution.

Since schema v3 the store is also the *coordination* substrate of the
multi-worker fleet (:mod:`repro.campaign.fleet`):

* **leases** — a worker takes a run with :meth:`claim`, which
  atomically flips the row to ``running`` and stamps it with the
  worker id and a lease deadline.  :meth:`heartbeat` extends the
  deadline (it only ever moves forward); a worker that stops
  heartbeating loses the run after one TTL, at which point
  :meth:`reap_stale` (or another worker's :meth:`claim`) re-queues it.
  Completion writes are lease-guarded: a worker that lost its lease
  cannot clobber a newer claimant's row.
* **attempt history** — every claim/finish/loss appends to the row's
  ``attempts_json`` audit trail; rows that keep failing become
  ``exhausted`` once they reach ``max_attempts`` instead of being
  retried forever.
* **worker registry** — workers announce themselves in a ``workers``
  table and heartbeat it, so ``campaign status`` can report per-worker
  liveness and throughput from the database file alone.

All timestamps come from an injectable ``clock`` (default
:func:`time.time`), which is how the lease tests run on a fake clock
with no real sleeping.

The store is schema-versioned and fails loudly: a corrupt file or a
schema from a *newer* release raises
:class:`~repro.errors.StoreError` (a :class:`ChrysalisError`) instead
of silently mixing incompatible rows; files from older releases
migrate in place on open (or open as-is with ``readonly=True``).
Writes are idempotent upserts inside bounded-retry ``BEGIN IMMEDIATE``
transactions, so concurrent workers sharing one WAL file never surface
a spurious ``database is locked`` error.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.campaign.spec import RunKey
from repro.errors import StoreError
from repro.explore.pareto import ParetoPoint, pareto_front
from repro.obs.state import OBS

_SCHEMA_VERSION = 4

#: Default lease time-to-live; also the liveness horizon ``campaign
#: status`` assumes for workers that did not record their own TTL.
DEFAULT_LEASE_TTL_S = 30.0

#: Run lifecycle states.  ``running`` rows carry a lease (owner +
#: deadline); an expired lease marks a crashed worker and makes the row
#: claimable again.  ``exhausted`` is terminal: the run failed
#: ``max_attempts`` times and is never retried automatically.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_EXHAUSTED = "exhausted"

_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED,
             STATUS_EXHAUSTED)

#: Attempt-history outcomes (the ``attempts_json`` audit trail).
OUTCOME_DONE = "done"
OUTCOME_FAILED = "failed"
OUTCOME_EXHAUSTED = "exhausted"
OUTCOME_LOST = "lost"  # lease expired: worker died or stopped heartbeating

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaign_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_hash       TEXT PRIMARY KEY,
    campaign       TEXT NOT NULL,
    workload       TEXT NOT NULL,
    setup          TEXT NOT NULL,
    environment    TEXT NOT NULL,
    objective      TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    spec_json      TEXT NOT NULL,
    status         TEXT NOT NULL DEFAULT 'pending',
    score          REAL,
    panel_cm2      REAL,
    latency_s      REAL,
    solution_json  TEXT,
    stats_json     TEXT,
    failures_json  TEXT,
    error          TEXT,
    wall_seconds   REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    updated_at     REAL NOT NULL,
    obs_json       TEXT,
    lease_owner    TEXT,
    lease_deadline REAL,
    retry_at       REAL,
    attempts_json  TEXT,
    front_json     TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_campaign ON runs (campaign, status);
CREATE TABLE IF NOT EXISTS workers (
    worker_id      TEXT PRIMARY KEY,
    campaign       TEXT NOT NULL,
    pid            INTEGER,
    host           TEXT,
    lease_ttl_s    REAL,
    started_at     REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    retired_at     REAL,
    current_run    TEXT,
    runs_done      INTEGER NOT NULL DEFAULT 0,
    runs_failed    INTEGER NOT NULL DEFAULT 0
);
"""

#: Created outside ``_SCHEMA`` because it references columns that only
#: exist after the v2 -> v3 migration has run.
_LEASE_INDEX = ("CREATE INDEX IF NOT EXISTS idx_runs_lease "
                "ON runs (campaign, status, lease_deadline)")


@dataclass(frozen=True)
class StoredRun:
    """One persisted run row, JSON blobs already decoded."""

    run_hash: str
    campaign: str
    key: RunKey
    status: str
    score: Optional[float] = None
    panel_cm2: Optional[float] = None
    latency_s: Optional[float] = None
    solution: Optional[Dict[str, Any]] = None
    stats: Optional[Dict[str, Any]] = None
    failures: Optional[List[Dict[str, Any]]] = None
    error: Optional[str] = None
    wall_seconds: Optional[float] = None
    attempts: int = 0
    updated_at: float = 0.0
    #: Per-run observability snapshot (``repro.obs`` format), present
    #: when the run executed with observability on.
    obs: Optional[Dict[str, Any]] = None
    #: Lease state (schema v3): the worker currently executing this run
    #: and the wall-clock instant its claim expires.
    lease_owner: Optional[str] = None
    lease_deadline: Optional[float] = None
    #: Earliest instant a ``failed`` row may be claimed again (capped
    #: exponential backoff; ``None`` = immediately).
    retry_at: Optional[float] = None
    #: Audit trail of every attempt: claim owner, outcome, error, time.
    attempt_history: List[Dict[str, Any]] = field(default_factory=list)
    #: Serialized Pareto front of a multi-objective ("pareto" kind) run
    #: (schema v4): a list of ``{panel_cm2, latency_s, design}`` dicts.
    front: Optional[List[Dict[str, Any]]] = None

    @property
    def scenario_label(self) -> str:
        return self.key.scenario_label

    def lease_expired(self, now: float) -> bool:
        """True for a ``running`` row whose claim has lapsed by ``now``."""
        if self.status != STATUS_RUNNING:
            return False
        return self.lease_deadline is None or self.lease_deadline <= now

    def load_solution(self):
        """The stored winning solution as an ``AuTSolution`` (or None)."""
        from repro.serialize import solution_from_dict

        if self.solution is None:
            return None
        return solution_from_dict(self.solution)


@dataclass(frozen=True)
class WorkerStatus:
    """One fleet worker as seen purely from the store."""

    worker_id: str
    campaign: str
    pid: Optional[int]
    host: Optional[str]
    lease_ttl_s: Optional[float]
    started_at: float
    last_heartbeat: float
    retired_at: Optional[float]
    current_run: Optional[str]
    runs_done: int
    runs_failed: int
    #: Liveness verdict at query time: heartbeat within two TTLs and
    #: the worker has not announced a clean exit.
    alive: bool

    @property
    def throughput_per_min(self) -> float:
        horizon = max(self.last_heartbeat - self.started_at, 1e-9)
        return 60.0 * (self.runs_done + self.runs_failed) / horizon


def _loads(text: Optional[str]):
    return None if text is None else json.loads(text)


def _history(text: Optional[str]) -> List[Dict[str, Any]]:
    return [] if text is None else json.loads(text)


def _is_locked(error: sqlite3.Error) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


class ResultStore:
    """One campaign database.  Safe to reopen; writes are upserts.

    Parameters
    ----------
    path:
        SQLite file (or ``":memory:"``).
    readonly:
        Open without migrating: the file is never written, and schema
        versions *older* than this release stay readable as-is (lease
        and attempt columns simply read as absent).  Reports and
        ``status`` work against live fleet stores this way without
        taking write locks.
    clock:
        Timestamp source for every write and lease decision (default
        :func:`time.time`).  Tests inject a fake clock here to prove
        lease expiry bounds without sleeping.
    timeout_s:
        SQLite busy timeout; concurrent writers block up to this long
        instead of erroring.
    """

    #: Bounded retries of a whole write transaction on ``database is
    #: locked`` (each retry doubles a 50 ms backoff) before the error
    #: surfaces as a :class:`StoreError`.
    _LOCK_RETRIES = 6

    def __init__(self, path, *, readonly: bool = False,
                 clock: Optional[Callable[[], float]] = None,
                 timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self.readonly = readonly
        self._clock = time.time if clock is None else clock
        if self.path != ":memory:" and not readonly:
            parent = pathlib.Path(self.path).parent
            if not parent.exists():
                raise StoreError(
                    f"store directory {parent} does not exist")
        if self.path == ":memory:" and readonly:
            raise StoreError("an in-memory store cannot be readonly")
        try:
            if readonly:
                self._conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True, timeout=timeout_s)
            else:
                self._conn = sqlite3.connect(self.path, timeout=timeout_s)
            self._conn.row_factory = sqlite3.Row
            # Autocommit at the connection level; writes run in explicit
            # BEGIN IMMEDIATE transactions (see _with_txn).
            self._conn.isolation_level = None
            self._conn.execute(
                f"PRAGMA busy_timeout={int(timeout_s * 1000)}")
            if readonly:
                self._check_readable()
            else:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
                self._init_schema()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open campaign store {self.path!r}: {error}"
            ) from None

    # -- lifecycle -----------------------------------------------------------

    def _read_version(self) -> Optional[int]:
        row = self._conn.execute(
            "SELECT value FROM campaign_meta WHERE key='schema_version'"
        ).fetchone()
        return None if row is None else int(row["value"])

    def _check_readable(self) -> None:
        try:
            version = self._read_version()
        except sqlite3.Error as error:
            raise StoreError(
                f"campaign store {self.path!r} is unreadable: {error}"
            ) from None
        if version is None or version > _SCHEMA_VERSION:
            raise StoreError(
                f"campaign store {self.path!r} has schema version "
                f"{version!r} (this release reads <= {_SCHEMA_VERSION})")

    def _init_schema(self) -> None:
        self._conn.executescript(_SCHEMA)
        with self._txn():
            version = self._read_version()
            if version is None:
                self._conn.execute(
                    "INSERT INTO campaign_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(_SCHEMA_VERSION)))
                version = _SCHEMA_VERSION
            migrations = {1: self._migrate_1_to_2, 2: self._migrate_2_to_3,
                          3: self._migrate_3_to_4}
            while version in migrations:
                migrations[version]()
                version += 1
                self._conn.execute(
                    "UPDATE campaign_meta SET value=? "
                    "WHERE key='schema_version'", (str(version),))
            if version != _SCHEMA_VERSION:
                raise StoreError(
                    f"campaign store {self.path!r} has schema version "
                    f"{version} (this release reads {_SCHEMA_VERSION})")
            self._conn.execute(_LEASE_INDEX)

    def _add_run_columns(self, *columns: str) -> None:
        """Idempotent ALTERs: only add what the table does not have."""
        present = {row["name"] for row in
                   self._conn.execute("PRAGMA table_info(runs)").fetchall()}
        for column in columns:
            if column.split()[0] not in present:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {column}")

    def _migrate_1_to_2(self) -> None:
        # v1 -> v2: the per-run observability blob.  Purely additive.
        self._add_run_columns("obs_json TEXT")

    def _migrate_2_to_3(self) -> None:
        # v2 -> v3: the fleet's lease + attempt-history columns.  Also
        # purely additive (the workers table itself is created by the
        # idempotent _SCHEMA script).
        self._add_run_columns("lease_owner TEXT", "lease_deadline REAL",
                              "retry_at REAL", "attempts_json TEXT")

    def _migrate_3_to_4(self) -> None:
        # v3 -> v4: the serialized Pareto front of multi-objective
        # ("pareto" kind) runs.  Purely additive.
        self._add_run_columns("front_json TEXT")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    # -- transactions --------------------------------------------------------

    @contextlib.contextmanager
    def _txn(self):
        """One BEGIN IMMEDIATE transaction (no retry; see _with_txn)."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def _with_txn(self, body: Callable[[], Any]) -> Any:
        """Run ``body`` in a write transaction, retrying lock conflicts.

        SQLite allows one writer at a time; with many workers sharing
        the WAL file a ``BEGIN IMMEDIATE`` (or, rarely, a statement
        inside the transaction) can still time out with ``database is
        locked``.  That is contention, not corruption, so it is retried
        with doubling backoff a bounded number of times before becoming
        a :class:`StoreError`.
        """
        if self.readonly:
            raise StoreError(
                f"campaign store {self.path!r} is open readonly")
        delay = 0.05
        for attempt in range(self._LOCK_RETRIES + 1):
            try:
                with self._txn():
                    return body()
            except sqlite3.Error as error:
                if (isinstance(error, sqlite3.OperationalError)
                        and _is_locked(error)
                        and attempt < self._LOCK_RETRIES):
                    if OBS.enabled:
                        OBS.registry.counter("store.lock_retries").inc()
                    time.sleep(delay)
                    delay *= 2
                    continue
                raise StoreError(
                    f"campaign store {self.path!r} failed: {error}"
                ) from None

    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """One autocommit statement (reads, or single-statement writes)."""
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as error:
            raise StoreError(
                f"campaign store {self.path!r} failed: {error}") from None

    # -- registration --------------------------------------------------------

    def register(self, campaign: str, keys: Iterable[RunKey]) -> int:
        """Ensure a pending row exists for every key; returns #created.

        Idempotent: keys whose rows already exist (any status) are left
        untouched, which is exactly the resume semantics — a completed
        run stays completed no matter how often the spec is re-expanded.
        """
        keys = list(keys)
        now = self._now(None)

        def body() -> int:
            created = 0
            for key in keys:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO runs (run_hash, campaign, "
                    "workload, setup, environment, objective, seed, "
                    "spec_json, status, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key.run_hash, campaign, key.workload, key.setup,
                     key.environment, key.objective.label(), key.seed,
                     json.dumps(key.as_dict(), sort_keys=True),
                     STATUS_PENDING, now))
                created += cursor.rowcount
            return created

        return self._with_txn(body)

    # -- state transitions ---------------------------------------------------

    def mark_running(self, key: RunKey) -> None:
        """Leaseless running transition (single-process runner path)."""
        now = self._now(None)
        self._with_txn(lambda: self._conn.execute(
            "UPDATE runs SET status=?, attempts=attempts+1, updated_at=? "
            "WHERE run_hash=?",
            (STATUS_RUNNING, now, key.run_hash)))

    def record_success(self, key: RunKey, *, score: float,
                       panel_cm2: float, latency_s: float,
                       solution: Dict[str, Any],
                       stats: Optional[Dict[str, Any]] = None,
                       failures: Optional[List[Dict[str, Any]]] = None,
                       wall_seconds: float = 0.0,
                       campaign: str = "",
                       obs: Optional[Dict[str, Any]] = None,
                       worker_id: Optional[str] = None,
                       front: Optional[List[Dict[str, Any]]] = None) -> bool:
        """Upsert a finished run (idempotent; works without register).

        With ``worker_id`` the write is lease-guarded: if another
        worker holds a live lease on the row (this worker's own lease
        expired and the run was reclaimed), the write is dropped and
        ``False`` returned — the live claimant's eventual write is the
        authoritative one.  Results are deterministic per run key, so a
        dropped write never loses information.
        """
        return self._finish(
            key, campaign=campaign, status=STATUS_DONE,
            outcome=OUTCOME_DONE, score=score, panel_cm2=panel_cm2,
            latency_s=latency_s, solution_json=json.dumps(solution),
            stats_json=None if stats is None else json.dumps(stats),
            failures_json=(None if failures is None
                           else json.dumps(failures)),
            error=None, wall_seconds=wall_seconds,
            obs_json=None if obs is None else json.dumps(obs),
            worker_id=worker_id,
            front_json=None if front is None else json.dumps(front),
            ) is not None

    def record_failure(self, key: RunKey, error: str,
                       failures: Optional[List[Dict[str, Any]]] = None,
                       wall_seconds: float = 0.0,
                       campaign: str = "",
                       obs: Optional[Dict[str, Any]] = None,
                       worker_id: Optional[str] = None,
                       max_attempts: Optional[int] = None,
                       retry_delay_s: Optional[float] = None,
                       ) -> Optional[str]:
        """Upsert a failed run; the campaign continues past it.

        Returns the status written (``failed``, or ``exhausted`` once
        the row has burned ``max_attempts`` attempts), or ``None`` if a
        lease guard dropped the write.  ``retry_delay_s`` schedules the
        earliest re-claim (capped-backoff retries).
        """
        return self._finish(
            key, campaign=campaign, status=STATUS_FAILED,
            outcome=OUTCOME_FAILED, score=None, panel_cm2=None,
            latency_s=None, solution_json=None, stats_json=None,
            failures_json=(None if failures is None
                           else json.dumps(failures)),
            error=str(error), wall_seconds=wall_seconds,
            obs_json=None if obs is None else json.dumps(obs),
            worker_id=worker_id, max_attempts=max_attempts,
            retry_delay_s=retry_delay_s)

    def _finish(self, key: RunKey, *, campaign: str, status: str,
                outcome: str, score, panel_cm2, latency_s, solution_json,
                stats_json, failures_json, error, wall_seconds,
                obs_json, worker_id: Optional[str],
                max_attempts: Optional[int] = None,
                retry_delay_s: Optional[float] = None,
                front_json: Optional[str] = None) -> Optional[str]:
        now = self._now(None)

        def body() -> Optional[str]:
            row = self._conn.execute(
                "SELECT status, attempts, attempts_json, lease_owner, "
                "lease_deadline FROM runs WHERE run_hash=?",
                (key.run_hash,)).fetchone()
            attempts = 1 if row is None else max(row["attempts"], 1)
            history = _history(None if row is None else row["attempts_json"])
            if worker_id is not None and row is not None:
                holder = row["lease_owner"]
                deadline = row["lease_deadline"]
                if (row["status"] == STATUS_RUNNING
                        and holder not in (None, worker_id)
                        and deadline is not None and deadline > now):
                    # Another live lease owns this run now; our claim
                    # expired somewhere along the way.
                    return None
                if row["status"] == STATUS_DONE:
                    return None  # a reclaimant already finished it
            final_status, final_outcome, retry_at = status, outcome, None
            if status == STATUS_FAILED:
                if max_attempts is not None and attempts >= max_attempts:
                    final_status = STATUS_EXHAUSTED
                    final_outcome = OUTCOME_EXHAUSTED
                elif retry_delay_s is not None:
                    retry_at = now + retry_delay_s
            entry: Dict[str, Any] = {"attempt": attempts,
                                     "worker": worker_id,
                                     "outcome": final_outcome,
                                     "wall_seconds": wall_seconds,
                                     "at": now}
            if error is not None:
                entry["error"] = error
            history.append(entry)
            self._conn.execute(
                "INSERT INTO runs (run_hash, campaign, workload, setup, "
                "environment, objective, seed, spec_json, status, score, "
                "panel_cm2, latency_s, solution_json, stats_json, "
                "failures_json, error, wall_seconds, attempts, updated_at, "
                "obs_json, lease_owner, lease_deadline, retry_at, "
                "attempts_json, front_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                "?, 1, ?, ?, NULL, NULL, ?, ?, ?) "
                "ON CONFLICT(run_hash) DO UPDATE SET "
                "status=excluded.status, score=excluded.score, "
                "panel_cm2=excluded.panel_cm2, "
                "latency_s=excluded.latency_s, "
                "solution_json=excluded.solution_json, "
                "stats_json=excluded.stats_json, "
                "failures_json=excluded.failures_json, "
                "error=excluded.error, "
                "wall_seconds=excluded.wall_seconds, "
                "updated_at=excluded.updated_at, "
                "obs_json=excluded.obs_json, "
                "lease_owner=NULL, lease_deadline=NULL, "
                "retry_at=excluded.retry_at, "
                "attempts_json=excluded.attempts_json, "
                "front_json=excluded.front_json",
                (key.run_hash, campaign, key.workload, key.setup,
                 key.environment, key.objective.label(), key.seed,
                 json.dumps(key.as_dict(), sort_keys=True), final_status,
                 score, panel_cm2, latency_s, solution_json, stats_json,
                 failures_json, error, wall_seconds, now, obs_json,
                 retry_at, json.dumps(history), front_json))
            if worker_id is not None:
                column = ("runs_done" if final_status == STATUS_DONE
                          else "runs_failed")
                self._conn.execute(
                    f"UPDATE workers SET {column}={column}+1, "
                    "current_run=NULL WHERE worker_id=?", (worker_id,))
            return final_status

        written = self._with_txn(body)
        if written is None and OBS.enabled:
            OBS.registry.counter("fleet.store.dropped_writes").inc()
        return written

    # -- leases --------------------------------------------------------------

    def claim(self, campaign: str, worker_id: str, *,
              ttl_s: float = DEFAULT_LEASE_TTL_S,
              max_attempts: Optional[int] = None,
              now: Optional[float] = None) -> Optional[StoredRun]:
        """Atomically lease the next executable run to ``worker_id``.

        Claimable rows, in stable grid order: ``pending`` rows,
        ``failed`` rows that still have attempts left and whose backoff
        (``retry_at``) has elapsed, and ``running`` rows whose lease has
        expired (crashed worker — claiming doubles as reaping).  The
        winning row flips to ``running`` with ``lease_deadline = now +
        ttl_s`` and its attempt counter incremented, all in one write
        transaction, so two workers can never claim the same row.

        Returns the claimed row, or ``None`` when nothing is claimable
        right now (which is *not* the same as the campaign being done —
        see :meth:`unfinished_count`).
        """
        now = self._now(now)

        def body() -> Optional[str]:
            row = self._conn.execute(
                "SELECT run_hash, status, lease_owner, attempts, "
                "attempts_json FROM runs WHERE campaign=? AND ("
                "status=? "
                "OR (status=? AND (? IS NULL OR attempts<?) "
                "    AND (retry_at IS NULL OR retry_at<=?)) "
                "OR (status=? AND (lease_deadline IS NULL "
                "    OR lease_deadline<=?))) "
                "ORDER BY workload, setup, environment, objective, seed "
                "LIMIT 1",
                (campaign, STATUS_PENDING,
                 STATUS_FAILED, max_attempts, max_attempts, now,
                 STATUS_RUNNING, now)).fetchone()
            if row is None:
                return None
            history = _history(row["attempts_json"])
            if row["status"] == STATUS_RUNNING:
                # Taking over an expired lease: audit the loss.
                history.append({"attempt": row["attempts"],
                                "worker": row["lease_owner"],
                                "outcome": OUTCOME_LOST, "at": now})
            self._conn.execute(
                "UPDATE runs SET status=?, lease_owner=?, lease_deadline=?, "
                "retry_at=NULL, attempts=attempts+1, attempts_json=?, "
                "updated_at=? WHERE run_hash=?",
                (STATUS_RUNNING, worker_id, now + ttl_s,
                 json.dumps(history), now, row["run_hash"]))
            self._conn.execute(
                "UPDATE workers SET current_run=?, last_heartbeat=? "
                "WHERE worker_id=?", (row["run_hash"], now, worker_id))
            return row["run_hash"]

        claimed = self._with_txn(body)
        if claimed is None:
            return None
        if OBS.enabled:
            OBS.registry.counter("fleet.store.claims").inc()
        return self.get(claimed)

    def heartbeat(self, worker_id: str, run_hash: Optional[str] = None, *,
                  ttl_s: float = DEFAULT_LEASE_TTL_S,
                  now: Optional[float] = None) -> bool:
        """Refresh worker liveness and (optionally) extend a run lease.

        The lease deadline is monotonic — it only ever moves forward —
        and extends only while this worker still owns the row.  Returns
        ``False`` if the lease was lost (expired and reclaimed), which
        tells the worker its in-flight result will be dropped.
        """
        now = self._now(now)

        def body() -> bool:
            held = True
            if run_hash is not None:
                cursor = self._conn.execute(
                    "UPDATE runs "
                    "SET lease_deadline=MAX(COALESCE(lease_deadline, 0), ?),"
                    " updated_at=? "
                    "WHERE run_hash=? AND lease_owner=? AND status=?",
                    (now + ttl_s, now, run_hash, worker_id, STATUS_RUNNING))
                held = cursor.rowcount == 1
            self._conn.execute(
                "UPDATE workers SET last_heartbeat=? WHERE worker_id=?",
                (now, worker_id))
            return held

        held = self._with_txn(body)
        if OBS.enabled:
            OBS.registry.counter("fleet.store.heartbeats").inc()
            if not held:
                OBS.registry.counter("fleet.store.lease_lost").inc()
        return held

    def reap_stale(self, campaign: Optional[str] = None, *,
                   max_attempts: Optional[int] = None,
                   now: Optional[float] = None) -> List[str]:
        """Re-queue every ``running`` row whose lease has expired.

        A dead worker's runs come back as ``pending`` (immediately
        claimable — losing a lease is the worker's fault, not the
        run's, so no backoff), or flip straight to ``exhausted`` when
        the row already burned ``max_attempts`` attempts.  Returns the
        reaped run hashes.  Idempotent and safe to call from any
        process: the coordinator does it on a timer, workers do it
        opportunistically when they find nothing to claim.
        """
        now = self._now(now)

        def body() -> List[str]:
            sql = ("SELECT run_hash, attempts, attempts_json, lease_owner "
                   "FROM runs WHERE status=? "
                   "AND (lease_deadline IS NULL OR lease_deadline<=?)")
            params: List[Any] = [STATUS_RUNNING, now]
            if campaign is not None:
                sql += " AND campaign=?"
                params.append(campaign)
            reaped = []
            for row in self._conn.execute(sql, params).fetchall():
                history = _history(row["attempts_json"])
                history.append({"attempt": row["attempts"],
                                "worker": row["lease_owner"],
                                "outcome": OUTCOME_LOST, "at": now})
                if (max_attempts is not None
                        and row["attempts"] >= max_attempts):
                    self._conn.execute(
                        "UPDATE runs SET status=?, error=?, lease_owner=NULL,"
                        " lease_deadline=NULL, retry_at=NULL, "
                        "attempts_json=?, updated_at=? WHERE run_hash=?",
                        (STATUS_EXHAUSTED,
                         f"lease expired after {row['attempts']} attempt(s)",
                         json.dumps(history), now, row["run_hash"]))
                else:
                    self._conn.execute(
                        "UPDATE runs SET status=?, lease_owner=NULL, "
                        "lease_deadline=NULL, retry_at=NULL, "
                        "attempts_json=?, updated_at=? WHERE run_hash=?",
                        (STATUS_PENDING, json.dumps(history), now,
                         row["run_hash"]))
                reaped.append(row["run_hash"])
            return reaped

        reaped = self._with_txn(body)
        if reaped and OBS.enabled:
            OBS.registry.counter("fleet.store.reaped").inc(len(reaped))
        return reaped

    def exhaust_spent(self, campaign: str, max_attempts: int,
                      now: Optional[float] = None) -> List[str]:
        """Flip ``failed`` rows with no attempts left to ``exhausted``."""
        now = self._now(now)

        def body() -> List[str]:
            rows = self._conn.execute(
                "SELECT run_hash FROM runs WHERE campaign=? AND status=? "
                "AND attempts>=?",
                (campaign, STATUS_FAILED, max_attempts)).fetchall()
            hashes = [row["run_hash"] for row in rows]
            for run_hash in hashes:
                self._conn.execute(
                    "UPDATE runs SET status=?, retry_at=NULL, updated_at=? "
                    "WHERE run_hash=?", (STATUS_EXHAUSTED, now, run_hash))
            return hashes

        return self._with_txn(body)

    # -- worker registry -----------------------------------------------------

    def register_worker(self, worker_id: str, campaign: str, *,
                        pid: Optional[int] = None,
                        host: Optional[str] = None,
                        lease_ttl_s: Optional[float] = None,
                        now: Optional[float] = None) -> None:
        """Announce a worker (idempotent; re-registering restarts it)."""
        now = self._now(now)
        self._with_txn(lambda: self._conn.execute(
            "INSERT INTO workers (worker_id, campaign, pid, host, "
            "lease_ttl_s, started_at, last_heartbeat, retired_at, "
            "current_run) VALUES (?, ?, ?, ?, ?, ?, ?, NULL, NULL) "
            "ON CONFLICT(worker_id) DO UPDATE SET "
            "campaign=excluded.campaign, pid=excluded.pid, "
            "host=excluded.host, lease_ttl_s=excluded.lease_ttl_s, "
            "started_at=excluded.started_at, "
            "last_heartbeat=excluded.last_heartbeat, "
            "retired_at=NULL, current_run=NULL",
            (worker_id, campaign, pid, host, lease_ttl_s, now, now)))

    def retire_worker(self, worker_id: str,
                      now: Optional[float] = None) -> None:
        """Record a clean worker exit (its row stays for throughput)."""
        now = self._now(now)
        self._with_txn(lambda: self._conn.execute(
            "UPDATE workers SET retired_at=?, last_heartbeat=?, "
            "current_run=NULL WHERE worker_id=?",
            (now, now, worker_id)))

    def workers_status(self, campaign: Optional[str] = None,
                       now: Optional[float] = None) -> List[WorkerStatus]:
        """Every known worker with a liveness verdict, store-only."""
        now = self._now(now)
        sql = "SELECT * FROM workers"
        params: List[str] = []
        if campaign is not None:
            sql += " WHERE campaign=?"
            params.append(campaign)
        sql += " ORDER BY worker_id"
        workers = []
        for row in self._execute(sql, params).fetchall():
            ttl = row["lease_ttl_s"] or DEFAULT_LEASE_TTL_S
            alive = (row["retired_at"] is None
                     and now - row["last_heartbeat"] <= 2 * ttl)
            workers.append(WorkerStatus(
                worker_id=row["worker_id"], campaign=row["campaign"],
                pid=row["pid"], host=row["host"],
                lease_ttl_s=row["lease_ttl_s"],
                started_at=row["started_at"],
                last_heartbeat=row["last_heartbeat"],
                retired_at=row["retired_at"],
                current_run=row["current_run"],
                runs_done=row["runs_done"], runs_failed=row["runs_failed"],
                alive=alive))
        return workers

    # -- queries -------------------------------------------------------------

    def get(self, run_hash: str) -> Optional[StoredRun]:
        row = self._execute(
            "SELECT * FROM runs WHERE run_hash=?", (run_hash,)).fetchone()
        return None if row is None else self._to_stored(row)

    def runs(self, campaign: Optional[str] = None,
             status: Optional[str] = None) -> List[StoredRun]:
        """Rows filtered by campaign and/or status, in stable key order."""
        if status is not None and status not in _STATUSES:
            raise StoreError(
                f"unknown status {status!r}; expected one of {_STATUSES}")
        sql = "SELECT * FROM runs"
        clauses, params = [], []
        if campaign is not None:
            clauses.append("campaign=?")
            params.append(campaign)
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY workload, setup, environment, objective, seed"
        return [self._to_stored(row)
                for row in self._execute(sql, params).fetchall()]

    def campaigns(self) -> List[str]:
        rows = self._execute(
            "SELECT DISTINCT campaign FROM runs ORDER BY campaign"
        ).fetchall()
        return [row["campaign"] for row in rows]

    def status_counts(self, campaign: Optional[str] = None) -> Dict[str, int]:
        """``{status: count}`` with every lifecycle state present."""
        sql = "SELECT status, COUNT(*) AS n FROM runs"
        params: List[str] = []
        if campaign is not None:
            sql += " WHERE campaign=?"
            params.append(campaign)
        sql += " GROUP BY status"
        counts = {status: 0 for status in _STATUSES}
        for row in self._execute(sql, params).fetchall():
            counts[row["status"]] = row["n"]
        return counts

    def unfinished_count(self, campaign: Optional[str] = None) -> int:
        """Rows that still need execution (not ``done``/``exhausted``)."""
        sql = ("SELECT COUNT(*) AS n FROM runs WHERE status NOT IN (?, ?)")
        params: List[str] = [STATUS_DONE, STATUS_EXHAUSTED]
        if campaign is not None:
            sql += " AND campaign=?"
            params.append(campaign)
        return self._execute(sql, params).fetchone()["n"]

    def solutions_for_training(self, campaign: Optional[str] = None,
                               workload: Optional[str] = None,
                               ) -> List[StoredRun]:
        """Rows that carry surrogate training signal, deterministically.

        ``done`` rows contribute their winning (design, score) pair plus
        any absorbed candidate failures; ``failed`` / ``exhausted`` rows
        contribute their failure log as censored labels.  Rows with
        neither a solution nor failures are omitted.  Ordering is total
        (grid order with the run hash as final tiebreaker), which is one
        half of the byte-identical-feature-matrix guarantee pinned by
        ``tests/test_surrogate.py`` — the other half is the featurizer.
        """
        sql = ("SELECT * FROM runs WHERE status IN (?, ?, ?) "
               "AND (solution_json IS NOT NULL "
               "OR failures_json IS NOT NULL)")
        params: List[Any] = [STATUS_DONE, STATUS_FAILED, STATUS_EXHAUSTED]
        if campaign is not None:
            sql += " AND campaign=?"
            params.append(campaign)
        if workload is not None:
            sql += " AND workload=?"
            params.append(workload)
        sql += (" ORDER BY workload, setup, environment, objective, seed, "
                "run_hash")
        return [self._to_stored(row)
                for row in self._execute(sql, params).fetchall()]

    # -- Pareto slices -------------------------------------------------------

    def pareto_points(self, campaign: Optional[str] = None,
                      workload: Optional[str] = None) -> List[ParetoPoint]:
        """(panel cm^2, latency s) points of every finished run.

        Payloads are the :class:`StoredRun` rows, so front points lead
        straight back to their stored solutions.
        """
        points = []
        for run in self.runs(campaign=campaign, status=STATUS_DONE):
            if workload is not None and run.key.workload != workload:
                continue
            if run.panel_cm2 is None or run.latency_s is None:
                continue
            points.append(ParetoPoint(values=(run.panel_cm2, run.latency_s),
                                      payload=run))
        return points

    def pareto_slice(self, campaign: Optional[str] = None,
                     workload: Optional[str] = None) -> List[ParetoPoint]:
        """The non-dominated front of :meth:`pareto_points`."""
        return pareto_front(self.pareto_points(campaign=campaign,
                                               workload=workload))

    # -- row decoding --------------------------------------------------------

    def _to_stored(self, row: sqlite3.Row) -> StoredRun:
        try:
            key = RunKey.from_dict(json.loads(row["spec_json"]))
        except (json.JSONDecodeError, TypeError) as error:
            raise StoreError(
                f"run {row['run_hash']} has an unreadable spec: {error}"
            ) from None
        # Columns introduced by later schema versions read as absent on
        # a pre-migration file opened with readonly=True.
        present = row.keys()

        def _col(name: str):
            return row[name] if name in present else None

        return StoredRun(
            run_hash=row["run_hash"],
            campaign=row["campaign"],
            key=key,
            status=row["status"],
            score=row["score"],
            panel_cm2=row["panel_cm2"],
            latency_s=row["latency_s"],
            solution=_loads(row["solution_json"]),
            stats=_loads(row["stats_json"]),
            failures=_loads(row["failures_json"]),
            error=row["error"],
            wall_seconds=row["wall_seconds"],
            attempts=row["attempts"],
            updated_at=row["updated_at"],
            obs=_loads(_col("obs_json")),
            lease_owner=_col("lease_owner"),
            lease_deadline=_col("lease_deadline"),
            retry_at=_col("retry_at"),
            attempt_history=_history(_col("attempts_json")),
            front=_loads(_col("front_json")),
        )
