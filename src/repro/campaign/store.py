"""SQLite-backed durable result store for DSE campaigns.

A campaign's value is its accumulated results, so they must survive the
process (and the machine): :class:`ResultStore` persists one row per
:class:`~repro.campaign.spec.RunKey`, keyed by the key's content hash,
into a single SQLite file in WAL mode.  Each finished row carries the
winning solution (via :mod:`repro.serialize`), the scalar score, the
(panel, latency) Pareto coordinates, the search's throughput stats and
absorbed-failure log, and wall-clock — enough for
:mod:`repro.campaign.report` to rebuild winners and Pareto fronts from
the store alone, with no spec and no re-execution.

The store is schema-versioned and fails loudly: a corrupt file or a
schema from a different release raises
:class:`~repro.errors.StoreError` (a :class:`ChrysalisError`) instead
of silently mixing incompatible rows.  All writes are idempotent
upserts, which is what makes campaign re-invocation safe.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.campaign.spec import RunKey
from repro.errors import StoreError
from repro.explore.pareto import ParetoPoint, pareto_front

_SCHEMA_VERSION = 2

#: Run lifecycle states.  ``running`` rows belong to a live runner — or
#: to one that crashed mid-run, which is why resume treats them as
#: pending again.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaign_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_hash      TEXT PRIMARY KEY,
    campaign      TEXT NOT NULL,
    workload      TEXT NOT NULL,
    setup         TEXT NOT NULL,
    environment   TEXT NOT NULL,
    objective     TEXT NOT NULL,
    seed          INTEGER NOT NULL,
    spec_json     TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    score         REAL,
    panel_cm2     REAL,
    latency_s     REAL,
    solution_json TEXT,
    stats_json    TEXT,
    failures_json TEXT,
    error         TEXT,
    wall_seconds  REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    updated_at    REAL NOT NULL,
    obs_json      TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_campaign ON runs (campaign, status);
"""


@dataclass(frozen=True)
class StoredRun:
    """One persisted run row, JSON blobs already decoded."""

    run_hash: str
    campaign: str
    key: RunKey
    status: str
    score: Optional[float] = None
    panel_cm2: Optional[float] = None
    latency_s: Optional[float] = None
    solution: Optional[Dict[str, Any]] = None
    stats: Optional[Dict[str, Any]] = None
    failures: Optional[List[Dict[str, Any]]] = None
    error: Optional[str] = None
    wall_seconds: Optional[float] = None
    attempts: int = 0
    updated_at: float = 0.0
    #: Per-run observability snapshot (``repro.obs`` format), present
    #: when the run executed with observability on.
    obs: Optional[Dict[str, Any]] = None

    @property
    def scenario_label(self) -> str:
        return self.key.scenario_label

    def load_solution(self):
        """The stored winning solution as an ``AuTSolution`` (or None)."""
        from repro.serialize import solution_from_dict

        if self.solution is None:
            return None
        return solution_from_dict(self.solution)


def _loads(text: Optional[str]):
    return None if text is None else json.loads(text)


class ResultStore:
    """One campaign database.  Safe to reopen; writes are upserts."""

    def __init__(self, path) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = pathlib.Path(self.path).parent
            if not parent.exists():
                raise StoreError(
                    f"store directory {parent} does not exist")
        try:
            self._conn = sqlite3.connect(self.path, timeout=30.0)
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open campaign store {self.path!r}: {error}"
            ) from None

    # -- lifecycle -----------------------------------------------------------

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM campaign_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO campaign_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(_SCHEMA_VERSION)))
            elif int(row["value"]) == 1:
                # v1 -> v2: the per-run observability blob.  Purely
                # additive, so old stores migrate in place; the table in
                # ``_SCHEMA`` already includes the column for new files.
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN obs_json TEXT")
                self._conn.execute(
                    "UPDATE campaign_meta SET value=? "
                    "WHERE key='schema_version'", (str(_SCHEMA_VERSION),))
            elif int(row["value"]) != _SCHEMA_VERSION:
                raise StoreError(
                    f"campaign store {self.path!r} has schema version "
                    f"{row['value']} (this release reads {_SCHEMA_VERSION})"
                )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        try:
            with self._conn:
                return self._conn.execute(sql, params)
        except sqlite3.Error as error:
            raise StoreError(
                f"campaign store {self.path!r} failed: {error}") from None

    # -- registration --------------------------------------------------------

    def register(self, campaign: str, keys: Iterable[RunKey]) -> int:
        """Ensure a pending row exists for every key; returns #created.

        Idempotent: keys whose rows already exist (any status) are left
        untouched, which is exactly the resume semantics — a completed
        run stays completed no matter how often the spec is re-expanded.
        """
        created = 0
        now = time.time()
        try:
            with self._conn:
                for key in keys:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO runs (run_hash, campaign, "
                        "workload, setup, environment, objective, seed, "
                        "spec_json, status, updated_at) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (key.run_hash, campaign, key.workload, key.setup,
                         key.environment, key.objective.label(), key.seed,
                         json.dumps(key.as_dict(), sort_keys=True),
                         STATUS_PENDING, now))
                    created += cursor.rowcount
        except sqlite3.Error as error:
            raise StoreError(
                f"campaign store {self.path!r} failed: {error}") from None
        return created

    # -- state transitions ---------------------------------------------------

    def mark_running(self, key: RunKey) -> None:
        self._execute(
            "UPDATE runs SET status=?, attempts=attempts+1, updated_at=? "
            "WHERE run_hash=?",
            (STATUS_RUNNING, time.time(), key.run_hash))

    def record_success(self, key: RunKey, *, score: float,
                       panel_cm2: float, latency_s: float,
                       solution: Dict[str, Any],
                       stats: Optional[Dict[str, Any]] = None,
                       failures: Optional[List[Dict[str, Any]]] = None,
                       wall_seconds: float = 0.0,
                       campaign: str = "",
                       obs: Optional[Dict[str, Any]] = None) -> None:
        """Upsert a finished run (idempotent; works without register)."""
        self._upsert(key, campaign=campaign, status=STATUS_DONE,
                     score=score, panel_cm2=panel_cm2, latency_s=latency_s,
                     solution_json=json.dumps(solution),
                     stats_json=None if stats is None else json.dumps(stats),
                     failures_json=(None if failures is None
                                    else json.dumps(failures)),
                     error=None, wall_seconds=wall_seconds,
                     obs_json=None if obs is None else json.dumps(obs))

    def record_failure(self, key: RunKey, error: str,
                       failures: Optional[List[Dict[str, Any]]] = None,
                       wall_seconds: float = 0.0,
                       campaign: str = "",
                       obs: Optional[Dict[str, Any]] = None) -> None:
        """Upsert a failed run; the campaign continues past it."""
        self._upsert(key, campaign=campaign, status=STATUS_FAILED,
                     score=None, panel_cm2=None, latency_s=None,
                     solution_json=None, stats_json=None,
                     failures_json=(None if failures is None
                                    else json.dumps(failures)),
                     error=str(error), wall_seconds=wall_seconds,
                     obs_json=None if obs is None else json.dumps(obs))

    def _upsert(self, key: RunKey, *, campaign: str, status: str,
                score, panel_cm2, latency_s, solution_json, stats_json,
                failures_json, error, wall_seconds, obs_json=None) -> None:
        self._execute(
            "INSERT INTO runs (run_hash, campaign, workload, setup, "
            "environment, objective, seed, spec_json, status, score, "
            "panel_cm2, latency_s, solution_json, stats_json, "
            "failures_json, error, wall_seconds, attempts, updated_at, "
            "obs_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1, "
            "?, ?) "
            "ON CONFLICT(run_hash) DO UPDATE SET "
            "status=excluded.status, score=excluded.score, "
            "panel_cm2=excluded.panel_cm2, latency_s=excluded.latency_s, "
            "solution_json=excluded.solution_json, "
            "stats_json=excluded.stats_json, "
            "failures_json=excluded.failures_json, error=excluded.error, "
            "wall_seconds=excluded.wall_seconds, "
            "updated_at=excluded.updated_at, obs_json=excluded.obs_json",
            (key.run_hash, campaign, key.workload, key.setup,
             key.environment, key.objective.label(), key.seed,
             json.dumps(key.as_dict(), sort_keys=True), status, score,
             panel_cm2, latency_s, solution_json, stats_json, failures_json,
             error, wall_seconds, time.time(), obs_json))

    # -- queries -------------------------------------------------------------

    def get(self, run_hash: str) -> Optional[StoredRun]:
        row = self._execute(
            "SELECT * FROM runs WHERE run_hash=?", (run_hash,)).fetchone()
        return None if row is None else self._to_stored(row)

    def runs(self, campaign: Optional[str] = None,
             status: Optional[str] = None) -> List[StoredRun]:
        """Rows filtered by campaign and/or status, in stable key order."""
        if status is not None and status not in _STATUSES:
            raise StoreError(
                f"unknown status {status!r}; expected one of {_STATUSES}")
        sql = "SELECT * FROM runs"
        clauses, params = [], []
        if campaign is not None:
            clauses.append("campaign=?")
            params.append(campaign)
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY workload, setup, environment, objective, seed"
        return [self._to_stored(row)
                for row in self._execute(sql, params).fetchall()]

    def campaigns(self) -> List[str]:
        rows = self._execute(
            "SELECT DISTINCT campaign FROM runs ORDER BY campaign"
        ).fetchall()
        return [row["campaign"] for row in rows]

    def status_counts(self, campaign: Optional[str] = None) -> Dict[str, int]:
        """``{status: count}`` with every lifecycle state present."""
        sql = "SELECT status, COUNT(*) AS n FROM runs"
        params: List[str] = []
        if campaign is not None:
            sql += " WHERE campaign=?"
            params.append(campaign)
        sql += " GROUP BY status"
        counts = {status: 0 for status in _STATUSES}
        for row in self._execute(sql, params).fetchall():
            counts[row["status"]] = row["n"]
        return counts

    # -- Pareto slices -------------------------------------------------------

    def pareto_points(self, campaign: Optional[str] = None,
                      workload: Optional[str] = None) -> List[ParetoPoint]:
        """(panel cm^2, latency s) points of every finished run.

        Payloads are the :class:`StoredRun` rows, so front points lead
        straight back to their stored solutions.
        """
        points = []
        for run in self.runs(campaign=campaign, status=STATUS_DONE):
            if workload is not None and run.key.workload != workload:
                continue
            if run.panel_cm2 is None or run.latency_s is None:
                continue
            points.append(ParetoPoint(values=(run.panel_cm2, run.latency_s),
                                      payload=run))
        return points

    def pareto_slice(self, campaign: Optional[str] = None,
                     workload: Optional[str] = None) -> List[ParetoPoint]:
        """The non-dominated front of :meth:`pareto_points`."""
        return pareto_front(self.pareto_points(campaign=campaign,
                                               workload=workload))

    # -- row decoding --------------------------------------------------------

    def _to_stored(self, row: sqlite3.Row) -> StoredRun:
        try:
            key = RunKey.from_dict(json.loads(row["spec_json"]))
        except (json.JSONDecodeError, TypeError) as error:
            raise StoreError(
                f"run {row['run_hash']} has an unreadable spec: {error}"
            ) from None
        return StoredRun(
            run_hash=row["run_hash"],
            campaign=row["campaign"],
            key=key,
            status=row["status"],
            score=row["score"],
            panel_cm2=row["panel_cm2"],
            latency_s=row["latency_s"],
            solution=_loads(row["solution_json"]),
            stats=_loads(row["stats_json"]),
            failures=_loads(row["failures_json"]),
            error=row["error"],
            wall_seconds=row["wall_seconds"],
            attempts=row["attempts"],
            updated_at=row["updated_at"],
            obs=_loads(row["obs_json"]),
        )
