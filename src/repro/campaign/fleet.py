"""Fault-tolerant multi-worker campaign execution.

This is the coordinator/worker split the ROADMAP's "heavy traffic"
item asks for, built on the v3 :class:`~repro.campaign.store.ResultStore`
lease layer rather than a bespoke message queue: the SQLite file *is*
the queue, the heartbeat channel, and the result sink, so any process
that can open the file can join the fleet — no sockets, no registry,
no single stateful coordinator to lose.

Topology::

    python -m repro campaign fleet SPEC --workers 3      (coordinator)
        |-- spawns --> python -m repro campaign worker SPEC   (local)
        |-- spawns --> python -m repro campaign worker SPEC   (local)
        |-- spawns --> python -m repro campaign worker SPEC   (local)
        |                         . . .
        |   any extra `campaign worker` on any machine sharing the file
        `-- watches the store: reaps stale leases, reports liveness

Protocol, per worker:

1. :meth:`ResultStore.claim` atomically leases the next executable run
   (``pending``, retryable ``failed``, or expired-lease ``running``)
   and stamps it ``lease_deadline = now + ttl``.
2. A daemon heartbeat thread extends the lease every ``ttl/4`` seconds
   over its own store connection while the (blocking) search runs.
3. The finished result is written through a lease-guarded upsert: if
   the worker lost its lease mid-run (it stalled past the TTL and the
   run was reclaimed), the write is dropped — results are
   deterministic per run key, so the reclaimant's eventual write is
   byte-identical anyway.
4. A failed run is re-queued with capped exponential backoff
   (deterministically jittered by run hash, so the schedule is
   reproducible) until it burns ``max_attempts`` attempts and becomes
   ``exhausted``.

A worker that dies — SIGKILL, OOM, power loss — simply stops
heartbeating: within one TTL its leases expire and any other claimant
(or the coordinator's reap loop) re-queues them.  The fleet therefore
converges with *any* non-empty subset of its workers alive, and
``tests/_chaos.py`` proves it by SIGKILLing workers mid-run and
asserting the surviving fleet still completes every run with solutions
bit-identical to a single-process :class:`CampaignRunner`.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.runner import execute_search, success_payload
from repro.campaign.spec import CampaignSpec, RunKey
from repro.campaign.store import (
    DEFAULT_LEASE_TTL_S,
    STATUS_DONE,
    STATUS_EXHAUSTED,
    ResultStore,
    StoredRun,
    WorkerStatus,
)
from repro.errors import ChrysalisError, ConfigurationError, StoreError
from repro.obs.state import OBS, run_scope

#: Chaos/test hook: a positive float here makes every worker sleep that
#: long inside each claimed run, widening the crash window the
#: SIGKILL-injection harness aims at.  Ignored (zero) in normal use.
RUN_DELAY_ENV = "REPRO_FLEET_RUN_DELAY_S"


@dataclass(frozen=True)
class FleetConfig:
    """Execution-policy knobs shared by workers and the coordinator.

    Everything here is result-neutral: it changes who executes a run
    and when, never what the run computes.
    """

    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    #: Lease-extension period; defaults to a quarter TTL so a worker
    #: survives three missed beats before losing its runs.
    heartbeat_s: Optional[float] = None
    #: Idle/watch polling period.
    poll_s: float = 0.25
    #: Failed-run backoff: ``min(cap, base * 2**(attempt-1))``, jittered.
    backoff_base_s: float = 1.0
    backoff_cap_s: float = 30.0
    #: Retry cap override; ``None`` uses the spec's ``max_attempts``.
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if self.heartbeat_s is not None \
                and self.heartbeat_s >= self.lease_ttl_s:
            raise ConfigurationError(
                "heartbeat_s must be shorter than lease_ttl_s "
                "(a beat slower than the TTL loses every lease)")
        if self.poll_s <= 0:
            raise ConfigurationError("poll_s must be positive")

    @property
    def heartbeat_interval_s(self) -> float:
        return (self.lease_ttl_s / 4.0 if self.heartbeat_s is None
                else self.heartbeat_s)

    def attempts_cap(self, spec: CampaignSpec) -> int:
        return (spec.max_attempts if self.max_attempts is None
                else self.max_attempts)


def retry_delay_s(run_hash: str, attempt: int,
                  config: FleetConfig) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter (x0.75..x1.25) decorrelates workers hammering the same
    store without making retry schedules irreproducible: it is seeded
    by (run hash, attempt), not by wall clock or PRNG state.
    """
    raw = min(config.backoff_cap_s,
              config.backoff_base_s * (2.0 ** max(0, attempt - 1)))
    digest = hashlib.sha256(
        f"{run_hash}:{attempt}".encode("utf-8")).hexdigest()
    jitter = 0.75 + 0.5 * (int(digest[:8], 16) / 0xFFFFFFFF)
    return raw * jitter


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class _LeaseHeartbeat(threading.Thread):
    """Extends one run's lease on a timer, over its own connection.

    The worker's main thread is inside a blocking search, so the lease
    must be kept alive from a sidecar thread.  SQLite connections are
    not shared across threads; the sidecar opens its own.
    """

    def __init__(self, store_path: str, worker_id: str, run_hash: str,
                 *, ttl_s: float, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat-{worker_id}")
        self.store_path = store_path
        self.worker_id = worker_id
        self.run_hash = run_hash
        self.ttl_s = ttl_s
        self.interval_s = interval_s
        self.lease_lost = False
        self._halt = threading.Event()

    def run(self) -> None:
        try:
            store = ResultStore(self.store_path)
        except StoreError:
            return
        try:
            while not self._halt.wait(self.interval_s):
                try:
                    held = store.heartbeat(self.worker_id, self.run_hash,
                                           ttl_s=self.ttl_s)
                except StoreError:
                    continue  # transient contention; the lease has slack
                if not held:
                    self.lease_lost = True
                    return
        finally:
            store.close()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=max(1.0, 2 * self.interval_s))


@dataclass
class WorkerSummary:
    """What one worker did over its lifetime."""

    worker_id: str
    claimed: int = 0
    done: int = 0
    failed: int = 0
    #: Claims whose final write was dropped because the lease expired
    #: and another worker took the run over.
    lease_lost: int = 0
    #: Stale leases this worker reaped from dead peers.
    reaped: int = 0


class CampaignWorker:
    """One fleet member: claim, heartbeat, execute, record, repeat.

    Runs until the campaign is terminal (every run ``done`` or
    ``exhausted``).  Safe to run many per store — that is the point —
    and safe to kill at any instant: held leases expire within one TTL
    and the runs are re-queued.

    Parameters
    ----------
    spec / store_path:
        What to run and where the shared store lives.
    worker_id:
        Fleet-unique name; defaults to ``host:pid``.
    config:
        Lease TTL / heartbeat / backoff policy.
    execute:
        Injectable run executor (tests); defaults to the same
        :func:`~repro.campaign.runner.execute_search` the
        single-process runner uses.
    search_workers:
        ``GAConfig.workers`` per search (result-neutral).
    """

    def __init__(self, spec: CampaignSpec, store_path, *,
                 worker_id: Optional[str] = None,
                 config: Optional[FleetConfig] = None,
                 execute: Optional[Callable[[RunKey], Tuple[Any, Any]]] = None,
                 search_workers: Optional[int] = None,
                 on_progress: Optional[Callable[[str, StoredRun], None]] = None,
                 ) -> None:
        self.spec = spec
        self.store_path = str(store_path)
        self.worker_id = worker_id or default_worker_id()
        self.config = config or FleetConfig()
        self.search_workers = (spec.workers if search_workers is None
                               else search_workers)
        self._execute = execute or self._default_execute
        self.on_progress = on_progress

    def _default_execute(self, key: RunKey) -> Tuple[Any, Any]:
        delay = float(os.environ.get(RUN_DELAY_ENV, "0") or 0.0)
        if delay > 0:
            time.sleep(delay)  # chaos-harness crash window
        return execute_search(key, workers=self.search_workers)

    # -- the loop ------------------------------------------------------------

    def run(self) -> WorkerSummary:
        summary = WorkerSummary(worker_id=self.worker_id)
        config = self.config
        campaign = self.spec.name
        with ResultStore(self.store_path) as store:
            store.register(campaign, self.spec.expand())
            store.register_worker(
                self.worker_id, campaign, pid=os.getpid(),
                host=socket.gethostname(), lease_ttl_s=config.lease_ttl_s)
            cap = config.attempts_cap(self.spec)
            while True:
                claimed = store.claim(campaign, self.worker_id,
                                      ttl_s=config.lease_ttl_s,
                                      max_attempts=cap)
                if claimed is None:
                    # Nothing claimable: reap dead peers' leases, retire
                    # spent rows, and stop once the campaign is terminal.
                    reaped = store.reap_stale(campaign, max_attempts=cap)
                    summary.reaped += len(reaped)
                    if reaped:
                        continue
                    store.exhaust_spent(campaign, cap)
                    if store.unfinished_count(campaign) == 0:
                        break
                    store.heartbeat(self.worker_id)  # visibly idle, alive
                    time.sleep(config.poll_s)
                    continue
                summary.claimed += 1
                self._run_claimed(store, claimed, summary)
            store.retire_worker(self.worker_id)
        if OBS.enabled:
            OBS.registry.counter("fleet.worker.claims").inc(summary.claimed)
            OBS.registry.counter("fleet.worker.reaped").inc(summary.reaped)
        return summary

    def _run_claimed(self, store: ResultStore, row: StoredRun,
                     summary: WorkerSummary) -> None:
        key = row.key
        config = self.config
        heartbeat = _LeaseHeartbeat(
            self.store_path, self.worker_id, row.run_hash,
            ttl_s=config.lease_ttl_s,
            interval_s=config.heartbeat_interval_s)
        heartbeat.start()
        started = time.monotonic()
        failure: Optional[ChrysalisError] = None
        solution = result = None
        with run_scope("campaign.run", run=key.run_hash[:12],
                       workload=key.workload,
                       worker=self.worker_id) as scope:
            try:
                solution, result = self._execute(key)
            except ChrysalisError as error:
                failure = error
        obs_blob = scope.snapshot() if OBS.enabled else None
        heartbeat.stop()
        wall = time.monotonic() - started
        if failure is not None:
            recorded = store.record_failure(
                key, error=f"{type(failure).__name__}: {failure}",
                wall_seconds=wall, campaign=self.spec.name, obs=obs_blob,
                worker_id=self.worker_id,
                max_attempts=config.attempts_cap(self.spec),
                retry_delay_s=retry_delay_s(row.run_hash, row.attempts,
                                            config))
            status = recorded or "lost"
            if recorded is None:
                summary.lease_lost += 1
            else:
                summary.failed += 1
        else:
            written = store.record_success(
                key, wall_seconds=wall, campaign=self.spec.name,
                obs=obs_blob, worker_id=self.worker_id,
                **success_payload(solution, result, key))
            status = STATUS_DONE if written else "lost"
            if written:
                summary.done += 1
            else:
                summary.lease_lost += 1
        if self.on_progress is not None:
            self.on_progress(status, row)


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


@dataclass
class FleetProgress:
    """Where a fleet invocation left the campaign."""

    campaign: str
    counts: Dict[str, int]
    workers: List[WorkerStatus] = field(default_factory=list)
    reaped: int = 0
    converged: bool = False
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def render(self) -> str:
        done = self.counts.get(STATUS_DONE, 0)
        lines = [
            f"campaign    : {self.campaign}",
            f"runs        : {done}/{self.total} done "
            f"({self.counts.get('failed', 0)} failed, "
            f"{self.counts.get(STATUS_EXHAUSTED, 0)} exhausted, "
            f"{self.reaped} stale lease(s) reaped)",
            f"converged   : {'yes' if self.converged else 'no'} "
            f"({self.wall_seconds:.1f}s)",
        ]
        for worker in self.workers:
            state = "alive" if worker.alive else (
                "exited" if worker.retired_at is not None else "dead")
            lines.append(
                f"  [{state:<6}] {worker.worker_id} "
                f"pid={worker.pid} done={worker.runs_done} "
                f"failed={worker.runs_failed} "
                f"({worker.throughput_per_min:.1f} runs/min)")
        return "\n".join(lines)


def spawn_worker(spec_path, store_path, worker_id: str,
                 config: FleetConfig,
                 python: Optional[str] = None) -> subprocess.Popen:
    """Start one ``campaign worker`` subprocess against a shared store."""
    import repro

    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH")) if p)
    argv = [python or sys.executable, "-m", "repro", "campaign", "worker",
            str(spec_path), "--store", str(store_path),
            "--worker-id", worker_id,
            "--lease-ttl", str(config.lease_ttl_s),
            "--heartbeat-every", str(config.heartbeat_interval_s),
            "--poll", str(config.poll_s)]
    if config.max_attempts is not None:
        argv += ["--max-attempts", str(config.max_attempts)]
    return subprocess.Popen(argv, env=env)


class FleetCoordinator:
    """Spawns local workers and babysits the store until convergence.

    The coordinator holds no campaign state of its own — everything it
    knows it reads from the store, and everything it does (reaping
    stale leases, retiring spent rows) any worker also does
    opportunistically.  Killing the coordinator mid-campaign loses
    nothing: re-invoking it (or just running more workers) resumes.
    """

    def __init__(self, spec: CampaignSpec, spec_path, store_path, *,
                 n_workers: int = 2,
                 config: Optional[FleetConfig] = None) -> None:
        if n_workers < 1:
            raise ConfigurationError("a fleet needs at least one worker")
        self.spec = spec
        self.spec_path = str(spec_path)
        self.store_path = str(store_path)
        self.n_workers = n_workers
        self.config = config or FleetConfig()
        self.children: Dict[str, subprocess.Popen] = {}
        self._reaped = 0

    def start(self) -> None:
        """Register the grid and spawn the local worker processes."""
        with ResultStore(self.store_path) as store:
            store.register(self.spec.name, self.spec.expand())
        stamp = os.getpid()
        for index in range(self.n_workers):
            worker_id = f"fleet-{stamp}-w{index}"
            self.children[worker_id] = spawn_worker(
                self.spec_path, self.store_path, worker_id, self.config)

    def live_children(self) -> Dict[str, subprocess.Popen]:
        return {worker_id: proc for worker_id, proc in self.children.items()
                if proc.poll() is None}

    def wait(self,
             on_tick: Optional[Callable[["FleetCoordinator", ResultStore],
                                        None]] = None,
             timeout_s: Optional[float] = None) -> FleetProgress:
        """Watch until the campaign is terminal or no worker is left.

        ``on_tick(coordinator, store)`` runs every poll period — the
        chaos harness uses it to aim SIGKILLs.  ``timeout_s`` is a
        hard stop that terminates the children (the campaign stays
        resumable; nothing is lost but time).
        """
        config = self.config
        campaign = self.spec.name
        cap = config.attempts_cap(self.spec)
        started = time.monotonic()
        converged = False
        with ResultStore(self.store_path) as store:
            while True:
                self._reaped += len(store.reap_stale(campaign,
                                                     max_attempts=cap))
                store.exhaust_spent(campaign, cap)
                if on_tick is not None:
                    on_tick(self, store)
                if store.unfinished_count(campaign) == 0:
                    converged = True
                    break
                external = [w for w in store.workers_status(campaign)
                            if w.alive and w.worker_id not in self.children]
                if not self.live_children() and not external:
                    break  # every worker is gone; campaign stays resumable
                if (timeout_s is not None
                        and time.monotonic() - started > timeout_s):
                    break
                time.sleep(config.poll_s)
            self._drain()
            progress = FleetProgress(
                campaign=campaign,
                counts=store.status_counts(campaign),
                workers=store.workers_status(campaign),
                reaped=self._reaped,
                converged=converged,
                wall_seconds=time.monotonic() - started,
            )
        if OBS.enabled:
            OBS.registry.counter("fleet.coordinator.reaped").inc(
                self._reaped)
        return progress

    def run(self, timeout_s: Optional[float] = None) -> FleetProgress:
        self.start()
        return self.wait(timeout_s=timeout_s)

    def _drain(self) -> None:
        """Give converged workers a grace period, then terminate."""
        deadline = time.monotonic() + max(5.0, 4 * self.config.poll_s)
        for proc in self.children.values():
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()


def run_fleet(spec_path, store_path, *, n_workers: int = 2,
              config: Optional[FleetConfig] = None,
              timeout_s: Optional[float] = None) -> FleetProgress:
    """Convenience wrapper: load the spec, run a local fleet, return."""
    spec = CampaignSpec.from_path(spec_path)
    coordinator = FleetCoordinator(spec, spec_path, store_path,
                                   n_workers=n_workers, config=config)
    return coordinator.run(timeout_s=timeout_s)


__all__ = [
    "CampaignWorker",
    "FleetConfig",
    "FleetCoordinator",
    "FleetProgress",
    "RUN_DELAY_ENV",
    "WorkerSummary",
    "default_worker_id",
    "retry_delay_s",
    "run_fleet",
    "spawn_worker",
]
