"""Executes the pending runs of a campaign spec against a result store.

The runner is the crash-safety half of the subsystem.  Its contract:

* **resumable** — ``run()`` expands the spec, registers every run key
  (idempotent), and executes only the runs that are not already
  terminal (``done`` or ``exhausted``).  Rows left ``running`` by a
  crashed process are treated as pending again, and ``failed`` rows
  are retried until they burn through the spec's ``max_attempts``, at
  which point they flip to ``exhausted`` and stay that way (surfaced
  in ``campaign status`` / ``report``).  Re-invoking a finished
  campaign executes nothing.
* **failure-absorbing** — one broken run must never kill the campaign:
  any :class:`~repro.errors.ChrysalisError` a search raises (no
  feasible design, bad workload interaction, ...) is recorded as a
  failed row, together with the candidate-level
  :class:`~repro.explore.failures.FailureLog` the search had absorbed
  up to that point, and the campaign moves on.  Genuine programming
  errors still propagate.
* **budgeted** — the spec's ``candidate_time_budget_s`` rides into
  every search's :class:`~repro.explore.bilevel.BilevelExplorer`, so a
  pathological candidate inside any run times out into a penalty
  instead of stalling the fleet.

Within each run, evaluation parallelism reuses the existing
generation-synchronous worker pool (:mod:`repro.explore.parallel`) via
``GAConfig.workers`` — results are bit-identical to serial execution,
which is why the worker count is not part of the run's content hash.

Multi-process execution of *whole runs* lives one level up in
:mod:`repro.campaign.fleet`, which shares :func:`execute_search` with
this runner — the fleet's claim/heartbeat protocol changes who runs
what, never what a run computes.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.spec import PARETO_KIND, CampaignSpec, RunKey
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_EXHAUSTED,
    ResultStore,
    StoredRun,
)
from repro.core.chrysalis import Chrysalis
from repro.core.result import AuTSolution
from repro.errors import ChrysalisError
from repro.explore.bilevel import SearchResult
from repro.explore.ga import GAConfig
from repro.obs.state import OBS, run_scope
from repro.serialize import solution_to_dict
from repro.workloads import zoo

logger = logging.getLogger(__name__)


def execute_search(key: RunKey, workers: int = 1,
                   ) -> Tuple[AuTSolution, Optional[SearchResult]]:
    """One full CHRYSALIS search for one run key.

    The single execution path shared by the in-process
    :class:`CampaignRunner` and the fleet's
    :class:`~repro.campaign.fleet.CampaignWorker` — which is what makes
    fleet results bit-identical to single-process results.
    """
    network = zoo.workload_by_name(key.workload)
    if key.objective.kind == PARETO_KIND:
        return _execute_pareto(key, network)
    tool = Chrysalis(
        network,
        setup=key.setup,
        objective=key.to_objective(),
        environments=key.resolve_environments(),
        ga_config=GAConfig(population_size=key.population,
                           generations=key.generations,
                           seed=key.seed,
                           workers=workers),
        candidate_time_budget_s=key.candidate_time_budget_s,
    )
    solution = tool.generate()
    return solution, tool.last_result


def _execute_pareto(key: RunKey, network,
                    ) -> Tuple[AuTSolution, Optional[SearchResult]]:
    """One NSGA-II multi-objective run for an ``objective: pareto`` key.

    The stored scalar solution is the front's representative point (the
    smallest panel x latency product); the whole front is persisted via
    :func:`success_payload`'s ``front`` entry.
    """
    from repro.explore.nsga2 import ParetoExplorer

    tool = Chrysalis(network, setup=key.setup,
                     environments=key.resolve_environments())
    explorer = ParetoExplorer(
        network, tool.space,
        environments=key.resolve_environments(),
        ga_config=GAConfig(population_size=key.population,
                           generations=key.generations,
                           seed=key.seed),
    )
    result = explorer.search()
    solution = AuTSolution.from_search(
        result, network, objective_label="pareto (panel x latency front)")
    return solution, result


def success_payload(solution: AuTSolution,
                    result: Optional[SearchResult],
                    key: Optional[RunKey] = None) -> Dict[str, Any]:
    """The ``record_success`` keyword payload for a finished search.

    One construction path for every executor (single-process runner and
    fleet workers), so the persisted ``solution_json`` bytes are
    identical no matter who ran the search.  For ``objective: pareto``
    runs (``key`` given) the payload additionally carries the whole
    front as ``front`` rows of ``{panel_cm2, latency_s, design}``.
    """
    metrics = solution.average_metrics
    latency = metrics.sustained_period or metrics.e2e_latency
    front = None
    if (key is not None and key.objective.kind == PARETO_KIND
            and result is not None):
        from repro.serialize import design_to_dict

        front = [
            {
                "panel_cm2": point.values[0],
                "latency_s": point.values[1],
                "design": design_to_dict(point.payload),
            }
            for point in result.evaluated
        ]
    return {
        "score": solution.score,
        "panel_cm2": solution.solar_panel_cm2,
        "latency_s": latency,
        "solution": solution_to_dict(solution),
        "stats": None if result is None else result.stats.as_dict(),
        "failures": (None if result is None else
                     [dataclasses.asdict(record)
                      for record in result.failures]),
        "front": front,
    }


@dataclass(frozen=True)
class RunOutcome:
    """What happened to one executed run of this invocation."""

    key: RunKey
    status: str  # "done" | "failed" | "exhausted"
    score: Optional[float] = None
    error: Optional[str] = None
    wall_seconds: float = 0.0


@dataclass
class CampaignProgress:
    """Summary of one ``CampaignRunner.run()`` invocation."""

    campaign: str
    total: int = 0
    skipped: int = 0  # already terminal (done/exhausted) before this pass
    executed: List[RunOutcome] = field(default_factory=list)
    remaining: int = 0  # still pending after this invocation (max_runs)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.executed if o.status == STATUS_DONE)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.executed if o.status != STATUS_DONE)

    @property
    def exhausted(self) -> int:
        return sum(1 for o in self.executed
                   if o.status == STATUS_EXHAUSTED)

    def render(self) -> str:
        lines = [
            f"campaign    : {self.campaign}",
            f"runs        : {self.total} total, {self.skipped} already "
            f"complete (skipped)",
            f"this pass   : {self.completed} completed, {self.failed} "
            f"failed ({self.exhausted} exhausted), {self.remaining} "
            f"still pending",
        ]
        for outcome in self.executed:
            wall = f"{outcome.wall_seconds:.1f}s"
            if outcome.status == STATUS_DONE:
                lines.append(f"  [done]   {outcome.key.describe()} "
                             f"score={outcome.score:.4g} ({wall})")
            else:
                lines.append(f"  [{outcome.status}] {outcome.key.describe()} "
                             f"{outcome.error} ({wall})")
        return "\n".join(lines)


class CampaignRunner:
    """Drives a :class:`CampaignSpec` to completion against a store.

    Parameters
    ----------
    spec:
        The campaign grid to execute.
    store:
        Where results persist; reusing the same store is what makes the
        campaign resumable.
    workers:
        Override of the spec's per-search worker-process count
        (result-neutral, so it does not change run identities).
    max_runs:
        Execute at most this many runs this invocation, then return
        (the remaining runs stay pending for the next invocation — also
        how the CI smoke job emulates an interrupted campaign).
    max_attempts:
        Override of the spec's retry cap.  A run that has failed this
        many times becomes ``exhausted`` and is never retried again —
        without it, a deterministic always-failing run would be re-run
        on every re-invocation forever.
    on_progress:
        Optional callback invoked with each :class:`RunOutcome` as it
        lands, for live CLI output.
    """

    def __init__(self, spec: CampaignSpec, store: ResultStore,
                 workers: Optional[int] = None,
                 max_runs: Optional[int] = None,
                 max_attempts: Optional[int] = None,
                 on_progress: Optional[Callable[[RunOutcome], None]] = None,
                 ) -> None:
        self.spec = spec
        self.store = store
        self.workers = spec.workers if workers is None else workers
        self.max_runs = max_runs
        self.max_attempts = (spec.max_attempts if max_attempts is None
                             else max_attempts)
        self.on_progress = on_progress

    # -- planning ------------------------------------------------------------

    def pending_runs(self) -> List[RunKey]:
        """Spec runs not yet terminal in the store, in grid order.

        Includes never-registered and retryable ``failed`` runs, plus
        ``running`` rows (a live row would belong to *this* runner; a
        stale one is a crash leftover and must be re-run).  ``done``
        and ``exhausted`` rows are skipped.
        """
        pending = []
        for key in self.spec.expand():
            row = self.store.get(key.run_hash)
            if row is None or row.status not in (STATUS_DONE,
                                                 STATUS_EXHAUSTED):
                pending.append(key)
        return pending

    # -- execution -----------------------------------------------------------

    def run(self) -> CampaignProgress:
        keys = self.spec.expand()
        created = self.store.register(self.spec.name, keys)
        if created:
            logger.info("campaign %s: registered %d new run(s)",
                        self.spec.name, created)
        if self.max_attempts is not None:
            # Rows that burned their attempts in earlier invocations
            # (possibly under an older release without the cap).
            spent = self.store.exhaust_spent(self.spec.name,
                                             self.max_attempts)
            if spent:
                logger.info("campaign %s: %d run(s) out of attempts, "
                            "marked exhausted", self.spec.name, len(spent))
        pending = self.pending_runs()
        progress = CampaignProgress(
            campaign=self.spec.name,
            total=len(keys),
            skipped=len(keys) - len(pending),
        )
        batch = pending if self.max_runs is None else pending[:self.max_runs]
        progress.remaining = len(pending) - len(batch)
        for key in batch:
            progress.executed.append(self._run_one(key))
        return progress

    def _run_one(self, key: RunKey) -> RunOutcome:
        self.store.mark_running(key)
        started = time.monotonic()
        # Each run records into its own observability scope (a no-op
        # when observability is off): the scope's snapshot is the per-run
        # blob the store persists, while the enclosing campaign scope
        # keeps aggregating everything on scope exit.
        with run_scope("campaign.run", run=key.run_hash[:12],
                       workload=key.workload) as scope:
            try:
                solution, result = self._execute_run(key)
            except ChrysalisError as error:
                solution = None
                failure = error
            else:
                failure = None
        obs_blob = scope.snapshot() if OBS.enabled else None
        if failure is not None:
            wall = time.monotonic() - started
            logger.warning("campaign %s: run %s failed: %s",
                           self.spec.name, key.describe(), failure)
            recorded = self.store.record_failure(
                key, error=f"{type(failure).__name__}: {failure}",
                wall_seconds=wall, campaign=self.spec.name, obs=obs_blob,
                max_attempts=self.max_attempts)
            outcome = RunOutcome(key=key, status=recorded or "failed",
                                 error=f"{type(failure).__name__}: {failure}",
                                 wall_seconds=wall)
        else:
            wall = time.monotonic() - started
            self.store.record_success(
                key,
                wall_seconds=wall,
                campaign=self.spec.name,
                obs=obs_blob,
                **success_payload(solution, result, key),
            )
            outcome = RunOutcome(key=key, status=STATUS_DONE,
                                 score=solution.score, wall_seconds=wall)
        if self.on_progress is not None:
            self.on_progress(outcome)
        return outcome

    def _execute_run(self, key: RunKey
                     ) -> Tuple[AuTSolution, Optional[SearchResult]]:
        """One search via :func:`execute_search`.

        Kept as a method so tests (and alternative executors) can stub
        the expensive part while keeping the store/resume protocol
        intact.
        """
        return execute_search(key, workers=self.workers)


def run_campaign(spec: CampaignSpec, store_path,
                 workers: Optional[int] = None,
                 max_runs: Optional[int] = None,
                 max_attempts: Optional[int] = None,
                 on_progress: Optional[Callable[[RunOutcome], None]] = None,
                 ) -> CampaignProgress:
    """Convenience wrapper: open the store, run, close."""
    with ResultStore(store_path) as store:
        runner = CampaignRunner(spec, store, workers=workers,
                                max_runs=max_runs, max_attempts=max_attempts,
                                on_progress=on_progress)
        return runner.run()


__all__ = [
    "CampaignProgress",
    "CampaignRunner",
    "RunOutcome",
    "StoredRun",
    "execute_search",
    "run_campaign",
]
