"""Durable, resumable multi-scenario DSE campaigns.

The paper's result tables are fleets of searches; this package manages
such fleets end to end:

* :mod:`~repro.campaign.spec` — declarative :class:`CampaignSpec` grids
  that expand into content-hashed :class:`RunKey` cells;
* :mod:`~repro.campaign.store` — the SQLite :class:`ResultStore` every
  run persists into (WAL mode, schema-versioned, idempotent upserts);
* :mod:`~repro.campaign.runner` — the crash-safe, failure-absorbing
  :class:`CampaignRunner` (re-invocation skips completed runs);
* :mod:`~repro.campaign.fleet` — lease-based multi-worker execution:
  :class:`CampaignWorker` claim/heartbeat loops and the
  :class:`FleetCoordinator` that spawns and babysits them (dead
  workers' runs re-queue within one lease TTL);
* :mod:`~repro.campaign.report` — :class:`CampaignReport` winners and
  Pareto fronts rebuilt purely from the store.

See ``docs/CAMPAIGNS.md`` and ``python -m repro campaign --help``.
"""

from repro.campaign.fleet import (
    CampaignWorker,
    FleetConfig,
    FleetCoordinator,
    FleetProgress,
    WorkerSummary,
    run_fleet,
)
from repro.campaign.report import CampaignReport, ScenarioSummary
from repro.campaign.runner import (
    CampaignProgress,
    CampaignRunner,
    RunOutcome,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    ObjectiveSpec,
    RunKey,
    expand_grid,
    resolve_environments,
)
from repro.campaign.store import ResultStore, StoredRun, WorkerStatus

__all__ = [
    "CampaignProgress",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignWorker",
    "FleetConfig",
    "FleetCoordinator",
    "FleetProgress",
    "ObjectiveSpec",
    "ResultStore",
    "RunKey",
    "RunOutcome",
    "ScenarioSummary",
    "StoredRun",
    "WorkerStatus",
    "WorkerSummary",
    "expand_grid",
    "resolve_environments",
    "run_campaign",
]
