"""Unified observability layer: metrics registry, spans, profiling.

One substrate every execution layer reports into (the AutoDNNchip /
CHIA lesson: co-design research needs uniform, fine-grained
instrumentation across the stack):

* a process-wide **metrics registry** — counters, gauges, and
  histograms whose exact counts survive bounded memory
  (:mod:`repro.obs.registry`);
* **run-scoped spans** — ``with span("ga.generation", gen=i): ...`` —
  nestable, timed, exception-tagging, propagated across
  ``ProcessPoolExecutor`` workers by merge-on-return
  (:mod:`repro.obs.spans`, :mod:`repro.obs.state`);
* **profiling hooks** — opt-in per-phase timing for controller
  stepping, cost-model queries (cache hit/miss latency split), the
  mapper inner search, and campaign runs;
* **exporters** — JSON snapshots, CSV, and the ``repro obs report``
  renderer (:mod:`repro.obs.export`).

Disabled by default: the off path is a single branch on a slotted
singleton plus a shared no-op span, so uninstrumented behaviour and
hot-loop allocation profiles are untouched.  Turn it on with::

    import repro.obs as obs

    obs.enable()                  # or enable(profile=False) for spans only
    ... run something ...
    print(obs.render_report(obs.snapshot()))

Span and metric naming conventions live in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    aggregate_spans,
    hottest_phases,
    merge_snapshots,
    render_report,
    to_csv,
    to_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    validate_metric_name,
)
from repro.obs.spans import NOOP_SPAN, LiveSpan, SpanNode, SpanRecorder
from repro.obs.state import (
    OBS,
    Observability,
    RunScope,
    disable,
    enable,
    is_enabled,
    merge_snapshot,
    reset,
    run_scope,
    snapshot,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LiveSpan",
    "MetricsRegistry",
    "NOOP_SPAN",
    "OBS",
    "Observability",
    "RunScope",
    "SpanNode",
    "SpanRecorder",
    "aggregate_spans",
    "disable",
    "enable",
    "histogram_quantile",
    "hottest_phases",
    "is_enabled",
    "merge_snapshot",
    "merge_snapshots",
    "render_report",
    "reset",
    "run_scope",
    "snapshot",
    "span",
    "to_csv",
    "to_json",
    "validate_metric_name",
]
