"""The process-wide observability switchboard.

Every instrumented module resolves the singleton once::

    from repro.obs.state import OBS, span

    if OBS.enabled:                      # branch only — never allocates
        OBS.registry.counter("x").inc()

    with span("ga.generation", gen=i):   # no-op singleton when disabled
        ...

Observability is **disabled by default**; the disabled fast path is a
single attribute test on a slotted object (hot loops guard with
``if OBS.enabled:`` and allocate nothing), and ``span()`` returns the
shared :data:`~repro.obs.spans.NOOP_SPAN` singleton.  ``enable()``
turns on metrics + spans, and — unless ``profile=False`` — the
fine-grained per-phase profiling hooks (controller-step timing, the
cost model's cache hit/miss latency split, mapper inner-search timing).

Run scoping
-----------

:func:`run_scope` isolates one run (a campaign run, one worker task)
into a fresh registry + recorder, yields a handle whose
:meth:`RunScope.snapshot` is the run's self-contained observability
blob, and on exit folds the child data back into the enclosing scope so
outer aggregates keep seeing everything.  This is also the worker half
of the merge-on-return protocol: a worker snapshots its scope, ships
the dict with its result, and the parent calls :func:`merge_snapshot`.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NOOP_SPAN, LiveSpan, SpanRecorder

SNAPSHOT_VERSION = 1


class Observability:
    """Process-wide state: master switch, registry, span recorder."""

    __slots__ = ("enabled", "profile", "registry", "recorder")

    def __init__(self) -> None:
        self.enabled = False
        self.profile = False
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder()


#: The one instance instrumented modules read.
OBS = Observability()


def enable(profile: bool = True) -> None:
    """Turn observability on (metrics + spans [+ profiling hooks])."""
    OBS.enabled = True
    OBS.profile = profile


def disable() -> None:
    """Back to the no-op fast path (recorded data is kept, not cleared)."""
    OBS.enabled = False
    OBS.profile = False


def is_enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Drop all recorded metrics and spans (state switch unchanged)."""
    OBS.registry.reset()
    OBS.recorder.reset()


def span(name: str, **tags: Any):
    """Open a timed span; the shared no-op singleton when disabled."""
    if not OBS.enabled:
        return NOOP_SPAN
    return LiveSpan(OBS.recorder, name, tags or None)


def snapshot() -> Dict[str, Any]:
    """Self-contained JSON-ready dump of the current scope."""
    return {
        "version": SNAPSHOT_VERSION,
        "profile": OBS.profile,
        "metrics": OBS.registry.as_dict(),
        "spans": OBS.recorder.as_dict(),
    }


def merge_snapshot(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a worker's / child scope's snapshot into the current scope.

    Spans graft under the currently-open span; metrics aggregate.
    """
    if not payload:
        return
    OBS.registry.merge(payload.get("metrics"))
    OBS.recorder.merge(payload.get("spans"))


class RunScope:
    """Handle of one :func:`run_scope` — snapshot source for persistence."""

    __slots__ = ("data",)

    def __init__(self) -> None:
        #: Filled at scope exit; ``snapshot()`` works both mid-scope and
        #: after exit.
        self.data: Optional[Dict[str, Any]] = None

    def snapshot(self) -> Dict[str, Any]:
        return self.data if self.data is not None else snapshot()


@contextlib.contextmanager
def run_scope(name: Optional[str] = None, **tags: Any) -> Iterator[RunScope]:
    """Isolate one run into fresh metrics/span storage.

    No-op (yielding a scope whose snapshot is ``None``) while
    observability is disabled.  On exit the child registry merges into
    the parent registry and the child span forest grafts under the
    parent's open span, so enclosing scopes lose nothing.
    """
    handle = RunScope()
    if not OBS.enabled:
        yield handle
        return
    outer_registry, outer_recorder = OBS.registry, OBS.recorder
    OBS.registry = MetricsRegistry()
    OBS.recorder = SpanRecorder()
    root = span(name, **tags) if name is not None else None
    try:
        if root is not None:
            with root:
                yield handle
        else:
            yield handle
    finally:
        handle.data = snapshot()
        OBS.registry, OBS.recorder = outer_registry, outer_recorder
        merge_snapshot(handle.data)
