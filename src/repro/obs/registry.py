"""Process-wide metrics registry: counters, gauges, histograms.

Three instrument kinds cover everything the four execution layers
report (see ``docs/OBSERVABILITY.md`` for the naming conventions):

* :class:`Counter` — monotonically accumulating totals (steps taken,
  cache hits, seconds spent in a phase).  Values may be fractional:
  ``*_seconds`` counters accumulate wall-clock.
* :class:`Gauge` — last-write-wins point-in-time values (cache sizes,
  worker counts).
* :class:`Histogram` — latency/size distributions with **exact**
  ``count`` / ``sum`` / ``min`` / ``max`` under **bounded memory**:
  observations land in power-of-two buckets whose index is clamped to
  ``[MIN_BUCKET, MAX_BUCKET]``, so the bucket map can never exceed
  ``MAX_BUCKET - MIN_BUCKET + 3`` entries no matter how many values are
  observed, yet no observation is ever dropped or approximated away
  from the exact aggregate fields.

Instruments are interned: ``registry.counter("x")`` always returns the
same object, so hot paths can resolve an instrument once and update a
plain attribute afterwards.  :meth:`MetricsRegistry.merge` folds a
snapshot produced by another process (a worker) into this registry —
the propagation half of the span/metric merge-on-return protocol.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError


class Counter:
    """Monotonic accumulator (floats allowed for ``*_seconds`` totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Distribution with exact aggregates and bounded bucket memory.

    Bucket ``i`` holds observations in ``[2**i, 2**(i+1))``; indices are
    clamped to ``[MIN_BUCKET, MAX_BUCKET]`` and non-positive values go
    to the dedicated ``ZERO_BUCKET``.  Clamping only coarsens *where*
    an extreme observation is binned — ``count``/``sum``/``min``/``max``
    stay exact, and the per-bucket counts always sum to ``count``.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    #: Clamp range of the power-of-two bucket index.  ``2**-40`` ≈ 1e-12
    #: (sub-ns latencies) to ``2**40`` ≈ 1e12 — 81 buckets at most, plus
    #: the zero bucket.
    MIN_BUCKET = -40
    MAX_BUCKET = 40
    #: Index used for observations ``<= 0`` (no finite log2).
    ZERO_BUCKET = MIN_BUCKET - 1

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = min(max(int(math.floor(math.log2(value))),
                            self.MIN_BUCKET), self.MAX_BUCKET)
        else:
            index = self.ZERO_BUCKET
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile, interpolated within the buckets.

        The power-of-two buckets bound the relative error at 2x worst
        case; linear interpolation inside the covering bucket and the
        clamp to the *exact* ``min``/``max`` aggregates tighten the
        common cases (``q=0`` and ``q=1`` are exact).  ``None`` on an
        empty histogram.
        """
        return histogram_quantile(
            {"count": self.count, "min": self.min, "max": self.max,
             "buckets": self.buckets}, q)


def histogram_quantile(data: Mapping, q: float) -> Optional[float]:
    """:meth:`Histogram.quantile` over the dict (snapshot) form.

    Accepts both live bucket maps (int keys) and JSON round-tripped
    snapshots (string keys), so exporters can quote percentiles from
    persisted blobs without reconstructing instruments.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
    count = data.get("count", 0)
    if not count:
        return None
    low = data.get("min")
    high = data.get("max")
    target = q * count
    cumulative = 0
    for index, bucket_count in sorted(
            (int(key), value) for key, value in data.get("buckets", {}).items()
    ):
        cumulative += bucket_count
        if cumulative >= target:
            fraction = (target - (cumulative - bucket_count)) / bucket_count
            if index <= Histogram.ZERO_BUCKET:
                # Non-positive observations carry no log2 position;
                # interpolate over their full possible span [min, 0].
                lower_edge = low if low is not None else 0.0
                upper_edge = 0.0
            else:
                lower_edge = 2.0 ** index
                upper_edge = 2.0 ** (index + 1)
            estimate = lower_edge + fraction * (upper_edge - lower_edge)
            if low is not None:
                estimate = max(estimate, low)
            if high is not None:
                estimate = min(estimate, high)
            return estimate
    # Unreachable while per-bucket counts sum to ``count``; fall back to
    # the exact maximum rather than crash on a hand-built snapshot.
    return high


#: The percentiles every exporter quotes (serve SLOs, phase timers).
REPORT_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class MetricsRegistry:
    """Interned instruments keyed by name, one namespace per kind."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) -----------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- snapshot / merge ----------------------------------------------------

    def as_dict(self) -> Dict[str, dict]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": None if h.count == 0 else h.min,
                    "max": None if h.count == 0 else h.max,
                    **{label: h.quantile(q) for label, q in REPORT_QUANTILES},
                    "buckets": {str(index): count
                                for index, count in sorted(h.buckets.items())},
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Optional[Dict[str, dict]]) -> None:
        """Fold a :meth:`as_dict` snapshot (e.g. from a worker) in.

        Counters and histogram aggregates add; gauges take the incoming
        value (last write wins, matching their point-in-time semantics).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = data.get("count", 0)
            if not count:
                continue
            histogram.count += count
            histogram.sum += data.get("sum", 0.0)
            if data.get("min") is not None:
                histogram.min = min(histogram.min, data["min"])
            if data.get("max") is not None:
                histogram.max = max(histogram.max, data["max"])
            for index, bucket_count in data.get("buckets", {}).items():
                index = int(index)
                histogram.buckets[index] = (histogram.buckets.get(index, 0)
                                            + bucket_count)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))


def validate_metric_name(name: str) -> str:
    """Naming-convention guard used by tests and the exporters.

    Names are dotted lowercase paths, ``layer.instrument[.detail]``,
    e.g. ``sim.controller_step_seconds`` or ``cost.layer_cost.hit``.
    """
    if not name or not all(
        part and part.replace("_", "a").isalnum() and part == part.lower()
        for part in name.split(".")
    ):
        raise ConfigurationError(
            f"metric name {name!r} is not a dotted lowercase path"
        )
    return name
