"""Run-scoped span trees: nestable, timed, exception-tagging.

A *span* is one timed region of a run — ``with span("ga.generation",
gen=i): ...`` — and spans opened while another is active nest under it,
so a whole campaign run yields a tree like::

    campaign.run
      search.run
        ga.generation
          search.genome
            mapper.optimize
            eval.average
              analytical.evaluate
                cost.plan

The :class:`SpanRecorder` owns one such forest per run scope.  It is
deliberately *not* thread-safe: CHRYSALIS parallelism is process-based,
and cross-process propagation works by **merge-on-return** — a worker
records into its own recorder, ships :meth:`SpanRecorder.as_dict`
payloads back with its result, and the parent grafts them under its
currently-open span (:meth:`SpanRecorder.merge`).

Memory is bounded: after ``max_spans`` materialised spans the recorder
stops allocating nodes and only counts what it dropped
(:attr:`SpanRecorder.dropped`), so a pathologically chatty run degrades
to counters instead of exhausting memory.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class SpanNode:
    """One finished (or in-flight) span of the tree."""

    __slots__ = ("name", "tags", "start", "duration", "error", "children")

    def __init__(self, name: str, tags: Optional[Dict[str, Any]] = None,
                 start: float = 0.0, duration: float = 0.0,
                 error: Optional[str] = None,
                 children: Optional[List["SpanNode"]] = None) -> None:
        self.name = name
        self.tags = tags or {}
        self.start = start
        self.duration = duration
        #: Exception type name when the span body raised, else ``None``.
        self.error = error
        self.children: List[SpanNode] = children if children is not None else []

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.tags:
            node["tags"] = dict(self.tags)
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanNode":
        return cls(
            name=data["name"],
            tags=dict(data.get("tags", {})),
            duration=data.get("duration", 0.0),
            error=data.get("error"),
            children=[cls.from_dict(child)
                      for child in data.get("children", ())],
        )

    # -- aggregate views -----------------------------------------------------

    def self_time(self) -> float:
        """Duration not covered by child spans (floored at zero)."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def walk(self):
        """Depth-first iteration over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanRecorder:
    """Collects one run scope's span forest."""

    #: Materialisation cap; spans beyond it are counted, not stored.
    DEFAULT_MAX_SPANS = 100_000

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.roots: List[SpanNode] = []
        self.count = 0
        self.dropped = 0
        self._stack: List[SpanNode] = []

    # -- recording -----------------------------------------------------------

    def start(self, name: str,
              tags: Optional[Dict[str, Any]] = None) -> Optional[SpanNode]:
        """Open a span; returns ``None`` when over the cap (still counted)."""
        self.count += 1
        if self.count > self.max_spans:
            self.dropped += 1
            return None
        node = SpanNode(name, tags, start=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        return node

    def finish(self, node: Optional[SpanNode],
               error: Optional[str] = None) -> None:
        if node is None:
            return
        node.duration = time.perf_counter() - node.start
        node.error = error
        # Exception unwinding can pop ancestors out of order; truncate
        # back to this node's frame so the stack never corrupts.
        if node in self._stack:
            del self._stack[self._stack.index(node):]

    @property
    def current(self) -> Optional[SpanNode]:
        return self._stack[-1] if self._stack else None

    # -- merge-on-return -----------------------------------------------------

    def merge(self, payload: Optional[Dict[str, Any]]) -> None:
        """Graft a worker's :meth:`as_dict` forest under the open span."""
        if not payload:
            return
        nodes = [SpanNode.from_dict(data) for data in payload.get("roots", ())]
        parent = self.current
        if parent is not None:
            parent.children.extend(nodes)
        else:
            self.roots.extend(nodes)
        self.count += payload.get("count", sum(1 for node in nodes
                                               for _ in node.walk()))
        self.dropped += payload.get("dropped", 0)

    # -- snapshot ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "dropped": self.dropped,
            "roots": [node.as_dict() for node in self.roots],
        }

    def reset(self) -> None:
        self.roots = []
        self.count = 0
        self.dropped = 0
        self._stack = []


class _NoopSpan:
    """The disabled-path span: a shared, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The singleton every ``span(...)`` call returns while observability is
#: off — entering/exiting it allocates nothing.
NOOP_SPAN = _NoopSpan()


class LiveSpan:
    """Context manager recording one span into a recorder."""

    __slots__ = ("_recorder", "_name", "_tags", "_node")

    def __init__(self, recorder: SpanRecorder, name: str,
                 tags: Optional[Dict[str, Any]]) -> None:
        self._recorder = recorder
        self._name = name
        self._tags = tags
        self._node: Optional[SpanNode] = None

    def __enter__(self) -> "LiveSpan":
        self._node = self._recorder.start(self._name, self._tags)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder.finish(
            self._node,
            error=None if exc_type is None else exc_type.__name__,
        )
        return False  # never swallow the exception

    def tag(self, **tags: Any) -> "LiveSpan":
        """Attach tags discovered mid-span (e.g. result sizes)."""
        if self._node is not None:
            self._node.tags.update(tags)
        return self
