"""Exporters for observability snapshots: JSON, CSV, and the report.

A *snapshot* is the dict :func:`repro.obs.state.snapshot` (or
:meth:`RunScope.snapshot`) returns — self-contained and JSON-ready, the
same blob the campaign store persists per run.  This module turns
snapshots into:

* **JSON** (:func:`to_json`) — lossless round-trip format;
* **CSV** (:func:`to_csv`) — flat ``section,name,field,value`` rows for
  spreadsheets (span rows are aggregated per tree path);
* **report** (:func:`render_report`) — the human view ``repro obs
  report`` prints: the span tree aggregated by name at each level, the
  top-N hottest phases by self-time, and the metrics tables.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import REPORT_QUANTILES, histogram_quantile
from repro.obs.spans import SpanNode


# -- JSON ---------------------------------------------------------------------


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def merge_snapshots(snapshots) -> Dict[str, Any]:
    """Fold many snapshots into one (e.g. a campaign store's run blobs).

    Metrics aggregate with the registry's merge semantics; every
    snapshot's span roots become roots of the combined forest.  The
    result is a regular snapshot, so every exporter accepts it.
    """
    from repro.obs.registry import MetricsRegistry
    from repro.obs.spans import SpanRecorder
    from repro.obs.state import SNAPSHOT_VERSION

    registry = MetricsRegistry()
    recorder = SpanRecorder()
    profile = False
    for snapshot in snapshots:
        if not snapshot:
            continue
        profile = profile or bool(snapshot.get("profile"))
        registry.merge(snapshot.get("metrics"))
        recorder.merge(snapshot.get("spans"))
    return {
        "version": SNAPSHOT_VERSION,
        "profile": profile,
        "metrics": registry.as_dict(),
        "spans": recorder.as_dict(),
    }


# -- span aggregation ---------------------------------------------------------


class PhaseAggregate:
    """All spans sharing one name-path, merged."""

    __slots__ = ("name", "path", "count", "total", "self_time", "errors",
                 "children")

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.errors = 0
        self.children: Dict[str, "PhaseAggregate"] = {}

    def add(self, node: SpanNode) -> None:
        self.count += 1
        self.total += node.duration
        self.self_time += node.self_time()
        if node.error is not None:
            self.errors += 1
        for child in node.children:
            aggregate = self.children.get(child.name)
            if aggregate is None:
                aggregate = self.children[child.name] = PhaseAggregate(
                    child.name, f"{self.path}/{child.name}")
            aggregate.add(child)

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()


def aggregate_spans(snapshot: Dict[str, Any]) -> List[PhaseAggregate]:
    """The snapshot's span forest, aggregated by name at every level."""
    roots: Dict[str, PhaseAggregate] = {}
    for data in snapshot.get("spans", {}).get("roots", ()):
        node = SpanNode.from_dict(data)
        aggregate = roots.get(node.name)
        if aggregate is None:
            aggregate = roots[node.name] = PhaseAggregate(node.name, node.name)
        aggregate.add(node)
    return list(roots.values())


def hottest_phases(snapshot: Dict[str, Any],
                   top: int = 10) -> List[PhaseAggregate]:
    """Top-``top`` aggregated phases by self-time, hottest first.

    Self-times partition each root span's duration exactly (modulo
    clock granularity), so summing the full list reproduces the
    measured wall-clock of the roots.
    """
    phases = [aggregate
              for root in aggregate_spans(snapshot)
              for aggregate in root.walk()]
    phases.sort(key=lambda phase: phase.self_time, reverse=True)
    return phases[:top] if top else phases


# -- CSV ----------------------------------------------------------------------


def to_csv(snapshot: Dict[str, Any]) -> str:
    """Flat ``section,name,field,value`` rows (spans pre-aggregated)."""
    out = io.StringIO()
    out.write("section,name,field,value\n")

    def row(section: str, name: str, field: str, value: Any) -> None:
        out.write(f"{section},{name},{field},{value}\n")

    metrics = snapshot.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        row("counter", name, "value", value)
    for name, value in metrics.get("gauges", {}).items():
        row("gauge", name, "value", value)
    for name, data in metrics.get("histograms", {}).items():
        for field in ("count", "sum", "min", "max"):
            row("histogram", name, field, data.get(field))
        for label, q in REPORT_QUANTILES:
            row("histogram", name, label, histogram_quantile(data, q))
    for root in aggregate_spans(snapshot):
        for phase in root.walk():
            row("span", phase.path, "count", phase.count)
            row("span", phase.path, "total_seconds", f"{phase.total:.6f}")
            row("span", phase.path, "self_seconds", f"{phase.self_time:.6f}")
            if phase.errors:
                row("span", phase.path, "errors", phase.errors)
    return out.getvalue()


# -- the report ---------------------------------------------------------------


def _render_phase(phase: PhaseAggregate, lines: List[str],
                  depth: int) -> None:
    label = "  " * depth + phase.name
    errors = f"  [{phase.errors} error(s)]" if phase.errors else ""
    lines.append(f"  {label:<44} x{phase.count:<6} "
                 f"{phase.total:9.3f}s  (self {phase.self_time:.3f}s)"
                 f"{errors}")
    for child in sorted(phase.children.values(),
                        key=lambda c: c.total, reverse=True):
        _render_phase(child, lines, depth + 1)


def render_report(snapshot: Optional[Dict[str, Any]], top: int = 10) -> str:
    """The ``repro obs report`` body for one snapshot."""
    if not snapshot:
        return "no observability data (was the run executed with --obs?)"
    spans = snapshot.get("spans", {})
    roots = aggregate_spans(snapshot)
    wall = sum(root.total for root in roots)
    lines = [
        f"spans       : {spans.get('count', 0)} recorded, "
        f"{spans.get('dropped', 0)} dropped, "
        f"{len(roots)} root phase(s), {wall:.3f}s total",
    ]
    if roots:
        lines.append("")
        lines.append("span tree (aggregated by phase):")
        for root in sorted(roots, key=lambda r: r.total, reverse=True):
            _render_phase(root, lines, 0)
        lines.append("")
        lines.append(f"hottest phases (top {top} by self-time):")
        covered = 0.0
        for phase in hottest_phases(snapshot, top=top):
            share = phase.self_time / wall if wall > 0 else 0.0
            covered += phase.self_time
            lines.append(f"  {phase.path:<52} {phase.self_time:9.3f}s "
                         f"{share:6.1%}")
        share = covered / wall if wall > 0 else 0.0
        lines.append(f"  {'(coverage of measured wall-clock)':<52} "
                     f"{covered:9.3f}s {share:6.1%}")

    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            rendered = (f"{value:.6f}".rstrip("0").rstrip(".")
                        if isinstance(value, float) else str(value))
            lines.append(f"  {name:<52} {rendered}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms:")
        lines.append(f"  {'name':<44} {'count':>8} {'mean':>12} "
                     f"{'p50':>12} {'p90':>12} {'p99':>12} "
                     f"{'min':>12} {'max':>12}")
        for name, data in histograms.items():
            count = data.get("count", 0)
            mean = (data.get("sum", 0.0) / count) if count else 0.0
            quantiles = " ".join(
                f"{histogram_quantile(data, q) or 0.0:>12.3e}"
                for _, q in REPORT_QUANTILES)
            lines.append(
                f"  {name:<44} {count:>8} {mean:>12.3e} "
                f"{quantiles} "
                f"{data.get('min') or 0.0:>12.3e} "
                f"{data.get('max') or 0.0:>12.3e}")
    return "\n".join(lines)
