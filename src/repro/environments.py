"""The unified environment/scenario registry.

Before this module, environments were resolved three different ways:
preset classmethods on :class:`~repro.energy.environment.
LightEnvironment`, ``scenario_by_name`` in :mod:`repro.core.scenarios`,
and the private ``_resolve_environments`` in :mod:`repro.api` — and
campaign specs / serve keys could only name the four presets.  This
module is now the single resolution path (mirroring
``workload_by_name`` in the zoo): every environment label used by
:func:`repro.api.evaluate`, :func:`repro.api.evaluate_batch`, the serve
layer, :class:`~repro.campaign.spec.CampaignSpec` and the CLI goes
through :func:`environment_by_name`.

A label resolves, in order, to:

1. a registered :class:`EnvironmentSpec` (the builtin presets
   ``paper`` / ``brighter`` / ``darker`` / ``indoor`` plus anything
   :func:`register_environment` added — e.g. generated traces);
2. ``scenario:<name>`` — a SWaP scenario's environment set;
3. a bare scenario name (back-compat with ``evaluate(scenario=...)``).

:class:`EnvironmentSpec` is the durable description: content-hashable,
JSON-round-trippable, and buildable into concrete environment objects.
:class:`ScenarioGenerator` expands a compact seeded spec into hundreds
of content-addressed trace scenarios — the labels flow through the
existing campaign grid (``expand_grid`` / ``RunKey``) unchanged, and
because the labels embed a content hash of their parameters, every
process that loads the same spec registers byte-identical scenarios.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.scenarios import SCENARIOS, scenario_by_name
from repro.energy.environment import LightEnvironment
from repro.energy.traces import (
    TraceEnvironment,
    cloud_trace,
    diurnal_trace,
    schedule_trace,
    trickle_trace,
)
from repro.errors import ConfigurationError

#: Prefix marking an environment label that names a SWaP scenario preset
#: (the scenario supplies both the environments and the objective).
SCENARIO_PREFIX = "scenario:"

#: Any concrete environment an evaluation can run in.
Environment = Union[LightEnvironment, TraceEnvironment]


def _canonical_hash(payload: Any, digits: int = 12) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:digits]


# ---------------------------------------------------------------------------
# environment specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvironmentSpec:
    """A durable, registrable description of one environment set.

    ``kind`` selects the builder; ``params`` are its keyword arguments,
    stored as a sorted item tuple so specs stay hashable.  Use
    :meth:`create` rather than the raw constructor.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("environment spec needs a name")
        if self.kind not in _BUILDERS:
            raise ConfigurationError(
                f"unknown environment kind {self.kind!r}; "
                f"expected one of {sorted(_BUILDERS)}")
        object.__setattr__(self, "params",
                           tuple(sorted(tuple(self.params))))

    @classmethod
    def create(cls, name: str, kind: str, **params: Any) -> "EnvironmentSpec":
        return cls(name=name, kind=kind, params=tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self) -> Tuple[Environment, ...]:
        """The concrete environment set this spec describes."""
        return _BUILDERS[self.kind](self)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "params": self.param_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnvironmentSpec":
        try:
            name, kind = data["name"], data["kind"]
        except KeyError as missing:
            raise ConfigurationError(
                f"environment spec is missing field {missing}") from None
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigurationError(
                "environment spec 'params' must be an object")
        return cls.create(str(name), str(kind), **dict(params))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EnvironmentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid environment-spec JSON: {error}") from None
        return cls.from_dict(data)

    @property
    def content_hash(self) -> str:
        """Deterministic 12-hex-digit hash of the spec content."""
        return _canonical_hash(self.to_dict())


# ---------------------------------------------------------------------------
# builders, one per spec kind
# ---------------------------------------------------------------------------


_PRESETS = {
    "paper": LightEnvironment.paper_environments,
    "brighter": lambda: (LightEnvironment.brighter(),),
    "darker": lambda: (LightEnvironment.darker(),),
    "indoor": lambda: (LightEnvironment.indoor(),),
}


def _base_light(spec: EnvironmentSpec) -> LightEnvironment:
    p = spec.param_dict()
    return LightEnvironment(
        cloudiness=float(p.get("cloudiness", 0.15)),
        panel_efficiency=float(p.get("panel_efficiency", 0.18)),
        peak_elevation_deg=float(p.get("peak_elevation_deg", 70.0)),
        deployment_factor=float(p.get("deployment_factor", 0.10)),
        name=spec.name,
    )


def _build_preset(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    p = spec.param_dict()
    preset = str(p.get("preset", spec.name))
    try:
        return tuple(_PRESETS[preset]())
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {preset!r}; expected one of {sorted(_PRESETS)}"
        ) from None


def _build_scenario(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    scenario = str(spec.param_dict().get("scenario", spec.name))
    return tuple(scenario_by_name(scenario).environments)


def _build_diurnal(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    p = spec.param_dict()
    base = _base_light(spec)
    return (diurnal_trace(base, step_s=float(p.get("step_s", 3600.0)),
                          name=spec.name),)


def _build_cloudy(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    p = spec.param_dict()
    base = _base_light(spec)
    return (cloud_trace(base,
                        sigma=float(p.get("sigma", 0.4)),
                        floor=float(p.get("floor", 0.05)),
                        seed=int(p.get("seed", 0)),
                        step_s=float(p.get("step_s", 600.0)),
                        name=spec.name),)


def _build_schedule(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    p = spec.param_dict()
    try:
        k_on = float(p["k_on"])
    except KeyError:
        raise ConfigurationError(
            f"schedule environment {spec.name!r} needs 'k_on'") from None
    return (schedule_trace(k_on,
                           k_off=float(p.get("k_off", 0.0)),
                           on_hour=float(p.get("on_hour", 8.0)),
                           off_hour=float(p.get("off_hour", 18.0)),
                           name=spec.name),)


def _build_trickle(spec: EnvironmentSpec) -> Tuple[Environment, ...]:
    p = spec.param_dict()
    try:
        k_eh = float(p["k_eh"])
    except KeyError:
        raise ConfigurationError(
            f"trickle environment {spec.name!r} needs 'k_eh'") from None
    return (trickle_trace(k_eh, name=spec.name),)


_BUILDERS = {
    "preset": _build_preset,
    "scenario": _build_scenario,
    "diurnal": _build_diurnal,
    "cloudy": _build_cloudy,
    "schedule": _build_schedule,
    "trickle": _build_trickle,
}

#: Kinds :class:`ScenarioGenerator` can draw from.
GENERATED_KINDS = ("diurnal", "cloudy", "schedule", "trickle")


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


_REGISTRY: Dict[str, EnvironmentSpec] = {}


def register_environment(spec: EnvironmentSpec) -> EnvironmentSpec:
    """Register a spec under its name; returns the registered spec.

    Registration is idempotent for identical content, but re-using a
    name for *different* content is an error: the serve layer memoizes
    resolved environment sets per label, so a silently rebound label
    would serve stale environments.  Generated labels embed a content
    hash of their parameters, making collisions impossible by
    construction.
    """
    spec.build()  # validate eagerly: a registered label must resolve
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing
        raise ConfigurationError(
            f"environment {spec.name!r} is already registered with "
            f"different content")
    _REGISTRY[spec.name] = spec
    return spec


def environment_spec(label: str) -> Optional[EnvironmentSpec]:
    """The registered spec behind a label, or ``None``."""
    return _REGISTRY.get(label)


def registered_environments() -> Tuple[str, ...]:
    """All registered labels, sorted."""
    return tuple(sorted(_REGISTRY))


def environment_by_name(label: str) -> Tuple[Environment, ...]:
    """Resolve an environment label into concrete environments.

    The single resolution path of the library (mirrors
    ``zoo.workload_by_name``): registered specs first, then
    ``scenario:<name>`` scenario sets, then bare scenario names.
    Raises :class:`~repro.errors.ConfigurationError` for unknown
    labels, listing what is available.
    """
    spec = _REGISTRY.get(label)
    if spec is not None:
        return spec.build()
    if label.startswith(SCENARIO_PREFIX):
        return tuple(scenario_by_name(label[len(SCENARIO_PREFIX):])
                     .environments)
    if label in SCENARIOS:
        return tuple(SCENARIOS[label].environments)
    raise ConfigurationError(
        f"unknown environment {label!r}; expected one of "
        f"{sorted(_REGISTRY)}, '{SCENARIO_PREFIX}<name>' or a scenario "
        f"from {sorted(SCENARIOS)}")


def environment_to_dict(environment: Environment) -> Dict[str, Any]:
    """Full value content of one resolved environment (hash input).

    This is the single content-hash source for serve request keys: a
    trace environment contributes its complete segment list, never just
    its label, so two different traces under the same name can never
    coalesce onto one cached evaluation.
    """
    if isinstance(environment, TraceEnvironment):
        return {"type": "trace", **environment.to_dict()}
    return {
        "type": "light",
        "cloudiness": environment.cloudiness,
        "panel_efficiency": environment.panel_efficiency,
        "peak_elevation_deg": environment.peak_elevation_deg,
        "deployment_factor": environment.deployment_factor,
        "ambient_temp_c": environment.ambient_temp_c,
        "temp_coefficient": environment.temp_coefficient,
        "name": environment.name,
    }


# The builtin presets are ordinary registry entries; "paper" is the
# brighter/darker pair every search in the paper averages over.
for _preset in _PRESETS:
    register_environment(EnvironmentSpec.create(_preset, "preset",
                                                preset=_preset))
del _preset


# ---------------------------------------------------------------------------
# the scenario generator
# ---------------------------------------------------------------------------


def _draw_params(family: str, rng: random.Random) -> Dict[str, Any]:
    """One seeded parameter draw for a generated trace family.

    Values are rounded to fixed precision so the JSON form (and hence
    the content-addressed label) is stable and readable.
    """
    if family == "diurnal":
        return {
            "cloudiness": round(rng.uniform(0.0, 0.9), 4),
            "peak_elevation_deg": round(rng.uniform(30.0, 75.0), 2),
            "deployment_factor": round(rng.uniform(0.05, 0.15), 4),
        }
    if family == "cloudy":
        return {
            "cloudiness": round(rng.uniform(0.0, 0.6), 4),
            "peak_elevation_deg": round(rng.uniform(30.0, 75.0), 2),
            "deployment_factor": round(rng.uniform(0.05, 0.15), 4),
            "sigma": round(rng.uniform(0.2, 0.6), 4),
            "seed": rng.randrange(1 << 16),
        }
    if family == "schedule":
        return {
            "k_on": round(rng.uniform(1e-5, 8e-5), 9),
            "k_off": round(rng.uniform(0.0, 5e-6), 9),
            "on_hour": float(rng.randrange(6, 10)),
            "off_hour": float(rng.randrange(17, 23)),
        }
    if family == "trickle":
        return {"k_eh": round(rng.uniform(5e-6, 5e-5), 9)}
    raise ConfigurationError(
        f"unknown trace family {family!r}; "
        f"expected one of {GENERATED_KINDS}")


@dataclass(frozen=True)
class ScenarioGenerator:
    """Seeded expansion of a compact spec into many trace scenarios.

    ``count`` scenarios are drawn round-robin over ``families`` from
    one ``random.Random(seed)`` stream.  Each scenario becomes an
    :class:`EnvironmentSpec` whose label is content-addressed
    (``trace:<family>-<hash>``), so expanding the same generator in any
    process registers byte-identical scenarios and yields byte-identical
    campaign run hashes.
    """

    name: str
    seed: int = 0
    count: int = 100
    families: Tuple[str, ...] = GENERATED_KINDS

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario generator needs a name")
        if self.count < 1:
            raise ConfigurationError(
                f"generator count must be at least 1, got {self.count}")
        object.__setattr__(self, "families", tuple(self.families))
        if not self.families:
            raise ConfigurationError(
                "scenario generator needs at least one family")
        for family in self.families:
            if family not in GENERATED_KINDS:
                raise ConfigurationError(
                    f"unknown trace family {family!r}; "
                    f"expected one of {GENERATED_KINDS}")

    def specs(self) -> Tuple[EnvironmentSpec, ...]:
        """The generated environment specs, in draw order."""
        rng = random.Random(self.seed)
        specs = []
        for index in range(self.count):
            family = self.families[index % len(self.families)]
            params = _draw_params(family, rng)
            digest = _canonical_hash({"kind": family, "params": params})
            specs.append(EnvironmentSpec.create(
                f"trace:{family}-{digest}", family, **params))
        return tuple(specs)

    def expand(self) -> Tuple[str, ...]:
        """Register every generated spec; returns the labels in order."""
        return tuple(register_environment(spec).name
                     for spec in self.specs())

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed, "count": self.count,
                "families": list(self.families)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGenerator":
        try:
            name = data["name"]
        except KeyError:
            raise ConfigurationError(
                "scenario generator is missing 'name'") from None
        return cls(
            name=str(name),
            seed=int(data.get("seed", 0)),
            count=int(data.get("count", 100)),
            families=tuple(str(f) for f in
                           data.get("families", GENERATED_KINDS)),
        )


__all__ = [
    "SCENARIO_PREFIX",
    "GENERATED_KINDS",
    "Environment",
    "EnvironmentSpec",
    "ScenarioGenerator",
    "environment_by_name",
    "environment_spec",
    "environment_to_dict",
    "register_environment",
    "registered_environments",
]
