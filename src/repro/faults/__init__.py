"""Fault injection and resilience reporting for intermittent inference.

The nominal simulator models the paper's energy reality on its best
behaviour; this package models it on its worst:

* :mod:`repro.faults.injector` — seeded, deterministic fault processes
  (harvester dropout transients, capacitor parameter drift and ESR
  degradation, checkpoint write failures, brownout-corrupted commits)
  attached to the energy controller behind an optional hook;
* :mod:`repro.faults.report` — :class:`ResilienceReport`: forward-
  progress ratio, re-execution overhead, checkpoint-loss rate and the
  survival-under-faults curve of one simulated inference;
* :mod:`repro.faults.sweep` — survival sweeps across fault intensities
  (the ``repro faults-sweep`` subcommand).

Determinism contract: every fault process is a pure function of the
:class:`FaultConfig` seed, and a config with all rates zero is
numerically identical to running with no injector at all.
"""

from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.report import ResilienceReport
from repro.faults.sweep import FaultSweepCell, run_faults_sweep

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultSweepCell",
    "ResilienceReport",
    "run_faults_sweep",
]
