"""Survival-under-faults sweep: stress a design across fault intensities.

For each intensity the base :class:`~repro.faults.injector.FaultConfig`
is scaled (:meth:`FaultConfig.scaled`) and the design is step-simulated
under several fault seeds.  Each cell aggregates survival (fraction of
seeds whose inference completed), latency over the survivors, and the
mean resilience figures — the data behind a survival-under-faults curve
and the ``repro faults-sweep`` CLI subcommand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.design import AuTDesign
from repro.energy.environment import LightEnvironment
from repro.errors import ChrysalisError, ConfigurationError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.report import ResilienceReport
from repro.hardware.checkpoint import CheckpointModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.workloads.network import Network


@dataclass(frozen=True)
class FaultSweepCell:
    """Aggregated outcome of one fault intensity."""

    intensity: float
    runs: int
    #: Fraction of fault seeds whose inference ran to completion.
    survival: float
    #: Mean e2e latency over the surviving runs, s (``inf`` if none).
    mean_latency_s: float
    mean_forward_progress: float
    mean_reexecution_overhead: float
    mean_checkpoint_loss_rate: float
    mean_rollbacks: float
    mean_exceptions: float


def run_faults_sweep(design: AuTDesign, network: Network,
                     environment: LightEnvironment,
                     base: Optional[FaultConfig] = None,
                     intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
                     seeds_per_cell: int = 3,
                     checkpoint: Optional[CheckpointModel] = None,
                     max_steps: int = 500_000) -> List[FaultSweepCell]:
    """Stress ``design`` across scaled fault intensities.

    A run that raises any :class:`~repro.errors.ChrysalisError` (budget
    exhaustion included) or reports an infeasible result counts as a
    non-survivor for its cell rather than aborting the sweep.
    """
    if seeds_per_cell < 1:
        raise ConfigurationError(
            f"seeds_per_cell must be at least 1, got {seeds_per_cell}"
        )
    base = base if base is not None else FaultConfig.stress()
    evaluator = ChrysalisEvaluator(network, environments=(environment,),
                                   checkpoint=checkpoint,
                                   max_steps=max_steps)
    cells: List[FaultSweepCell] = []
    for intensity in intensities:
        config = base.scaled(intensity)
        survivors: List[float] = []
        reports: List[ResilienceReport] = []
        for offset in range(seeds_per_cell):
            injector = FaultInjector(config.with_seed(base.seed + offset))
            try:
                result = evaluator.simulate(design, environment,
                                            faults=injector)
            except ChrysalisError:
                continue
            reports.append(ResilienceReport.from_simulation(result))
            if result.metrics.feasible:
                survivors.append(result.metrics.e2e_latency)
        cells.append(FaultSweepCell(
            intensity=intensity,
            runs=seeds_per_cell,
            survival=len(survivors) / seeds_per_cell,
            mean_latency_s=(sum(survivors) / len(survivors)
                            if survivors else math.inf),
            mean_forward_progress=_mean(
                [r.forward_progress_ratio for r in reports]),
            mean_reexecution_overhead=_mean(
                [r.reexecution_overhead for r in reports]),
            mean_checkpoint_loss_rate=_mean(
                [r.checkpoint_loss_rate for r in reports]),
            mean_rollbacks=_mean([float(r.rollbacks) for r in reports]),
            mean_exceptions=_mean([float(r.exceptions) for r in reports]),
        ))
    return cells


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
