"""Resilience metrics of a (possibly fault-injected) simulation run.

The step simulator already tells us *whether* a design finishes; under
fault injection the interesting question is *how gracefully*.  The
:class:`ResilienceReport` condenses one :class:`~repro.sim.engine.
SimulationResult` into the intermittent-computing resilience figures:

* **forward-progress ratio** — committed tile energy over all delivered
  energy: how much of what the rail paid for became durable progress;
* **re-execution overhead** — energy whose work was discarded (volatile
  progress lost to power failures, tiles replayed after corrupted
  commits) relative to the committed energy;
* **checkpoint-loss rate** — fraction of checkpoint commits that failed
  verify or were corrupted by a brownout;
* **survival curve** — net fraction of the workload's tiles durably
  completed as a function of simulated time (rollbacks subtract), the
  curve a faults sweep plots per fault intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

from repro.sim.trace import EventKind, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationResult

#: Survival curves are capped to this many samples so that reports on
#: million-tile runs stay plottable; endpoints are always kept.
MAX_CURVE_POINTS = 200


@dataclass(frozen=True)
class ResilienceReport:
    """How robustly one simulated inference made forward progress."""

    #: Whether the inference ran to completion.
    completed: bool
    #: Committed (durable) tile energy / delivered rail energy, in [0, 1].
    forward_progress_ratio: float
    #: Discarded-work energy / committed energy (0 = nothing re-executed).
    reexecution_overhead: float
    #: (failed + corrupted commits) / attempted commits, in [0, 1].
    checkpoint_loss_rate: float
    #: (simulated time, net fraction of tiles durably completed) samples.
    survival_curve: List[Tuple[float, float]] = field(default_factory=list)
    power_cycles: int = 0
    #: Unplanned mid-tile power failures.
    exceptions: int = 0
    #: Tiles replayed because a brownout corrupted their commit.
    rollbacks: int = 0
    #: Checkpoint commits that failed verify and were retried.
    checkpoint_retries: int = 0
    #: Rail energy whose work was discarded, J.
    wasted_energy_j: float = 0.0
    #: Total rail-side energy delivered to the load, J.
    delivered_energy_j: float = 0.0

    @classmethod
    def from_simulation(cls, result: "SimulationResult") -> "ResilienceReport":
        """Distil the resilience figures out of one simulation run."""
        inference = result.inference
        trace = result.trace
        plan = list(inference.plan)

        total_tiles = sum(cost.n_tiles for cost in plan)
        committed = _committed_energy(inference, plan)
        delivered = result.energy.accounting.delivered

        saved = trace.count(EventKind.CHECKPOINT_SAVED)
        failed = trace.count(EventKind.CHECKPOINT_FAILED)
        rolled = trace.count(EventKind.ROLLBACK)
        attempts = saved + failed + rolled
        loss_rate = (failed + rolled) / attempts if attempts else 0.0

        return cls(
            completed=inference.finished,
            forward_progress_ratio=(
                min(committed / delivered, 1.0) if delivered > 0.0 else 0.0),
            reexecution_overhead=(
                inference.wasted_energy / committed if committed > 0.0
                else 0.0),
            checkpoint_loss_rate=loss_rate,
            survival_curve=_survival_curve(trace, total_tiles),
            power_cycles=result.energy.accounting.power_cycles,
            exceptions=inference.exceptions,
            rollbacks=inference.rollbacks,
            checkpoint_retries=inference.checkpoint_retries,
            wasted_energy_j=inference.wasted_energy,
            delivered_energy_j=delivered,
        )


def _committed_energy(inference, plan) -> float:
    """Durable (checkpoint-protected) tile energy accumulated so far, J."""
    committed = 0.0
    for i, cost in enumerate(plan):
        tile_energy = cost.tile.energy_without_checkpoint
        if i < inference.layer_index or inference.finished:
            committed += cost.n_tiles * tile_energy
        elif i == inference.layer_index:
            committed += inference.tile_index * tile_energy
    return committed


def _survival_curve(trace: Trace,
                    total_tiles: int) -> List[Tuple[float, float]]:
    """Net completed-tile fraction over time; rollbacks subtract."""
    if total_tiles <= 0:
        return []
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    net = 0
    for event in trace:
        if event.kind is EventKind.TILE_COMPLETED:
            net += 1
        elif event.kind is EventKind.ROLLBACK:
            net -= 1
        else:
            continue
        points.append((event.time, net / total_tiles))
    if len(points) <= MAX_CURVE_POINTS:
        return points
    stride = (len(points) - 1) / (MAX_CURVE_POINTS - 1)
    sampled = [points[round(k * stride)] for k in range(MAX_CURVE_POINTS - 1)]
    sampled.append(points[-1])
    return sampled
