"""Seeded, deterministic fault processes for intermittent inference.

The paper's premise is a hostile energy reality: harvest collapses when
a cloud passes, capacitors age (leakage and ESR drift upward), and the
checkpoint machinery itself runs on the same failing supply it is meant
to protect against.  The nominal simulator models none of this; the
:class:`FaultInjector` adds it *behind an optional hook* so that the
nominal path is untouched when no injector is attached (or when every
rate is zero).

Four fault processes are modelled:

* **harvester dropout** — piecewise-constant shading transients: each
  ``harvest_window_s`` window is shaded with probability
  ``harvest_dropout_rate``, attenuating harvest by
  ``harvest_dropout_depth`` (cloud cover, foliage, a passing vehicle);
* **capacitor parameter drift** — the Eq. 2 leakage coefficient
  ``k_cap`` grows linearly with time (electrolyte dry-out), and the
  effective series resistance grows with cycle count, derating the
  delivered power;
* **checkpoint write failure** — an NVM commit fails with probability
  ``ckpt_write_failure_rate``; a read-back verify detects it and the
  runtime retries, paying the wasted write plus the verify read;
* **brownout during commit** — when the rail collapses while a
  checkpoint commit is in flight, the checkpoint is corrupted with
  probability ``commit_vulnerability`` and the runtime must roll back
  to the last consistent checkpoint, re-executing the tile.

Every process is a pure function of the configuration seed (window
index, attempt counter), never of wall-clock or global RNG state, so a
fixed seed reproduces the exact same fault sequence — the property the
determinism tests pin down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.errors import FaultInjectionError

# Distinct multipliers decorrelate the per-process RNG streams derived
# from the one user-facing seed (same idiom as FluctuatingHarvester).
_HARVEST_STREAM = 1_000_003
_CKPT_STREAM = 9_176_213
_COMMIT_STREAM = 5_915_587


@dataclass(frozen=True)
class FaultConfig:
    """Rates and scales of the injected fault processes.

    All rates default to zero: a default-constructed config is inert
    and produces byte-identical results to running with no injector.
    """

    seed: int = 0
    #: Probability that one harvest window is shaded.
    harvest_dropout_rate: float = 0.0
    #: Fraction of harvest power removed while shaded (1.0 = blackout).
    harvest_dropout_depth: float = 0.9
    #: Correlation window of the shading process, seconds.
    harvest_window_s: float = 5.0
    #: Fractional growth of the capacitor leakage coefficient per
    #: second of simulated time (electrolyte ageing).
    cap_leakage_drift_rate: float = 0.0
    #: Fractional growth of the delivered-power derate per power cycle
    #: (ESR degradation: every cycle the rail loses a little more).
    esr_degradation_rate: float = 0.0
    #: Probability that one checkpoint NVM commit fails its verify.
    ckpt_write_failure_rate: float = 0.0
    #: Probability that a brownout mid-commit corrupts the checkpoint
    #: (forcing a rollback to the last consistent one).
    commit_vulnerability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("harvest_dropout_rate", "harvest_dropout_depth",
                     "ckpt_write_failure_rate", "commit_vulnerability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.harvest_window_s <= 0:
            raise FaultInjectionError(
                f"harvest_window_s must be positive, got {self.harvest_window_s}"
            )
        for name in ("cap_leakage_drift_rate", "esr_degradation_rate"):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise FaultInjectionError(
                    f"{name} must be finite and non-negative, got {value}"
                )

    # -- derived configs -----------------------------------------------------

    def scaled(self, intensity: float) -> "FaultConfig":
        """This config with every rate scaled by ``intensity``.

        Probabilities saturate at 1; drift rates scale linearly.  The
        fault sweep uses this to trace survival-under-faults curves.
        """
        if intensity < 0:
            raise FaultInjectionError(
                f"intensity must be non-negative, got {intensity}"
            )
        return replace(
            self,
            harvest_dropout_rate=min(1.0, self.harvest_dropout_rate * intensity),
            cap_leakage_drift_rate=self.cap_leakage_drift_rate * intensity,
            esr_degradation_rate=self.esr_degradation_rate * intensity,
            ckpt_write_failure_rate=min(
                1.0, self.ckpt_write_failure_rate * intensity),
            commit_vulnerability=min(
                1.0, self.commit_vulnerability * intensity),
        )

    def with_seed(self, seed: int) -> "FaultConfig":
        return replace(self, seed=seed)

    @classmethod
    def stress(cls, seed: int = 0) -> "FaultConfig":
        """A moderately hostile default for sweeps and examples."""
        return cls(
            seed=seed,
            harvest_dropout_rate=0.15,
            harvest_dropout_depth=0.9,
            cap_leakage_drift_rate=1e-5,
            esr_degradation_rate=1e-4,
            ckpt_write_failure_rate=0.05,
            commit_vulnerability=0.5,
        )


class FaultInjector:
    """Stateful per-run realisation of a :class:`FaultConfig`.

    The time-indexed processes (shading, drift) are pure functions of
    the config, but the attempt-indexed ones (checkpoint failures,
    commit corruption) advance internal counters — one injector serves
    exactly one simulation run.  Call :meth:`fresh` to obtain an
    identically-seeded injector for another run.
    """

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        self._ckpt_attempts = 0
        self._commit_events = 0

    def fresh(self) -> "FaultInjector":
        """A new injector with the same config and reset counters."""
        return FaultInjector(self.config)

    # -- activity flags ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when at least one fault process can fire."""
        cfg = self.config
        return any((
            cfg.harvest_dropout_rate > 0.0,
            cfg.cap_leakage_drift_rate > 0.0,
            cfg.esr_degradation_rate > 0.0,
            cfg.ckpt_write_failure_rate > 0.0,
            cfg.commit_vulnerability > 0.0,
        ))

    @property
    def perturbs_charging(self) -> bool:
        """True when charging phases cannot be fast-forwarded in one
        closed-form step (harvest or leakage varies over the phase)."""
        return (self.config.harvest_dropout_rate > 0.0
                or self.config.cap_leakage_drift_rate > 0.0)

    # -- time-indexed processes ----------------------------------------------

    def harvest_factor(self, t: float) -> float:
        """Multiplier on harvested power at simulation time ``t``."""
        cfg = self.config
        if cfg.harvest_dropout_rate <= 0.0:
            return 1.0
        window = int(t / cfg.harvest_window_s)
        rng = random.Random(cfg.seed * _HARVEST_STREAM + window)
        if rng.random() < cfg.harvest_dropout_rate:
            return 1.0 - cfg.harvest_dropout_depth
        return 1.0

    def window_end(self, t: float) -> float:
        """End time of the shading window containing ``t``, seconds."""
        w = self.config.harvest_window_s
        return (int(t / w) + 1) * w

    def k_cap_at(self, t: float, base_k_cap: float) -> float:
        """Aged leakage coefficient at simulation time ``t``."""
        drift = self.config.cap_leakage_drift_rate
        if drift <= 0.0:
            return base_k_cap
        return base_k_cap * (1.0 + drift * t)

    def esr_factor(self, power_cycles: int) -> float:
        """Multiplier on rail-side drain power after ``power_cycles``."""
        rate = self.config.esr_degradation_rate
        if rate <= 0.0:
            return 1.0
        return 1.0 + rate * power_cycles

    # -- attempt-indexed processes ------------------------------------------

    def checkpoint_write_fails(self) -> bool:
        """Draw the fate of the next checkpoint NVM commit."""
        self._ckpt_attempts += 1
        rate = self.config.ckpt_write_failure_rate
        if rate <= 0.0:
            return False
        rng = random.Random(
            self.config.seed * _CKPT_STREAM + self._ckpt_attempts)
        return rng.random() < rate

    def commit_corrupts(self) -> bool:
        """Draw whether a brownout mid-commit corrupted the checkpoint."""
        self._commit_events += 1
        rate = self.config.commit_vulnerability
        if rate <= 0.0:
            return False
        rng = random.Random(
            self.config.seed * _COMMIT_STREAM + self._commit_events)
        return rng.random() < rate
