"""Serving: concurrent callers sharing one evaluation service.

Six callers submit at once — four distinct designs plus one design
submitted twice more on purpose.  The service content-hashes every
request, so the duplicates coalesce onto a single in-flight evaluation
(watch ``coalesced`` in the stats line) and the distinct ones are
priced together through one vectorized micro-batch instead of four
scalar calls.  Responses are bit-identical to per-request
``repro.evaluate``.

Run:  PYTHONPATH=src python examples/serve_client.py

For the same service behind a TCP socket, see ``python -m repro serve
run`` / ``serve bench`` and docs/SERVING.md.
"""

import asyncio

from repro.api import serve
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.explore.mapper_search import MappingOptimizer
from repro.workloads import zoo


def build_designs(count: int) -> list:
    """A small pool of valid designs (panel-area sweep)."""
    network = zoo.har_cnn()
    inference = InferenceDesign.msp430()
    designs = []
    for index in range(count):
        energy = EnergyDesign(panel_area_cm2=6.0 + 2.0 * index,
                              capacitance_f=100e-6)
        mappings = MappingOptimizer(network).optimize(energy, inference)
        if mappings is not None:
            designs.append(AuTDesign(energy=energy, inference=inference,
                                     mappings=mappings))
    return designs


async def main() -> None:
    designs = build_designs(4)
    service = serve(max_batch_size=16, max_wait_ms=2.0)

    async with service:
        # Four distinct designs, plus designs[0] twice more: the
        # duplicates share designs[0]'s evaluation instead of paying
        # for their own.
        requests = designs + [designs[0], designs[0]]
        reports = await asyncio.gather(*[
            service.submit(design, "har") for design in requests])

    for design, report in zip(requests, reports):
        print(f"panel {design.energy.panel_area_cm2:5.1f} cm^2  ->  "
              f"e2e latency {report.metrics.e2e_latency * 1e3:8.2f} ms")

    stats = service.stats
    print(f"\n{stats.requests} requests: {stats.evaluated} evaluated, "
          f"{stats.coalesced} coalesced "
          f"({stats.coalesce_rate:.0%} served off an in-flight twin), "
          f"{stats.batches} batch(es)")
    assert reports[0].metrics == reports[4].metrics == reports[5].metrics


if __name__ == "__main__":
    asyncio.run(main())
