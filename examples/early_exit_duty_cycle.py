"""Input-dependent provisioning: early-exit inference on an AuT.

Real sensor streams are mostly boring: an early-exit head classifies
the easy majority of inputs after a few layers and only hard inputs run
the full network.  The energy demand is then a *distribution*, and the
right question for a battery-free deployment is not "how fast is one
inference" but "what does the input mix do to my sustained rate, and
what must I provision for the worst case?"

This example sweeps the exit probability and shows expectation, spread
and worst case for a CIFAR-10-class AuT.

Run:  python examples/early_exit_duty_cycle.py
"""

from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.explore.mapper_search import MappingOptimizer
from repro.sim.mix import early_exit_mix
from repro.units import uF
from repro.workloads import zoo


def designed(network):
    energy = EnergyDesign(panel_area_cm2=8.0, capacitance_f=uF(470))
    inference = InferenceDesign.msp430()
    mappings = MappingOptimizer(network).optimize(energy, inference)
    assert mappings is not None
    return AuTDesign(energy=energy, inference=inference, mappings=mappings)


def main() -> None:
    full = zoo.cifar10_cnn()
    exit_net = zoo.cifar10_early_exit()
    design_full = designed(full)
    design_exit = designed(exit_net)

    print(f"full network : {full.macs / 1e6:.2f} MMACs")
    print(f"early exit   : {exit_net.macs / 1e6:.2f} MMACs "
          f"({exit_net.macs / full.macs:.0%} of full)")
    print()
    print(f"{'P(exit)':>8} {'E[latency]':>11} {'E[rate/h]':>10} "
          f"{'worst case':>11} {'spread':>8}")
    for p_exit in (0.1, 0.3, 0.5, 0.7, 0.9):
        mix = early_exit_mix(full, exit_net, design_full, design_exit,
                             exit_probability=p_exit)
        result = mix.evaluate()
        print(f"{p_exit:>8.1f} {result.expected_latency:>10.2f}s "
              f"{result.expected_throughput * 3600:>10.0f} "
              f"{result.worst_case_latency:>10.2f}s "
              f"{result.latency_spread:>7.2f}s")

    print()
    print("takeaway: the expected rate scales with the input mix, but "
          "the worst case —\nwhat the capacitor and panel must be "
          "provisioned for — never moves.")


if __name__ == "__main__":
    main()
