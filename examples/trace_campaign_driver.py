"""Trace campaign: a diurnal + indoor-schedule scenario sweep.

The paper evaluates under two static lighting presets, but deployment
is time-varying: the sun rises and sets, office lights switch on a
schedule.  This example drives ``trace_campaign.json`` — a compact
:class:`~repro.environments.ScenarioGenerator` spec that a single seed
expands into 12 content-addressed trace scenarios (6 diurnal clear-sky
profiles, 6 indoor on/off schedules) — through the ordinary campaign
machinery:

1. expands the generator: every scenario label embeds a content hash of
   its parameters, so any process loading the spec registers the exact
   same environments and computes the exact same run hashes;
2. runs the whole sweep through :class:`CampaignRunner` (the step
   simulator's segment-aware fast path keeps piecewise-constant traces
   as cheap as the static presets);
3. re-prices the best design under one generated trace via the unified
   :func:`repro.evaluate` front door, by label.

The same flow is available from the shell::

    python -m repro campaign run examples/trace_campaign.json --store t.sqlite
    python -m repro campaign report --store t.sqlite

Run:  python examples/trace_campaign_driver.py
"""

import pathlib
import tempfile

from repro import CampaignSpec, ResultStore, evaluate
from repro.campaign import CampaignReport, CampaignRunner
from repro.environments import environment_spec
from repro.serialize import solution_from_dict

SPEC = pathlib.Path(__file__).with_name("trace_campaign.json")


def main() -> None:
    spec = CampaignSpec.from_path(SPEC)
    keys = spec.expand()
    print(f"campaign {spec.name!r}: {len(keys)} runs from one generator")
    for key in keys:
        trace_spec = environment_spec(key.environment)
        params = ", ".join(f"{k}={v}"
                           for k, v in trace_spec.param_dict().items())
        print(f"  {key.run_hash}  {key.environment}  ({params})")
    print()

    store_path = pathlib.Path(tempfile.mkdtemp()) / "traces.sqlite"
    with ResultStore(store_path) as store:
        progress = CampaignRunner(spec, store).run()
        print(f"  {progress.completed} completed, "
              f"{progress.failed} failed")
        assert store.status_counts(spec.name)["done"] == len(keys)
        print()

        report = CampaignReport.from_store(store)
        print(report.render_markdown())

        # Re-price one winner under its trace, by label, through the
        # unified front door (step fidelity exercises the fast path).
        rows = [r for r in store.runs(spec.name) if r.solution is not None]
        row = rows[0]
        design = solution_from_dict(row.solution).design
        result = evaluate(design, row.key.workload,
                          scenario=row.key.environment, fidelity="step")
        sim = result.simulations[row.key.environment]
        print(f"re-priced {row.key.environment}: "
              f"latency {result.metrics.e2e_latency:.3f} s, "
              f"{sim.fast_cycles_skipped} cycles fast-forwarded")


if __name__ == "__main__":
    main()
