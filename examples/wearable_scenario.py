"""Scenario study: a body-worn health sensor under strict SWaP limits.

The paper motivates AuT with wearables (continuous glucose-style
monitoring).  A wearable cannot carry more than a few cm^2 of
harvester, so the design question becomes: *given at most 4 cm^2 of
solar panel, how fast can on-device inference be, and what architecture
delivers it?*

This example:
1. runs the SWaP-constrained search from the scenario preset;
2. validates the winning design on the step-based simulator in both
   lighting environments, printing the power-cycle behaviour;
3. shows what the same constraint costs on a darker deployment.

Run:  python examples/wearable_scenario.py
"""

from repro import SCENARIOS, Chrysalis, zoo
from repro.explore.ga import GAConfig
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.trace import EventKind


def main() -> None:
    scenario = SCENARIOS["wearable"]
    print(f"scenario   : {scenario.name} — {scenario.description}")
    print(f"constraint : panel <= {scenario.max_panel_cm2} cm^2")
    print()

    network = zoo.har_cnn()
    tool = Chrysalis(
        network,
        setup="existing",
        scenario=scenario,
        ga_config=GAConfig(population_size=12, generations=8, seed=7),
    )
    solution = tool.generate()
    print(solution.report())
    print()

    # Validate on the step simulator: watch the intermittent execution.
    evaluator = ChrysalisEvaluator(network)
    for environment in scenario.environments:
        result = evaluator.simulate(solution.design, environment)
        metrics = result.metrics
        ckpts = result.trace.count(EventKind.CHECKPOINT_SAVED)
        print(f"[{environment.name:>8}] latency {metrics.e2e_latency:8.3f} s"
              f" | cycles {metrics.power_cycles:3d}"
              f" | checkpoints {ckpts:3d}"
              f" | exceptions {metrics.exceptions:2d}"
              f" | efficiency {metrics.system_efficiency:.2f}")
        ok = scenario.satisfied_by(solution.solar_panel_cm2,
                                   metrics.e2e_latency)
        print(f"           SWaP constraints satisfied: {ok}")

    # First few trace events of the brighter run, for a feel of the
    # intermittent execution.
    result = evaluator.simulate(solution.design, scenario.environments[0])
    print()
    print("trace (first 12 events):")
    print(result.trace.render(limit=12))


if __name__ == "__main__":
    main()
