"""Quickstart: generate an ideal AuT architecture for one workload.

This is the §III-A usage model end to end: give CHRYSALIS a DNN task,
a platform setup and an objective; get back the energy-harvester
sizing, the capacitor, the accelerator configuration and the per-layer
intermittent mapping plan.

Run:  python examples/quickstart.py
"""

from repro import Chrysalis, Objective, zoo
from repro.core.describer import describe_design
from repro.explore.ga import GAConfig


def main() -> None:
    # The HAR workload from the paper's Table IV: a 5-layer 1-D CNN
    # classifying accelerometer windows — a classic wearable AuT task.
    network = zoo.har_cnn()
    print(network.summary())
    print()

    # Minimise latency x solar-panel-area, the paper's overall-system-
    # efficiency objective, on the existing (MSP430-based) platform.
    tool = Chrysalis(
        network,
        setup="existing",
        objective=Objective.lat_sp(),
        ga_config=GAConfig(population_size=12, generations=8, seed=0),
    )
    solution = tool.generate()

    print("=== Generated AuT solution " + "=" * 34)
    print(solution.report())
    print()
    print(describe_design(solution.design, network))


if __name__ == "__main__":
    main()
