"""Future-AuT study: pre-RTL accelerator co-design for image recognition.

§V-B of the paper: "to enhance the inference performance of AuT, it
becomes imperative to incorporate dedicated accelerator architectures"
— CHRYSALIS then provides "pre-RTL level design references" by jointly
sizing the PE array, the per-PE cache, the energy harvester and the
capacitor.

This example redesigns an AuT for ResNet18 twice — once on the TPU-like
systolic family, once on the Eyeriss-like flexible family — under the
same SWaP constraint, and compares what each architecture needs to meet
it.  It then prints the per-layer intermittent mapping (dataflow style +
N_tile) of the winner, the actual pre-RTL reference a designer would
take away.

Run:  python examples/accelerator_redesign.py
"""

from repro import Chrysalis, Objective, zoo
from repro.explore.ga import GAConfig
from repro.explore.space import DesignSpace
from repro.hardware.accelerators import AcceleratorFamily


def design_for(family: AcceleratorFamily):
    network = zoo.resnet18()
    tool = Chrysalis(
        network,
        objective=Objective.lat(sp_constraint_cm2=15.0),
        space=DesignSpace.future_aut(families=(family,)),
        ga_config=GAConfig(population_size=10, generations=6, seed=3),
    )
    return tool.generate()


def main() -> None:
    solutions = {family: design_for(family)
                 for family in (AcceleratorFamily.TPU,
                                AcceleratorFamily.EYERISS)}

    print("ResNet18, minimise latency subject to panel <= 15 cm^2")
    print(f"{'family':<10}{'PEs':>6}{'cache/PE':>10}{'panel':>9}"
          f"{'cap':>10}{'latency':>10}{'eff.':>7}")
    for family, solution in solutions.items():
        metrics = solution.average_metrics
        print(f"{family.value:<10}{solution.n_pes:>6}"
              f"{solution.vm_per_pe_bytes:>9}B"
              f"{solution.solar_panel_cm2:>8.1f}c"
              f"{solution.capacitor_size_f * 1e6:>9.0f}uF"
              f"{metrics.e2e_latency:>9.2f}s"
              f"{metrics.system_efficiency:>7.2f}")

    winner = min(solutions.values(),
                 key=lambda s: s.average_metrics.e2e_latency)
    print()
    print(f"winner: {winner.design.inference.family.value} — per-layer "
          "intermittent mapping plan (pre-RTL reference):")
    print(f"{'layer':<16}{'dataflow':<10}{'N_tile':>7}  split dims")
    for row in winner.layer_plan:
        print(f"{row.layer:<16}{row.dataflow:<10}{row.n_tiles:>7}  "
              f"{row.tile_dim} (spatial: {row.spatial_dim})")


if __name__ == "__main__":
    main()
