"""Campaign study: a durable two-scenario design-space fleet.

A real deployment study is never one search: it is a *fleet* of them —
every workload crossed with every deployment scenario — and it has to
survive a laptop lid closing halfway through.  This example drives the
spec in ``campaign_spec.json`` (HAR + KWS workloads x wearable +
volcano-monitor scenarios = 4 runs) through the campaign subsystem:

1. expands the spec into content-hashed run keys and executes the first
   half, then *stops* — simulating an interruption;
2. re-invokes the runner against the same store and watches it skip the
   completed runs and finish only the remainder;
3. rebuilds the per-scenario winners and the panel-vs-latency Pareto
   front purely from the store — no search state needed.

The same flow is available from the shell::

    python -m repro campaign run examples/campaign_spec.json --store c.sqlite
    python -m repro campaign status --store c.sqlite
    python -m repro campaign report --store c.sqlite

Run:  python examples/campaign_driver.py
"""

import pathlib
import tempfile

from repro import CampaignSpec, ResultStore
from repro.campaign import CampaignReport, CampaignRunner

SPEC = pathlib.Path(__file__).with_name("campaign_spec.json")


def main() -> None:
    spec = CampaignSpec.from_path(SPEC)
    keys = spec.expand()
    print(f"campaign {spec.name!r}: {len(keys)} runs")
    for key in keys:
        print(f"  {key.run_hash}  {key.describe()}")
    print()

    store_path = pathlib.Path(tempfile.mkdtemp()) / "campaign.sqlite"
    with ResultStore(store_path) as store:
        # --- first invocation: stop after half the campaign -------------
        print("pass 1 (interrupted after 2 runs):")
        progress = CampaignRunner(spec, store, max_runs=2).run()
        print(f"  {progress.completed} completed, "
              f"{progress.remaining} still pending")

        # --- second invocation: same store, resumes where it stopped ----
        print("pass 2 (resumed):")
        progress = CampaignRunner(spec, store).run()
        print(f"  {progress.skipped} skipped (already done), "
              f"{progress.completed} completed")
        assert store.status_counts(spec.name)["done"] == len(keys)
        print()

        report = CampaignReport.from_store(store)
        print(report.render_markdown())


if __name__ == "__main__":
    main()
