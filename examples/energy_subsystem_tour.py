"""Tour of the energy subsystem: harvesting, storage and intermittency.

A standalone walk through the EA-domain models — useful when you only
need the energy-harvesting substrate (panel + capacitor + PMIC + MPPT)
without the inference layer on top:

1. the diurnal irradiance profile behind k_eh;
2. perturb-and-observe MPPT converging on the panel's power curve;
3. charge/discharge cycles of an intermittent system under load;
4. how capacitor sizing trades charging latency against leakage.

Run:  python examples/energy_subsystem_tour.py
"""

from repro.energy.capacitor import Capacitor
from repro.energy.controller import EnergyController
from repro.energy.environment import LightEnvironment
from repro.energy.harvester import SolarHarvester
from repro.energy.mppt import PerturbObserveTracker
from repro.energy.pmic import PowerManagementIC
from repro.energy.solar_panel import SolarPanel
from repro.units import uF, mF


def diurnal_profile() -> None:
    print("1) diurnal harvest profile (8 cm^2 panel)")
    env = LightEnvironment.brighter()
    panel = SolarPanel(area_cm2=8.0)
    for hour in range(5, 21, 2):
        power_mw = panel.power(env.k_eh_at(float(hour))) * 1e3
        bar = "#" * int(power_mw * 2)
        print(f"   {hour:02d}:00  {power_mw:6.2f} mW  {bar}")
    print()


def mppt_convergence() -> None:
    print("2) perturb-and-observe MPPT")
    panel = SolarPanel(area_cm2=8.0)
    tracker = PerturbObserveTracker(panel, step_voltage=0.05)
    k_eh = LightEnvironment.brighter().k_eh
    milestones = {1, 5, 20, 80, 200}
    for step in range(1, 201):
        tracker.step(k_eh)
        if step in milestones:
            print(f"   after {step:>3} steps: operating at "
                  f"{tracker.operating_voltage:.2f} V "
                  f"(MPP is {panel.v_mpp:.2f} V)")
    efficiency = PerturbObserveTracker(panel).tracking_efficiency(k_eh)
    print(f"   steady-state tracking efficiency: {efficiency:.1%}")
    print()


def intermittent_cycles() -> None:
    print("3) intermittent operation under a 10 mW load (2 cm^2 panel)")
    controller = EnergyController(
        harvester=SolarHarvester(SolarPanel(area_cm2=2.0),
                                 LightEnvironment.brighter()),
        capacitor=Capacitor(capacitance=uF(470), rated_voltage=5.0),
        pmic=PowerManagementIC(),
    )
    for _ in range(6):
        wait = controller.fast_forward_to_on()
        on_time = 0.0
        while controller.rail_on():
            controller.step(0.001, load_power=10e-3)
            on_time += 0.001
        print(f"   charged {wait:6.3f} s -> ran {on_time * 1e3:6.1f} ms")
    acct = controller.accounting
    print(f"   harvested {acct.harvested * 1e3:.2f} mJ, delivered "
          f"{acct.delivered * 1e3:.2f} mJ, leaked {acct.leaked * 1e6:.1f} uJ")
    print()


def capacitor_sizing() -> None:
    print("4) capacitor sizing: charge latency vs leakage (8 cm^2 panel)")
    env = LightEnvironment.brighter()
    pmic = PowerManagementIC()
    panel = SolarPanel(area_cm2=8.0)
    charge_power = pmic.charge_power(panel.power(env.k_eh))
    print(f"   {'cap':>9} {'0->U_on':>10} {'cycle energy':>13} "
          f"{'leak @U_on':>11}")
    for capacitance in (uF(47), uF(220), mF(1), mF(4.7), mF(10)):
        cap = Capacitor(capacitance=capacitance, rated_voltage=5.0)
        t_charge = cap.time_to_reach(pmic.v_on, charge_power)
        cycle = pmic.usable_cycle_energy(capacitance)
        leak = cap.leakage_power(pmic.v_on)
        print(f"   {capacitance * 1e6:7.0f}uF {t_charge:9.2f}s "
              f"{cycle * 1e3:11.3f}mJ {leak * 1e6:9.1f}uW")


def main() -> None:
    diurnal_profile()
    mppt_convergence()
    intermittent_cycles()
    capacitor_sizing()


if __name__ == "__main__":
    main()
