"""Volcano-monitoring station: hybrid harvesting + Pareto exploration.

The paper's introduction motivates AuT with autonomous volcanic
monitoring: thermoelectric generation from fumaroles is available day
and night, sunlight only sometimes, and clouds of ash/steam shade the
panel unpredictably.  This example combines three extension points:

1. a *composite* harvester (solar panel + thermoelectric module);
2. *stochastic shading* on the solar half (FluctuatingHarvester);
3. the *multi-objective* explorer, producing the full
   (panel area, latency) Pareto front for the monitoring workload
   rather than one scalarised design.

Run:  python examples/volcano_station.py
"""

from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.capacitor import Capacitor
from repro.energy.controller import EnergyController
from repro.energy.environment import LightEnvironment
from repro.energy.harvester import (
    CompositeHarvester,
    FluctuatingHarvester,
    SolarHarvester,
    ThermalHarvester,
)
from repro.energy.pmic import PowerManagementIC
from repro.explore.ga import GAConfig
from repro.explore.mapper_search import MappingOptimizer
from repro.explore.nsga2 import ParetoExplorer
from repro.explore.space import DesignSpace
from repro.sim.analytical import AnalyticalModel
from repro.sim.engine import StepSimulator
from repro.sim.intermittent import InferenceController
from repro.units import uF
from repro.workloads import zoo


def pareto_front_for_monitoring():
    """(panel, latency) tradeoff for the HAR-style seismic classifier."""
    print("1) Pareto exploration over the Table IV space (HAR workload)")
    explorer = ParetoExplorer(
        zoo.har_cnn(), DesignSpace.existing_aut(),
        ga_config=GAConfig(population_size=14, generations=7, seed=2),
    )
    front = explorer.run()
    print(f"   {'panel':>8} {'latency':>10}  design")
    for point in front:
        design = point.payload
        print(f"   {point.values[0]:7.2f}c {point.values[1]:9.3f}s  "
              f"{design.describe()}")
    print()
    return front


def hybrid_harvesting_station(front):
    """Step-simulate the mid-front design on the hybrid supply."""
    print("2) step simulation on the hybrid (solar + TEG) supply, "
         "with stochastic ash shading")
    design = front[len(front) // 2].payload
    network = zoo.har_cnn()

    # Hot fumarole ground: a 6 cm^2 TEG across a 35 K gradient.
    environment = LightEnvironment(
        cloudiness=0.7, panel_efficiency=0.18, deployment_factor=0.10,
        ambient_temp_c=45.0, name="volcano",
    )
    solar = FluctuatingHarvester(
        SolarHarvester(design.energy.build_panel(), environment),
        sigma=0.6, correlation_time_s=0.2, seed=13,
    )
    teg = ThermalHarvester(area_cm2=6.0, delta_t_kelvin=35.0)
    supply = CompositeHarvester((solar, teg))
    print(f"   panel {design.energy.panel_area_cm2:.1f} cm^2 "
          f"(~{solar.base.power_at(0) * 1e3:.2f} mW shaded) + TEG "
          f"{teg.power_at(0) * 1e3:.2f} mW "
          f"=> footprint {supply.footprint_cm2:.1f} cm^2")

    model = AnalyticalModel(design, network, environment)
    energy = EnergyController(
        harvester=supply,
        capacitor=design.energy.build_capacitor(
            design.energy.pmic.v_on),
        pmic=design.energy.pmic,
    )
    inference = InferenceController(
        plan=model.plan(), checkpoint=model.checkpoint)
    result = StepSimulator(energy, inference).run()
    metrics = result.metrics
    print(f"   latency {metrics.e2e_latency:.3f} s | power cycles "
          f"{metrics.power_cycles} | exceptions {metrics.exceptions} | "
          f"efficiency {metrics.system_efficiency:.2f}")
    print()


def teg_only_fallback():
    """Eruption-night scenario: no light at all, TEG only."""
    print("3) TEG-only fallback (no sunlight): is the station still live?")
    network = zoo.har_cnn()
    energy_design = EnergyDesign(panel_area_cm2=1.0, capacitance_f=uF(470))
    inference_design = InferenceDesign.msp430()
    mappings = MappingOptimizer(
        network, environments=[LightEnvironment.indoor()]
    ).optimize(energy_design, inference_design)
    if mappings is None:
        print("   (no feasible mapping)")
        return
    design = AuTDesign(energy=energy_design, inference=inference_design,
                       mappings=mappings)
    model = AnalyticalModel(design, network, LightEnvironment.indoor())
    teg = ThermalHarvester(area_cm2=6.0, delta_t_kelvin=35.0)
    energy = EnergyController(
        harvester=teg,
        capacitor=Capacitor(capacitance=uF(470), rated_voltage=5.0,
                            voltage=3.0),
        pmic=PowerManagementIC(),
    )
    inference = InferenceController(plan=model.plan())
    result = StepSimulator(energy, inference).run()
    metrics = result.metrics
    if metrics.feasible:
        print(f"   yes: {metrics.e2e_latency:.2f} s per classification on "
              f"{teg.power_at(0) * 1e3:.2f} mW of fumarole heat "
              f"({metrics.power_cycles} energy cycles)")
    else:
        print(f"   no: {metrics.infeasible_reason}")


def main() -> None:
    front = pareto_front_for_monitoring()
    hybrid_harvesting_station(front)
    teg_only_fallback()


if __name__ == "__main__":
    main()
