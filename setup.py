"""Setup shim for legacy editable installs.

The execution environment has no ``wheel`` package, so PEP 660 editable
wheels cannot be built; ``pip install -e .`` falls back to this shim
(``setup.py develop``).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
