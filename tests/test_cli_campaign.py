"""Tests for the ``campaign`` CLI group and ``search --json``."""

import json

import pytest

from repro.campaign.spec import CampaignSpec, ObjectiveSpec
from repro.cli import main
from repro.serialize import solution_from_json


@pytest.fixture
def spec_path(tmp_path):
    spec = CampaignSpec(name="cli-camp", workloads=("har",),
                        objectives=(ObjectiveSpec(kind="lat*sp"),),
                        environments=("indoor",), seeds=(0, 1),
                        population=4, generations=2)
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return path


class TestCampaignRun:
    def test_run_completes_and_status_agrees(self, spec_path, tmp_path,
                                             capsys):
        store = tmp_path / "camp.sqlite"
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "cli-camp" in out
        assert "2 completed" in out
        assert store.exists()

        assert main(["campaign", "status", "--store", str(store)]) == 0
        assert "cli-camp: 2/2 complete" in capsys.readouterr().out

    def test_interrupted_run_resumes(self, spec_path, tmp_path, capsys):
        store = tmp_path / "camp.sqlite"
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store), "--max-runs", "1"]) == 0
        capsys.readouterr()
        # Half-finished campaign: status flags it via the exit code.
        assert main(["campaign", "status", "--store", str(store)]) == 1
        assert "cli-camp: 1/2 complete" in capsys.readouterr().out

        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store)]) == 0
        assert "1 already complete" in capsys.readouterr().out
        assert main(["campaign", "status", "--store", str(store)]) == 0

    def test_missing_spec_file_errors(self, tmp_path, capsys):
        code = main(["campaign", "run", str(tmp_path / "absent.json"),
                     "--store", str(tmp_path / "s.sqlite")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_status_of_empty_store(self, tmp_path, capsys):
        assert main(["campaign", "status",
                     "--store", str(tmp_path / "empty.sqlite")]) == 1
        assert "no campaigns" in capsys.readouterr().out


class TestCampaignReport:
    def test_report_renders_and_writes_json(self, spec_path, tmp_path,
                                            capsys):
        store = tmp_path / "camp.sqlite"
        main(["campaign", "run", str(spec_path), "--store", str(store)])
        capsys.readouterr()

        report_path = tmp_path / "report.json"
        assert main(["campaign", "report", "--store", str(store),
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-scenario winners" in out
        assert "Pareto front" in out

        payload = json.loads(report_path.read_text())
        assert payload["campaign"] == "cli-camp"
        assert payload["counts"]["done"] == 2

    def test_runs_listing(self, spec_path, tmp_path, capsys):
        store = tmp_path / "camp.sqlite"
        main(["campaign", "run", str(spec_path), "--store", str(store)])
        capsys.readouterr()
        main(["campaign", "status", "--store", str(store), "--runs"])
        out = capsys.readouterr().out
        assert out.count("[done") == 2
        assert "har/existing/indoor" in out


class TestSearchJson:
    def test_search_json_flag_writes_loadable_solution(self, tmp_path,
                                                       capsys):
        path = tmp_path / "solution.json"
        assert main(["search", "har", "--population", "4",
                     "--generations", "2", "--json", str(path)]) == 0
        solution = solution_from_json(path.read_text())
        assert solution.design.mappings  # fully rehydrated
        assert solution.average_metrics.feasible


class TestObsCli:
    @pytest.fixture(autouse=True)
    def obs_off(self):
        from repro.obs import state as obs_state
        obs_state.disable()
        obs_state.reset()
        yield
        obs_state.disable()
        obs_state.reset()

    def test_campaign_obs_roundtrip_through_store(self, spec_path, tmp_path,
                                                  capsys):
        store = tmp_path / "camp.sqlite"
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store), "--obs"]) == 0
        out = capsys.readouterr().out
        assert "-- observability" in out
        assert "campaign.run" in out and "search.run" in out

        # The report reconstructs purely from the store's per-run blobs.
        assert main(["obs", "report", "--campaign", str(store)]) == 0
        out = capsys.readouterr().out
        assert "reconstructed from 2 stored run blob(s)" in out
        assert "campaign.run                                 x2" in out
        assert "ga.run" in out and "search.genome" in out

    def test_obs_report_without_blobs_fails(self, spec_path, tmp_path,
                                            capsys):
        store = tmp_path / "camp.sqlite"
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--campaign", str(store)]) == 1
        assert "no observability blobs" in capsys.readouterr().out

    def test_simulate_obs_snapshot_feeds_obs_report(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        csv = tmp_path / "snap.csv"
        assert main(["simulate", "har", "--panel", "6", "--cap", "330",
                     "--obs-output", str(snap)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(snap),
                     "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "sim.run" in out
        assert "energy.controller.steps" in out
        assert csv.read_text().startswith("section,name,field,value")
        payload = json.loads(snap.read_text())
        assert payload["spans"]["roots"][0]["name"] == "api.evaluate"

    def test_obs_report_rejects_ambiguous_inputs(self, capsys):
        assert main(["obs", "report"]) == 2
        assert "exactly one" in capsys.readouterr().err
