"""Doc-fidelity tests: the TUTORIAL.md snippets must actually run.

Each test mirrors one tutorial section (with smaller search budgets so
the suite stays fast).  If an API change breaks the docs, this file
breaks first.
"""

import pytest

from repro import Chrysalis, LightEnvironment, Objective
from repro.core.describer import describe_design
from repro.design import EnergyDesign, InferenceDesign
from repro.explore.ga import GAConfig
from repro.explore.sweeps import sweep
from repro.serialize import design_from_json, design_to_json
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.report import profile_design, render_profile
from repro.sim.trace_analysis import analyze_trace
from repro.units import uF
from repro.workloads import Conv2D, Dense, Network, Pool2D, zoo

FAST = GAConfig(population_size=6, generations=3, seed=0)


@pytest.fixture(scope="module")
def network():
    return zoo.har_cnn()


@pytest.fixture(scope="module")
def solution(network):
    return Chrysalis(network, setup="existing",
                     objective=Objective.lat_sp(), ga_config=FAST).generate()


def test_section_1_custom_network():
    net = Network.chain("mysensor", (1, 64, 64), [
        Conv2D("conv1", in_channels=1, out_channels=8,
               in_height=64, in_width=64, kernel=3, padding=1),
        Pool2D("pool1", channels=8, in_height=64, in_width=64),
        Dense("fc", in_features=8 * 32 * 32, out_features=4),
    ])
    assert net.macs > 0
    assert "mysensor" in net.summary()


def test_section_2_environments():
    brighter, darker = LightEnvironment.paper_environments()
    assert brighter.k_eh > darker.k_eh > 0


def test_section_3_objectives_construct():
    Objective.lat(sp_constraint_cm2=6.0)
    Objective.sp(latency_constraint_s=2.0)
    Objective.lat_sp()


def test_section_4_inspection(network, solution):
    design = solution.design
    assert "Mapping describer" in describe_design(network=network,
                                                  design=design,
                                                  loop_nests=True)
    profile = profile_design(design, network, LightEnvironment.brighter())
    assert "total" in render_profile(profile)


def test_section_5_step_validation(network, solution):
    evaluator = ChrysalisEvaluator(network)
    result = evaluator.simulate(solution.design,
                                LightEnvironment.darker())
    assert result.metrics.feasible
    analysis = analyze_trace(result.trace)
    assert "duty cycle" in analysis.render()
    assert result.trace.render(limit=10)


def test_section_6_sweep(network):
    result = sweep(network, "capacitance_f",
                   [uF(47), uF(220), uF(1000)],
                   EnergyDesign(panel_area_cm2=8.0, capacitance_f=uF(470)),
                   InferenceDesign.msp430())
    assert result.best().value in (uF(47), uF(220), uF(1000))
    assert "latency" in result.render()


def test_section_7_persistence(network, solution, tmp_path):
    path = tmp_path / "design.json"
    path.write_text(design_to_json(solution.design))
    reloaded = design_from_json(path.read_text())
    assert reloaded == solution.design
