"""Tests for the eager-vs-JIT checkpoint strategies."""

import pytest

from repro.dataflow.cost_model import DataflowCostModel
from repro.dataflow.mapping import LayerMapping
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.hardware.accelerators import tpu_like
from repro.hardware.checkpoint import CheckpointModel, CheckpointStrategy
from repro.hardware.memory import FRAM
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.intermittent import InferenceController
from repro.units import uF
from repro.workloads import zoo
from repro.workloads.layers import Conv2D


def models():
    eager = CheckpointModel(nvm=FRAM, strategy=CheckpointStrategy.EAGER)
    jit = CheckpointModel(nvm=FRAM, strategy=CheckpointStrategy.JIT)
    return eager, jit


class TestCostModel:
    def test_jit_cheaper_expected_overhead_at_low_r_exc(self):
        eager, jit = models()
        ws = 2048.0
        assert (jit.expected_tile_overhead_energy(ws)
                < eager.expected_tile_overhead_energy(ws))

    def test_jit_more_expensive_per_round(self):
        """A JIT save writes the whole live set, not the boundary
        residue — each individual round costs more."""
        _, jit = models()
        ws = 2048.0
        jit_round = jit.expected_tile_overhead_energy(ws) / jit.exception_rate
        eager = CheckpointModel(nvm=FRAM)
        eager_round = (eager.save_energy(ws) + eager.resume_energy(ws))
        assert jit_round > eager_round

    def test_strategies_converge_at_high_exception_rates(self):
        """With failures every tile, JIT's advantage erodes."""
        ws = 4096.0
        eager = CheckpointModel(nvm=FRAM, exception_rate=2.0)
        jit = CheckpointModel(nvm=FRAM, exception_rate=2.0,
                              strategy=CheckpointStrategy.JIT)
        ratio = (jit.expected_tile_overhead_energy(ws)
                 / eager.expected_tile_overhead_energy(ws))
        assert ratio > 0.5


class TestStepSemantics:
    @pytest.fixture
    def plan_pair(self):
        conv = Conv2D("c", in_channels=4, out_channels=8, in_height=8,
                      in_width=8, kernel=3, padding=1)
        hw = tpu_like(n_pes=8)
        mapping = LayerMapping.default(conv, n_tiles=4)
        eager, jit = models()
        plan_eager = [DataflowCostModel(hw, eager).layer_cost(conv, mapping)]
        plan_jit = [DataflowCostModel(hw, jit).layer_cost(conv, mapping)]
        return (InferenceController(plan=plan_eager, checkpoint=eager),
                InferenceController(plan=plan_jit, checkpoint=jit))

    def test_jit_preserves_progress_on_failure(self, plan_pair):
        _, jit_controller = plan_pair
        demand = jit_controller.tile_energy_demand()
        jit_controller.deliver(demand / 2)
        lost = jit_controller.power_failure()
        assert lost is False
        assert jit_controller.tile_energy_demand() == pytest.approx(
            demand / 2)
        assert jit_controller.exceptions == 1
        assert jit_controller.breakdown.checkpoint > 0.0

    def test_eager_loses_progress_on_failure(self, plan_pair):
        eager_controller, _ = plan_pair
        demand = eager_controller.tile_energy_demand()
        eager_controller.deliver(demand / 2)
        assert eager_controller.power_failure() is True
        assert eager_controller.tile_energy_demand() == pytest.approx(demand)

    def test_jit_never_plans_boundary_checkpoints(self, plan_pair):
        _, jit_controller = plan_pair
        assert jit_controller.checkpoint_round_energy() == 0.0
        per_tile = jit_controller.plan[0].tile.energy_without_checkpoint
        jit_controller.deliver(per_tile * 4 + 1e-12)
        assert jit_controller.planned_checkpoints == 0


class TestEndToEnd:
    def test_jit_at_least_as_fast_in_calm_conditions(self):
        network = zoo.cifar10_cnn()
        design = AuTDesign.with_default_mappings(
            EnergyDesign(panel_area_cm2=8.0, capacitance_f=uF(2200)),
            InferenceDesign.msp430(), network, n_tiles=4)
        env = LightEnvironment.brighter()
        eager, jit = models()
        lat_eager = ChrysalisEvaluator(network, checkpoint=eager).evaluate(
            design, env).sustained_period
        lat_jit = ChrysalisEvaluator(network, checkpoint=jit).evaluate(
            design, env).sustained_period
        assert lat_jit <= lat_eager * 1.0001

    def test_step_simulation_completes_under_jit(self):
        network = zoo.har_cnn()
        design = AuTDesign.with_default_mappings(
            EnergyDesign(panel_area_cm2=3.0, capacitance_f=uF(470)),
            InferenceDesign.msp430(), network, n_tiles=4)
        _, jit = models()
        evaluator = ChrysalisEvaluator(network, checkpoint=jit)
        result = evaluator.simulate(design, LightEnvironment.darker())
        assert result.metrics.feasible
        assert result.inference.finished

    def test_jit_completes_tiles_larger_than_one_cycle(self):
        """The defining capability of JIT: a tile whose energy exceeds a
        full cycle still completes (progress survives failures), where
        the eager strategy is correctly reported infeasible (Eq. 8)."""
        network = zoo.cifar10_cnn()
        # Single-tile layers on a small capacitor in the dark: tiles far
        # exceed the ~0.4 mJ cycle.
        design = AuTDesign.with_default_mappings(
            EnergyDesign(panel_area_cm2=3.0, capacitance_f=uF(220)),
            InferenceDesign.msp430(), network, n_tiles=1)
        env = LightEnvironment.darker()
        eager, jit = models()

        eager_result = ChrysalisEvaluator(network,
                                          checkpoint=eager).simulate(
            design, env)
        assert not eager_result.metrics.feasible

        jit_result = ChrysalisEvaluator(network, checkpoint=jit).simulate(
            design, env)
        assert jit_result.metrics.feasible
        assert jit_result.inference.finished
        assert jit_result.metrics.exceptions > 0
