"""Tests for lease-based fleet execution (store layer + worker loop).

Every lease-timing assertion runs against an injected fake clock — no
test here sleeps to make a lease expire, so the "a dead worker's runs
re-queue within one TTL" bound is asserted exactly, not approximately.
"""

import sqlite3
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.fleet import (
    CampaignWorker,
    FleetConfig,
    retry_delay_s,
)
from repro.campaign.runner import execute_search
from repro.campaign.spec import CampaignSpec, ObjectiveSpec, RunKey
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_EXHAUSTED,
    STATUS_PENDING,
    STATUS_RUNNING,
    ResultStore,
)
from repro.errors import ChrysalisError, ConfigurationError, StoreError


def make_key(workload="har", seed=0, **overrides):
    base = dict(workload=workload, setup="existing", environment="paper",
                objective=ObjectiveSpec(kind="lat*sp"), seed=seed,
                population=4, generations=2)
    base.update(overrides)
    return RunKey(**base)


def make_spec(runs=2, name="fleet", max_attempts=3):
    return CampaignSpec(
        name=name, workloads=("har",), setups=("existing",),
        environments=("indoor",),
        objectives=(ObjectiveSpec(kind="lat*sp"),),
        seeds=tuple(range(runs)), population=4, generations=2,
        max_attempts=max_attempts)


SOLUTION = {"schema_version": 1, "fake": True}
TTL = 10.0


class FakeClock:
    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    with ResultStore(":memory:", clock=clock) as s:
        yield s


def fill(store, seeds=(0, 1, 2)):
    keys = [make_key(seed=s) for s in seeds]
    store.register("camp", keys)
    return keys


class TestFleetConfig:
    def test_heartbeat_defaults_to_quarter_ttl(self):
        assert FleetConfig(lease_ttl_s=8.0).heartbeat_interval_s == 2.0
        assert FleetConfig(heartbeat_s=0.5).heartbeat_interval_s == 0.5

    def test_rejects_nonsensical_values(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(lease_ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            FleetConfig(poll_s=-1.0)
        with pytest.raises(ConfigurationError):
            FleetConfig(lease_ttl_s=2.0, heartbeat_s=2.0)

    def test_attempts_cap_prefers_override(self):
        spec = make_spec(max_attempts=5)
        assert FleetConfig().attempts_cap(spec) == 5
        assert FleetConfig(max_attempts=2).attempts_cap(spec) == 2


class TestRetryDelay:
    def test_deterministic_per_hash_and_attempt(self):
        config = FleetConfig()
        assert retry_delay_s("abc", 2, config) == \
            retry_delay_s("abc", 2, config)
        assert retry_delay_s("abc", 2, config) != \
            retry_delay_s("abc", 3, config)

    def test_exponential_with_jitter_bounds(self):
        config = FleetConfig(backoff_base_s=1.0, backoff_cap_s=1000.0)
        for attempt in range(1, 8):
            delay = retry_delay_s("deadbeef", attempt, config)
            raw = 2.0 ** (attempt - 1)
            assert 0.75 * raw <= delay <= 1.25 * raw

    def test_cap(self):
        config = FleetConfig(backoff_base_s=1.0, backoff_cap_s=4.0)
        assert retry_delay_s("deadbeef", 50, config) <= 4.0 * 1.25


class TestClaim:
    def test_claim_leases_in_grid_order(self, store, clock):
        keys = fill(store)
        row = store.claim("camp", "w1", ttl_s=TTL)
        assert row.run_hash == keys[0].run_hash
        assert row.status == STATUS_RUNNING
        assert row.lease_owner == "w1"
        assert row.lease_deadline == clock.now + TTL
        assert row.attempts == 1

    def test_two_workers_claim_distinct_runs(self, store):
        fill(store, seeds=(0, 1))
        first = store.claim("camp", "w1", ttl_s=TTL)
        second = store.claim("camp", "w2", ttl_s=TTL)
        assert first.run_hash != second.run_hash
        assert store.claim("camp", "w3", ttl_s=TTL) is None

    def test_expired_lease_is_claimable_and_audited(self, store, clock):
        fill(store, seeds=(0,))
        row = store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL + 0.001)
        taken = store.claim("camp", "w2", ttl_s=TTL)
        assert taken.run_hash == row.run_hash
        assert taken.lease_owner == "w2"
        assert taken.attempts == 2
        lost = [e for e in taken.attempt_history if e["outcome"] == "lost"]
        assert lost and lost[0]["worker"] == "w1"

    def test_live_lease_is_not_claimable(self, store, clock):
        fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL - 0.001)  # one tick short of expiry
        assert store.claim("camp", "w2", ttl_s=TTL) is None

    def test_failed_run_respects_retry_backoff(self, store, clock):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        store.record_failure(key, error="boom", campaign="camp",
                             worker_id="w1", max_attempts=3,
                             retry_delay_s=5.0)
        assert store.claim("camp", "w1", ttl_s=TTL) is None
        clock.advance(5.0)
        assert store.claim("camp", "w1", ttl_s=TTL).run_hash == key.run_hash

    def test_spent_failed_run_is_not_claimable(self, store):
        [key] = fill(store, seeds=(0,))
        for _ in range(2):
            store.claim("camp", "w1", ttl_s=TTL)
            store.record_failure(key, error="boom", campaign="camp",
                                 worker_id="w1", retry_delay_s=0.0)
        assert store.get(key.run_hash).attempts == 2
        assert store.claim("camp", "w1", ttl_s=TTL, max_attempts=2) is None


class TestHeartbeat:
    def test_extends_deadline_monotonically(self, store, clock):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(4.0)
        assert store.heartbeat("w1", key.run_hash, ttl_s=TTL)
        assert store.get(key.run_hash).lease_deadline == clock.now + TTL
        # A shorter extension never moves the deadline backwards.
        assert store.heartbeat("w1", key.run_hash, ttl_s=1.0)
        assert store.get(key.run_hash).lease_deadline == clock.now + TTL

    def test_returns_false_after_lease_lost(self, store, clock):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL + 1.0)
        store.claim("camp", "w2", ttl_s=TTL)
        assert store.heartbeat("w1", key.run_hash, ttl_s=TTL) is False
        # ... and the failed beat did not touch w2's lease.
        assert store.get(key.run_hash).lease_owner == "w2"

    def test_idle_heartbeat_keeps_worker_alive(self, store, clock):
        store.register_worker("w1", "camp", lease_ttl_s=TTL)
        clock.advance(3 * TTL)
        assert not store.workers_status("camp")[0].alive
        store.heartbeat("w1")
        assert store.workers_status("camp")[0].alive


class TestReap:
    def test_reclaimed_within_exactly_one_ttl(self, store, clock):
        """The recovery bound: a dead worker's lease is reclaimable at
        claim-time + TTL, not a moment later."""
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL - 0.001)
        assert store.reap_stale("camp") == []
        clock.advance(0.001)  # exactly one TTL after the claim
        assert store.reap_stale("camp") == [key.run_hash]
        assert store.get(key.run_hash).status == STATUS_PENDING
        assert store.get(key.run_hash).lease_owner is None

    def test_reaped_run_is_immediately_claimable(self, store, clock):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL)
        store.reap_stale("camp")
        taken = store.claim("camp", "w2", ttl_s=TTL)
        assert taken.run_hash == key.run_hash
        assert taken.attempts == 2

    def test_reap_exhausts_spent_rows(self, store, clock):
        [key] = fill(store, seeds=(0,))
        for _ in range(2):
            store.claim("camp", "w1", ttl_s=TTL)
            clock.advance(TTL)
            reaped = store.reap_stale("camp", max_attempts=2)
        assert reaped == [key.run_hash]
        run = store.get(key.run_hash)
        assert run.status == STATUS_EXHAUSTED
        assert "lease expired" in run.error

    def test_reap_is_idempotent(self, store, clock):
        fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL)
        assert len(store.reap_stale("camp")) == 1
        assert store.reap_stale("camp") == []


class TestLeaseGuard:
    def test_stale_writer_is_dropped(self, store, clock):
        """A worker that lost its lease cannot clobber the reclaimant."""
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL + 1.0)
        store.claim("camp", "w2", ttl_s=TTL)  # takeover
        assert store.record_success(
            key, score=1.0, panel_cm2=4.0, latency_s=1.0,
            solution=SOLUTION, campaign="camp", worker_id="w1") is False
        assert store.get(key.run_hash).status == STATUS_RUNNING
        assert store.record_success(
            key, score=1.0, panel_cm2=4.0, latency_s=1.0,
            solution=SOLUTION, campaign="camp", worker_id="w2") is True
        assert store.get(key.run_hash).status == STATUS_DONE

    def test_late_write_after_completion_is_dropped(self, store, clock):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        clock.advance(TTL + 1.0)
        store.claim("camp", "w2", ttl_s=TTL)
        store.record_success(key, score=1.0, panel_cm2=4.0, latency_s=1.0,
                             solution=SOLUTION, campaign="camp",
                             worker_id="w2")
        assert store.record_failure(key, error="late", campaign="camp",
                                    worker_id="w1") is None
        assert store.get(key.run_hash).status == STATUS_DONE


class TestExhaustAndCounts:
    def test_exhaust_spent_flips_failed_rows(self, store):
        [key] = fill(store, seeds=(0,))
        store.claim("camp", "w1", ttl_s=TTL)
        store.record_failure(key, error="boom", campaign="camp",
                             worker_id="w1")
        assert store.exhaust_spent("camp", max_attempts=1) == [key.run_hash]
        assert store.get(key.run_hash).status == STATUS_EXHAUSTED
        assert store.exhaust_spent("camp", max_attempts=1) == []

    def test_unfinished_ignores_terminal_rows(self, store):
        keys = fill(store, seeds=(0, 1, 2))
        assert store.unfinished_count("camp") == 3
        store.record_success(keys[0], score=1.0, panel_cm2=4.0,
                             latency_s=1.0, solution=SOLUTION,
                             campaign="camp")
        store.claim("camp", "w1", ttl_s=TTL)
        store.record_failure(keys[1], error="boom", campaign="camp",
                             worker_id="w1", max_attempts=1)
        assert store.get(keys[1].run_hash).status == STATUS_EXHAUSTED
        assert store.unfinished_count("camp") == 1

    def test_workers_status_liveness(self, store, clock):
        store.register_worker("w1", "camp", pid=42, lease_ttl_s=TTL)
        store.register_worker("w2", "camp", lease_ttl_s=TTL)
        store.retire_worker("w2")
        clock.advance(2 * TTL + 0.001)
        by_id = {w.worker_id: w for w in store.workers_status("camp")}
        assert by_id["w1"].alive is False  # silent past two TTLs: dead
        assert by_id["w2"].alive is False
        assert by_id["w2"].retired_at is not None


class TestReadonlyOldSchema:
    """v2 stores stay readable under v3 code without being migrated."""

    def _make_v2_store(self, path):
        with ResultStore(path) as store:
            store.record_success(
                make_key(seed=0), score=1.0, panel_cm2=4.0, latency_s=1.0,
                solution=SOLUTION, campaign="camp")
            store.record_success(
                make_key(seed=1), score=2.0, panel_cm2=2.0, latency_s=2.0,
                solution=SOLUTION, campaign="camp")
        conn = sqlite3.connect(path)
        conn.execute("DROP INDEX IF EXISTS idx_runs_lease")
        for column in ("lease_owner", "lease_deadline", "retry_at",
                       "attempts_json"):
            conn.execute(f"ALTER TABLE runs DROP COLUMN {column}")
        conn.execute("DROP TABLE workers")
        conn.execute("UPDATE campaign_meta SET value='2' "
                     "WHERE key='schema_version'")
        conn.commit()
        conn.close()

    def test_reads_without_migrating(self, tmp_path):
        path = tmp_path / "v2.sqlite"
        self._make_v2_store(path)
        with ResultStore(path, readonly=True) as store:
            counts = store.status_counts("camp")
            assert counts[STATUS_DONE] == 2
            assert counts[STATUS_EXHAUSTED] == 0
            front = store.pareto_slice("camp")
            assert len(front) == 2
            run = store.runs(campaign="camp")[0]
            assert run.lease_owner is None
            assert run.attempt_history == []
        # The file was not migrated behind the readers' backs.
        conn = sqlite3.connect(path)
        version = conn.execute(
            "SELECT value FROM campaign_meta "
            "WHERE key='schema_version'").fetchone()[0]
        columns = {row[1] for row in
                   conn.execute("PRAGMA table_info(runs)").fetchall()}
        conn.close()
        assert version == "2"
        assert "lease_owner" not in columns

    def test_readonly_rejects_writes(self, tmp_path):
        path = tmp_path / "v2.sqlite"
        self._make_v2_store(path)
        with ResultStore(path, readonly=True) as store:
            with pytest.raises(StoreError, match="readonly"):
                store.register("camp", [make_key(seed=9)])

    def test_readonly_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.sqlite"
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE campaign_meta SET value='99' "
                     "WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="schema version"):
            ResultStore(path, readonly=True)


class _FlakyConnection:
    """Proxy that injects 'database is locked' on the first N writes."""

    def __init__(self, conn, failures):
        self._conn = conn
        self.failures = failures
        self.locked_raised = 0

    def execute(self, sql, *args):
        if sql.startswith("BEGIN") and self.failures > 0:
            self.failures -= 1
            self.locked_raised += 1
            raise sqlite3.OperationalError("database is locked")
        return self._conn.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class TestLockRetry:
    def test_bounded_retry_rides_out_contention(self, store, monkeypatch):
        monkeypatch.setattr("repro.campaign.store.time.sleep",
                            lambda _s: None)
        flaky = _FlakyConnection(store._conn, failures=3)
        store._conn = flaky
        assert store.register("camp", [make_key()]) == 1
        assert flaky.locked_raised == 3

    def test_persistent_lock_becomes_store_error(self, store, monkeypatch):
        monkeypatch.setattr("repro.campaign.store.time.sleep",
                            lambda _s: None)
        store._conn = _FlakyConnection(store._conn, failures=10 ** 9)
        with pytest.raises(StoreError, match="locked"):
            store.register("camp", [make_key()])


class TestWorkerLoop:
    """CampaignWorker integration against a real (tiny) search."""

    def _config(self):
        return FleetConfig(lease_ttl_s=TTL, heartbeat_s=0.05, poll_s=0.02,
                           backoff_base_s=0.01, backoff_cap_s=0.02)

    def test_two_workers_one_store_no_double_execution(self, tmp_path):
        spec = make_spec(runs=4, name="contend")
        path = tmp_path / "contend.sqlite"
        lock = threading.Lock()
        executions = []

        def tracked(key):
            start = time.monotonic()
            result = execute_search(key)
            with lock:
                executions.append((key.run_hash, start, time.monotonic()))
            return result

        workers = [CampaignWorker(spec, path, worker_id=f"w{i}",
                                  config=self._config(), execute=tracked)
                   for i in range(2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        with ResultStore(path) as store:
            counts = store.status_counts("contend")
            assert counts[STATUS_DONE] == 4
            assert store.unfinished_count("contend") == 0
        hashes = [run_hash for run_hash, _, _ in executions]
        assert sorted(hashes) == sorted(k.run_hash for k in spec.expand())
        assert len(set(hashes)) == len(hashes)  # nothing ran twice

    def test_failing_run_exhausts_and_worker_terminates(self, tmp_path):
        spec = make_spec(runs=2, name="flaky", max_attempts=2)
        path = tmp_path / "flaky.sqlite"
        doomed = spec.expand()[0].run_hash

        def execute(key):
            if key.run_hash == doomed:
                raise ChrysalisError("no feasible design")
            return execute_search(key)

        summary = CampaignWorker(spec, path, worker_id="w0",
                                 config=self._config(),
                                 execute=execute).run()
        assert summary.done == 1
        assert summary.failed == 2  # max_attempts burned
        with ResultStore(path) as store:
            assert store.get(doomed).status == STATUS_EXHAUSTED
            assert store.status_counts("flaky")[STATUS_DONE] == 1
            history = store.get(doomed).attempt_history
            assert [e["outcome"] for e in history] == ["failed", "exhausted"]


OPS = st.lists(
    st.tuples(st.sampled_from(["claim-a", "claim-b", "beat-a", "beat-b",
                               "advance", "reap"]),
              st.floats(min_value=0.1, max_value=3 * TTL)),
    max_size=30)


class TestLeaseExclusionProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_no_run_is_ever_held_by_two_live_leases(self, ops):
        """Under any interleaving of claims, heartbeats, reaps, and time,
        a claim only ever takes a run whose previous lease has expired."""
        clock = FakeClock()
        with ResultStore(":memory:", clock=clock) as store:
            store.register("camp", [make_key(seed=s) for s in range(2)])
            leases = {}  # run_hash -> (owner, deadline) model
            for op, value in ops:
                now = clock.now
                if op.startswith("claim"):
                    worker = op[-1]
                    row = store.claim("camp", worker, ttl_s=TTL)
                    if row is not None:
                        prior = leases.get(row.run_hash)
                        assert prior is None or prior[0] == worker \
                            or prior[1] <= now, \
                            f"claim by {worker} stole a live lease {prior}"
                        leases[row.run_hash] = (worker, now + TTL)
                elif op.startswith("beat"):
                    worker = op[-1]
                    for run_hash, (owner, deadline) in list(leases.items()):
                        if owner != worker:
                            continue
                        held = store.heartbeat(worker, run_hash, ttl_s=TTL)
                        # Ownership only changes via claim/reap (both
                        # update the model), so a modeled owner's beat
                        # must succeed — even past the deadline, an
                        # unreclaimed lease revives.
                        assert held, "beat failed for the modeled owner"
                        leases[run_hash] = (worker,
                                            max(deadline, now + TTL))
                elif op == "advance":
                    clock.advance(value)
                else:
                    for run_hash in store.reap_stale("camp"):
                        assert leases[run_hash][1] <= now, \
                            "reap took a live lease"
                        del leases[run_hash]
