"""Tests for the exception hierarchy.

The library's contract is that *every* error it raises derives from
:class:`ChrysalisError`, so callers can fence off library failures with
one except clause — the hardened search pipeline depends on this to
absorb candidate failures without masking genuine bugs.
"""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    ChrysalisError,
    ConfigurationError,
    EvaluationTimeout,
    FaultInjectionError,
    SearchError,
)
from repro.explore.ga import GAConfig
from repro.faults import FaultConfig


def _all_error_classes():
    return [
        obj for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == errors_module.__name__
    ]


class TestHierarchy:
    def test_every_error_is_a_chrysalis_error(self):
        classes = _all_error_classes()
        assert len(classes) >= 9  # the full family, not a stub module
        for cls in classes:
            assert issubclass(cls, ChrysalisError), cls.__name__

    def test_every_error_catchable_with_one_clause(self):
        for cls in _all_error_classes():
            if cls is ChrysalisError:
                continue
            with pytest.raises(ChrysalisError):
                raise cls("synthetic")

    def test_families_stay_distinguishable(self):
        with pytest.raises(ChrysalisError) as excinfo:
            raise EvaluationTimeout("budget gone")
        assert isinstance(excinfo.value, EvaluationTimeout)
        assert not isinstance(excinfo.value, SearchError)

    def test_plain_exceptions_not_absorbed(self):
        """Non-library bugs (TypeError & co.) must escape a
        ``except ChrysalisError`` fence."""
        assert not issubclass(ValueError, ChrysalisError)
        assert not issubclass(ChrysalisError, ValueError)


class TestReclassifications:
    def test_ga_config_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            GAConfig(population_size=1)

    def test_ga_config_still_catchable_as_chrysalis_error(self):
        # Callers of the pre-v1.0 API caught SearchError via the base
        # class; the reclassification must not break that idiom.
        with pytest.raises(ChrysalisError):
            GAConfig(generations=0)

    def test_fault_config_raises_fault_injection_error(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(harvest_dropout_rate=1.5)
        with pytest.raises(ChrysalisError):
            FaultConfig(harvest_window_s=0.0)
