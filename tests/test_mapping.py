"""Tests for per-layer mapping schemes."""

import pytest

from repro.dataflow.directives import DataflowStyle, InterTempMap, SpatialMap
from repro.dataflow.mapping import LayerMapping
from repro.errors import MappingError
from repro.workloads.layers import Conv2D, Dense


@pytest.fixture
def conv():
    return Conv2D("c", in_channels=16, out_channels=32, in_height=16,
                  in_width=16, kernel=3, padding=1)


class TestConstruction:
    def test_default_picks_sane_dims(self, conv):
        mapping = LayerMapping.default(conv)
        assert mapping.tile_dim == "Y"
        assert mapping.spatial_dim == "K"

    def test_tile_and_spatial_must_differ(self):
        with pytest.raises(MappingError):
            LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY, n_tiles=2,
                         tile_dim="K", spatial_dim="K")

    def test_bad_n_tiles(self):
        with pytest.raises(MappingError):
            LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY, n_tiles=0,
                         tile_dim="Y")

    def test_unknown_dim(self):
        with pytest.raises(MappingError):
            LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY, n_tiles=1,
                         tile_dim="Q")


class TestGeometry:
    def test_tile_chunk_ceil_division(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=3, tile_dim="Y")
        # Y=16, 3 tiles -> chunks of ceil(16/3)=6.
        assert mapping.tile_chunk(conv) == 6
        assert mapping.effective_n_tiles(conv) == 3

    def test_clamped_caps_at_dim_size(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=100, tile_dim="Y")
        assert mapping.clamped(conv).n_tiles == 16

    def test_validate_for_rejects_oversplit(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=100, tile_dim="Y")
        with pytest.raises(MappingError):
            mapping.validate_for(conv)

    def test_tile_dims_only_changes_tile_dim(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=4, tile_dim="Y")
        tile = mapping.tile_dims(conv)
        full = conv.dims()
        assert tile["Y"] == 4
        for name in ("K", "C", "R", "S", "X"):
            assert tile[name] == full[name]

    def test_tiles_cover_dimension(self, conv):
        for n in range(1, 17):
            mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                                   n_tiles=n, tile_dim="Y")
            chunk = mapping.tile_chunk(conv)
            effective = mapping.effective_n_tiles(conv)
            assert chunk * effective >= 16
            assert chunk * (effective - 1) < 16


class TestDirectiveExpansion:
    def test_single_tile_has_no_intertempmap(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=1, tile_dim="Y")
        directives = mapping.to_directives(conv, n_pes=8)
        assert directives.intermittent is None

    def test_multi_tile_intertempmap_outermost(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=4, tile_dim="Y")
        directives = mapping.to_directives(conv, n_pes=8)
        assert isinstance(directives.directives[0], InterTempMap)
        assert directives.directives[0].dim == "Y"

    def test_spatial_chunk_divides_across_pes(self, conv):
        mapping = LayerMapping(style=DataflowStyle.WEIGHT_STATIONARY,
                               n_tiles=1, tile_dim="Y", spatial_dim="K")
        directives = mapping.to_directives(conv, n_pes=8)
        spatial = directives.spatial
        assert isinstance(spatial, SpatialMap)
        assert spatial.size == 4  # K=32 over 8 PEs

    def test_dense_layer_expansion(self):
        fc = Dense("fc", in_features=256, out_features=64)
        mapping = LayerMapping(style=DataflowStyle.OUTPUT_STATIONARY,
                               n_tiles=4, tile_dim="K", spatial_dim="C")
        directives = mapping.to_directives(fc, n_pes=4)
        dims_mapped = {d.dim for d in directives}
        assert "K" in dims_mapped and "C" in dims_mapped

    def test_bad_pe_count(self, conv):
        mapping = LayerMapping.default(conv)
        with pytest.raises(MappingError):
            mapping.to_directives(conv, n_pes=0)
