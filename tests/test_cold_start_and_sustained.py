"""Tests for cold-start latency and sustained-throughput metrics."""

import math

import pytest

from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.sim.analytical import AnalyticalModel
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import InferenceMetrics
from repro.units import uF, mF
from repro.workloads import zoo


def make_design(capacitance=uF(470), panel=8.0, n_tiles=2, network=None):
    net = network or zoo.har_cnn()
    return net, AuTDesign.with_default_mappings(
        EnergyDesign(panel_area_cm2=panel, capacitance_f=capacitance),
        InferenceDesign.msp430(), net, n_tiles=n_tiles)


class TestColdStart:
    def test_cold_start_adds_charge_time(self):
        net, design = make_design()
        model = AnalyticalModel(design, net, LightEnvironment.brighter())
        assert model.cold_start_latency() == pytest.approx(
            model.cold_start_charge_time()
            + model.evaluate().e2e_latency)

    def test_bigger_capacitor_longer_cold_start(self):
        net, small = make_design(capacitance=uF(100))
        _, large = make_design(capacitance=mF(4.7))
        env = LightEnvironment.brighter()
        t_small = AnalyticalModel(small, net, env).cold_start_charge_time()
        t_large = AnalyticalModel(large, net, env).cold_start_charge_time()
        assert t_large > 10 * t_small

    def test_cold_start_matches_step_simulation(self):
        net, design = make_design()
        env = LightEnvironment.brighter()
        model = AnalyticalModel(design, net, env)
        evaluator = ChrysalisEvaluator(net)
        stepped = evaluator.simulate(design, env, initial_voltage=0.0)
        assert stepped.metrics.e2e_latency == pytest.approx(
            model.cold_start_latency(), rel=0.35)

    def test_infeasible_cold_start_is_inf(self):
        net, design = make_design(capacitance=mF(10), panel=1.0)
        model = AnalyticalModel(design, net, LightEnvironment.indoor())
        assert math.isinf(model.cold_start_latency())


class TestSustained:
    def test_sustained_at_least_e2e(self):
        net, design = make_design()
        evaluator = ChrysalisEvaluator(net)
        for env in LightEnvironment.paper_environments():
            metrics = evaluator.evaluate(design, env)
            assert metrics.sustained_period >= metrics.e2e_latency - 1e-12

    def test_sustained_throughput_inverse(self):
        metrics = InferenceMetrics(e2e_latency=1.0, busy_time=1.0,
                                   charge_time=0.0, sustained_period=4.0)
        assert metrics.sustained_throughput == pytest.approx(0.25)

    def test_sustained_throughput_falls_back_to_e2e(self):
        metrics = InferenceMetrics(e2e_latency=2.0, busy_time=2.0,
                                   charge_time=0.0)
        assert metrics.sustained_throughput == pytest.approx(0.5)

    def test_infeasible_throughput_zero(self):
        assert InferenceMetrics.infeasible("x").sustained_throughput == 0.0

    def test_step_sustained_includes_refill(self):
        net, design = make_design(panel=2.0, n_tiles=4)
        evaluator = ChrysalisEvaluator(net)
        result = evaluator.simulate(design, LightEnvironment.darker())
        metrics = result.metrics
        assert metrics.feasible
        assert metrics.sustained_period >= metrics.e2e_latency

    def test_sustained_agreement_between_paths(self):
        net, design = make_design(panel=4.0, n_tiles=4)
        env = LightEnvironment.darker()
        evaluator = ChrysalisEvaluator(net)
        analytical = evaluator.evaluate(design, env)
        stepped = evaluator.simulate(design, env).metrics
        assert stepped.sustained_period == pytest.approx(
            analytical.sustained_period, rel=0.35)
