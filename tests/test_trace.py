"""Tests for the simulation event trace."""

import pytest

from repro.sim.trace import Event, EventKind, Trace


class TestTrace:
    def test_record_and_count(self):
        trace = Trace()
        trace.record(0.0, EventKind.POWER_ON)
        trace.record(1.0, EventKind.TILE_STARTED, layer="conv", tile=0)
        trace.record(2.0, EventKind.TILE_COMPLETED, layer="conv", tile=0)
        assert len(trace) == 3
        assert trace.count(EventKind.POWER_ON) == 1
        assert trace.count(EventKind.POWER_OFF) == 0

    def test_of_kind_filters(self):
        trace = Trace()
        for i in range(3):
            trace.record(float(i), EventKind.TILE_COMPLETED, layer="l",
                         tile=i)
        trace.record(3.0, EventKind.INFERENCE_COMPLETED)
        tiles = trace.of_kind(EventKind.TILE_COMPLETED)
        assert [e.tile for e in tiles] == [0, 1, 2]

    def test_render_limit(self):
        trace = Trace()
        for i in range(10):
            trace.record(float(i), EventKind.POWER_ON)
        text = trace.render(limit=3)
        assert "7 more events" in text

    def test_event_render(self):
        event = Event(1.5, EventKind.CHECKPOINT_SAVED, layer="fc", tile=2,
                      detail="boundary")
        text = event.render()
        assert "checkpoint_saved" in text
        assert "fc[2]" in text
        assert "boundary" in text


class TestRingBuffer:
    def test_oldest_evicted_at_capacity(self):
        trace = Trace(capacity=4)
        for i in range(10):
            trace.record(float(i), EventKind.POWER_ON, tile=i)
        assert [e.tile for e in trace.events] == [6, 7, 8, 9]
        assert trace.dropped == 6

    def test_counters_exact_despite_eviction(self):
        trace = Trace(capacity=2)
        for i in range(7):
            trace.record(float(i), EventKind.POWER_ON)
        trace.record(7.0, EventKind.POWER_OFF)
        assert len(trace) == 8
        assert trace.count(EventKind.POWER_ON) == 7
        assert trace.count(EventKind.POWER_OFF) == 1
        assert trace.counts() == {EventKind.POWER_ON: 7,
                                  EventKind.POWER_OFF: 1}

    def test_full_retention_opt_in(self):
        trace = Trace(capacity=None)
        for i in range(Trace.DEFAULT_CAPACITY + 100):
            trace.record(float(i), EventKind.POWER_ON)
        assert len(trace.events) == Trace.DEFAULT_CAPACITY + 100
        assert trace.dropped == 0

    def test_default_capacity_bounds_retention(self):
        trace = Trace()
        for i in range(Trace.DEFAULT_CAPACITY + 10):
            trace.record(float(i), EventKind.POWER_ON)
        assert len(trace.events) == Trace.DEFAULT_CAPACITY
        assert len(trace) == Trace.DEFAULT_CAPACITY + 10
        assert trace.dropped == 10

    def test_record_bulk_counts_without_events(self):
        trace = Trace()
        trace.record(0.0, EventKind.TILE_COMPLETED, layer="l", tile=0)
        trace.record_bulk(EventKind.TILE_COMPLETED, 41)
        trace.record_bulk(EventKind.POWER_ON, 42)
        assert trace.count(EventKind.TILE_COMPLETED) == 42
        assert trace.count(EventKind.POWER_ON) == 42
        assert len(trace.events) == 1
        assert len(trace) == 84
        assert trace.dropped == 83

    def test_record_bulk_zero_is_noop(self):
        trace = Trace()
        trace.record_bulk(EventKind.POWER_ON, 0)
        assert len(trace) == 0
        assert trace.counts() == {}

    def test_record_bulk_negative_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.record_bulk(EventKind.POWER_ON, -1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Trace(capacity=0)
        with pytest.raises(ValueError):
            Trace(capacity=-5)

    def test_render_accounts_for_unretained(self):
        trace = Trace(capacity=3)
        for i in range(5):
            trace.record(float(i), EventKind.POWER_ON)
        text = trace.render()
        # 3 retained lines plus the "2 more" rollup for evicted ones.
        assert "2 more events" in text
