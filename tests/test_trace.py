"""Tests for the simulation event trace."""

from repro.sim.trace import Event, EventKind, Trace


class TestTrace:
    def test_record_and_count(self):
        trace = Trace()
        trace.record(0.0, EventKind.POWER_ON)
        trace.record(1.0, EventKind.TILE_STARTED, layer="conv", tile=0)
        trace.record(2.0, EventKind.TILE_COMPLETED, layer="conv", tile=0)
        assert len(trace) == 3
        assert trace.count(EventKind.POWER_ON) == 1
        assert trace.count(EventKind.POWER_OFF) == 0

    def test_of_kind_filters(self):
        trace = Trace()
        for i in range(3):
            trace.record(float(i), EventKind.TILE_COMPLETED, layer="l",
                         tile=i)
        trace.record(3.0, EventKind.INFERENCE_COMPLETED)
        tiles = trace.of_kind(EventKind.TILE_COMPLETED)
        assert [e.tile for e in tiles] == [0, 1, 2]

    def test_render_limit(self):
        trace = Trace()
        for i in range(10):
            trace.record(float(i), EventKind.POWER_ON)
        text = trace.render(limit=3)
        assert "7 more events" in text

    def test_event_render(self):
        event = Event(1.5, EventKind.CHECKPOINT_SAVED, layer="fc", tile=2,
                      detail="boundary")
        text = event.render()
        assert "checkpoint_saved" in text
        assert "fc[2]" in text
        assert "boundary" in text
