"""Tests for the top-level Chrysalis API, solutions, and scenarios."""

import pytest

from repro import Chrysalis, Objective, Scenario, zoo
from repro.core.scenarios import SCENARIOS
from repro.core.describer import describe_design
from repro.core.result import AuTSolution
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.ga import GAConfig

FAST_GA = GAConfig(population_size=8, generations=4, seed=0)


@pytest.fixture(scope="module")
def solution():
    tool = Chrysalis(zoo.har_cnn(), setup="existing",
                     objective=Objective.lat_sp(), ga_config=FAST_GA)
    return tool.generate()


class TestChrysalisFrontDoor:
    def test_generate_returns_solution(self, solution):
        assert isinstance(solution, AuTSolution)
        assert solution.average_metrics.feasible

    def test_table_ii_outputs_exposed(self, solution):
        assert solution.capacitor_size_f > 0
        assert 1.0 <= solution.solar_panel_cm2 <= 30.0
        assert solution.n_pes == 1  # MSP430 setup
        assert solution.vm_per_pe_bytes > 0

    def test_layer_plan_covers_network(self, solution):
        assert len(solution.layer_plan) == len(zoo.har_cnn())
        for row in solution.layer_plan:
            assert row.dataflow in ("ws", "os", "is")
            assert row.n_tiles >= 1

    def test_report_renders(self, solution):
        text = solution.report()
        assert "solar panel" in text
        assert "capacitor" in text
        for row in solution.layer_plan:
            assert row.layer in text

    def test_default_objective_is_lat_sp(self):
        tool = Chrysalis(zoo.har_cnn())
        assert tool.objective.kind.value == "lat*sp"

    def test_bad_setup_rejected(self):
        with pytest.raises(ConfigurationError):
            Chrysalis(zoo.har_cnn(), setup="imaginary")

    def test_scenario_supplies_objective_and_envs(self):
        scenario = SCENARIOS["wearable"]
        tool = Chrysalis(zoo.har_cnn(), scenario=scenario)
        assert tool.objective.kind.value == "lat"
        assert tool.environments == scenario.environments

    def test_pareto_front_api(self):
        tool = Chrysalis(zoo.har_cnn(), setup="existing",
                         ga_config=GAConfig(population_size=8,
                                            generations=4, seed=1))
        front = tool.pareto()
        assert len(front) >= 2
        panels = [p.values[0] for p in front]
        assert panels == sorted(panels)
        for point in front:
            assert point.payload is not None
            point.payload.validate_against(zoo.har_cnn())


class TestScenarios:
    def test_presets_cover_paper_domains(self):
        assert set(SCENARIOS) >= {"wearable", "volcano-monitor", "uav",
                                  "smart-city", "space-probe"}

    def test_objective_from_constraints(self):
        assert SCENARIOS["wearable"].objective().kind.value == "lat"
        assert SCENARIOS["volcano-monitor"].objective().kind.value == "sp"

    def test_satisfied_by(self):
        uav = SCENARIOS["uav"]
        assert uav.satisfied_by(panel_cm2=10.0, latency_s=5.0)
        assert not uav.satisfied_by(panel_cm2=13.0, latency_s=5.0)
        assert not uav.satisfied_by(panel_cm2=10.0, latency_s=11.0)

    def test_unconstrained_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", description="", environments=(
                LightEnvironment.brighter(),))


class TestDescriber:
    def test_describe_design_sections(self, solution):
        text = describe_design(solution.design, zoo.har_cnn())
        assert "Energy subsystem describer" in text
        assert "Inference subsystem describer" in text
        assert "Mapping describer" in text
        assert "SpatialMap" in text

    def test_loop_nests_optional(self, solution):
        text = describe_design(solution.design, zoo.har_cnn(),
                               loop_nests=True)
        assert "MAC(...)" in text
