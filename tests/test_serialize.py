"""Tests for design/solution JSON serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Chrysalis, Objective, zoo
from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.dataflow.directives import DataflowStyle
from repro.dataflow.mapping import LayerMapping
from repro.energy.environment import LightEnvironment
from repro.errors import ConfigurationError
from repro.explore.ga import GAConfig
from repro.hardware.accelerators import AcceleratorFamily
from repro.serialize import (
    breakdown_from_dict,
    breakdown_to_dict,
    design_from_dict,
    design_from_json,
    design_to_dict,
    design_to_json,
    mapping_from_dict,
    mapping_to_dict,
    metrics_from_dict,
    metrics_to_dict,
    solution_from_dict,
    solution_from_json,
    solution_to_dict,
    solution_to_json,
)
from repro.sim.evaluator import ChrysalisEvaluator
from repro.sim.metrics import EnergyBreakdown, InferenceMetrics
from repro.units import uF
from repro.workloads.layers import DIM_NAMES


@pytest.fixture
def design():
    network = zoo.har_cnn()
    base = AuTDesign.with_default_mappings(
        EnergyDesign(panel_area_cm2=7.5, capacitance_f=uF(330)),
        InferenceDesign(family=AcceleratorFamily.TPU, n_pes=48,
                        cache_bytes_per_pe=768),
        network, n_tiles=3)
    # Exercise a multi-dimensional mapping in the round trip.
    fancy = LayerMapping(style=DataflowStyle.OUTPUT_STATIONARY, n_tiles=4,
                         tile_dim="Y", spatial_dim="K",
                         secondary_dim="C", n_tiles_2=2)
    return base.replace_mapping(0, fancy)


class TestRoundTrip:
    def test_design_round_trips(self, design):
        clone = design_from_dict(design_to_dict(design))
        assert clone == design

    def test_json_round_trips(self, design):
        clone = design_from_json(design_to_json(design))
        assert clone == design

    def test_json_is_valid_and_versioned(self, design):
        data = json.loads(design_to_json(design))
        assert data["schema_version"] == 1
        assert data["inference"]["family"] == "tpu"

    def test_mapping_round_trip_preserves_secondary(self, design):
        mapping = design.mappings[0]
        clone = mapping_from_dict(mapping_to_dict(mapping))
        assert clone == mapping
        assert clone.secondary_dim == "C"

    def test_reloaded_design_evaluates_identically(self, design):
        network = zoo.har_cnn()
        clone = design_from_json(design_to_json(design))
        evaluator = ChrysalisEvaluator(network)
        env = LightEnvironment.brighter()
        original = evaluator.evaluate(design, env)
        reloaded = evaluator.evaluate(clone, env)
        assert reloaded.e2e_latency == original.e2e_latency
        assert reloaded.total_energy == original.total_energy


class TestValidationOnLoad:
    def test_wrong_schema_version(self, design):
        data = design_to_dict(design)
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            design_from_dict(data)

    def test_missing_section(self, design):
        data = design_to_dict(design)
        del data["energy"]
        with pytest.raises(ConfigurationError):
            design_from_dict(data)

    def test_tampered_values_fail_validation(self, design):
        data = design_to_dict(design)
        data["energy"]["panel_area_cm2"] = -4.0
        with pytest.raises(ConfigurationError):
            design_from_dict(data)

    def test_bad_mapping_dims_fail(self, design):
        data = design_to_dict(design)
        data["mappings"][0]["tile_dim"] = "Z"
        with pytest.raises(Exception):
            design_from_dict(data)
        assert "Z" not in DIM_NAMES

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            design_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(ConfigurationError):
            design_from_json("[1, 2, 3]")


@pytest.fixture(scope="module")
def solution():
    tool = Chrysalis(zoo.har_cnn(), setup="existing",
                     objective=Objective.lat_sp(),
                     ga_config=GAConfig(population_size=6,
                                        generations=3, seed=0))
    return tool.generate()


class TestSolutionExport:
    def test_solution_to_dict(self, solution):
        data = solution_to_dict(solution)
        assert json.dumps(data)  # JSON-compatible throughout
        assert data["score"] == solution.score
        assert len(data["layer_plan"]) == len(solution.layer_plan)
        # The embedded design reloads into the same architecture.
        clone = design_from_dict(data["design"])
        assert clone == solution.design


class TestSolutionRoundTrip:
    def test_dict_round_trip_is_exact(self, solution):
        assert solution_from_dict(solution_to_dict(solution)) == solution

    def test_json_round_trip_is_exact(self, solution):
        assert solution_from_json(solution_to_json(solution)) == solution

    def test_wrong_schema_version(self, solution):
        data = solution_to_dict(solution)
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            solution_from_dict(data)

    def test_pre_campaign_record_rejected_helpfully(self, solution):
        data = solution_to_dict(solution)
        del data["average_metrics"]
        with pytest.raises(ConfigurationError, match="pre-campaign"):
            solution_from_dict(data)

    def test_missing_field_rejected(self, solution):
        data = solution_to_dict(solution)
        del data["average_metrics"]["power_cycles"]
        with pytest.raises(ConfigurationError, match="missing"):
            solution_from_dict(data)

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            solution_from_json("{not json")


# Hypothesis strategies for the metrics round-trip property tests.
finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)

breakdowns = st.builds(
    EnergyBreakdown, compute=finite, vm=finite, nvm=finite, static=finite,
    checkpoint=finite, cap_leakage=finite, conversion=finite)

metrics_objects = st.builds(
    InferenceMetrics,
    e2e_latency=finite, busy_time=finite, charge_time=finite,
    energy=breakdowns, harvested_energy=finite,
    power_cycles=st.integers(min_value=0, max_value=10**6),
    exceptions=st.integers(min_value=0, max_value=10**6),
    feasible=st.booleans(),
    infeasible_reason=st.text(max_size=40),
    sustained_period=finite)


class TestMetricsRoundTripProperties:
    @given(breakdowns)
    def test_breakdown_round_trips_through_json(self, breakdown):
        data = json.loads(json.dumps(breakdown_to_dict(breakdown)))
        assert breakdown_from_dict(data) == breakdown

    @given(metrics_objects)
    def test_metrics_round_trip_through_json(self, metrics):
        data = json.loads(json.dumps(metrics_to_dict(metrics)))
        clone = metrics_from_dict(data)
        assert clone == metrics
        # Derived quantities survive unchanged too.
        assert clone.total_energy == metrics.total_energy
