"""Property-based tests for Pareto-front extraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.explore.pareto import ParetoPoint, pareto_front

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
points_2d = st.lists(
    st.builds(lambda a, b: ParetoPoint(values=(a, b)), coords, coords),
    min_size=0, max_size=60,
)


@given(points=points_2d)
def test_front_is_subset(points):
    front = pareto_front(points)
    values = {p.values for p in points}
    assert all(p.values in values for p in front)


@given(points=points_2d)
def test_front_members_mutually_nondominated(points):
    front = pareto_front(points)
    for a in front:
        for b in front:
            assert not a.dominates(b)


@given(points=points_2d)
def test_every_excluded_point_is_dominated_or_duplicate(points):
    front = pareto_front(points)
    front_values = {p.values for p in front}
    for point in points:
        if point.values in front_values:
            continue
        assert any(f.dominates(point) for f in front) or any(
            f.values == point.values for f in front)


@given(points=points_2d)
def test_front_is_idempotent(points):
    front = pareto_front(points)
    assert [p.values for p in pareto_front(front)] == \
        [p.values for p in front]


@given(points=points_2d, extra=coords)
def test_adding_dominated_point_changes_nothing(points, extra):
    front = pareto_front(points)
    if not front:
        return
    worst = max(p.values[0] for p in points), max(p.values[1]
                                                  for p in points)
    dominated = ParetoPoint(values=(worst[0] + 1.0 + extra,
                                    worst[1] + 1.0 + extra))
    front_after = pareto_front(list(points) + [dominated])
    assert [p.values for p in front_after] == [p.values for p in front]
