"""Tests for the paper's workload zoo (Tables IV and V)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import zoo


class TestTableIV:
    """Existing-AuT applications."""

    def test_simple_conv_matches_paper_flops(self):
        net = zoo.simple_conv()
        # Table IV: 13.8 kFLOPs on a (3,32,32) input.
        assert net.flops == pytest.approx(13.8e3, rel=0.01)
        assert net.input_shape == (3, 32, 32)
        assert net.num_weight_layers == 1

    def test_cifar10_shape(self):
        net = zoo.cifar10_cnn()
        assert net.input_shape == (3, 32, 32)
        assert net.num_weight_layers == 7  # Table IV: 7 layers
        # Table IV: 77.5 k parameters.
        assert net.params == pytest.approx(77.5e3, rel=0.05)

    def test_har_shape(self):
        net = zoo.har_cnn()
        assert net.num_weight_layers == 5
        assert net.params == pytest.approx(9.4e3, rel=0.1)

    def test_kws_shape(self):
        net = zoo.kws_mlp()
        assert net.num_weight_layers == 5
        # Table IV: 49.5 k parameters and (numerically equal) kFLOPs.
        assert net.params == pytest.approx(49.5e3, rel=0.05)
        assert net.macs == pytest.approx(net.params, rel=0.05)

    def test_mnist_for_fig2a(self):
        net = zoo.mnist_cnn()
        assert net.input_shape == (1, 28, 28)
        # Fig. 2(a): ~1.6 MOPs.
        assert 0.5e6 < net.flops < 2.5e6


class TestTableV:
    """Future-AuT applications."""

    def test_alexnet(self):
        net = zoo.alexnet()
        assert net.num_weight_layers == 7  # Table V counts 7 layers
        assert net.params == pytest.approx(58.7e6, rel=0.05)

    def test_vgg16(self):
        net = zoo.vgg16()
        assert net.num_weight_layers == 16
        assert net.params == pytest.approx(138.3e6, rel=0.01)
        # Table V: 15.47 "GFLOPs" == GMACs by our counting.
        assert net.macs == pytest.approx(15.47e9, rel=0.01)

    def test_resnet18(self):
        net = zoo.resnet18()
        assert net.num_weight_layers == 18
        assert net.params == pytest.approx(11.7e6, rel=0.05)
        assert net.macs == pytest.approx(1.81e9, rel=0.05)

    def test_bert(self):
        net = zoo.bert_tiny()
        # Table V: 56.6 M params (we include the embedding table).
        assert net.params == pytest.approx(56.6e6, rel=0.06)
        assert 0.8e9 < net.flops < 1.6e9  # Table V: 1.28 GFLOPs

    def test_bert_custom_sequence_length(self):
        short = zoo.bert_tiny(seq_len=8)
        long = zoo.bert_tiny(seq_len=32)
        assert long.macs > short.macs
        # Embedding table params do not depend on sequence length.
        assert long.params == short.params


class TestRegistry:
    def test_all_registered_workloads_build(self):
        for name in list(zoo.EXISTING_AUT_WORKLOADS) + list(
                zoo.FUTURE_AUT_WORKLOADS):
            net = zoo.workload_by_name(name)
            assert net.macs >= 0
            assert len(net) > 0

    def test_registries_match_paper_tables(self):
        assert set(zoo.EXISTING_AUT_WORKLOADS) == {
            "simple_conv", "cifar10", "har", "kws"}
        assert set(zoo.FUTURE_AUT_WORKLOADS) == {
            "bert", "alexnet", "vgg16", "resnet18"}

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="available"):
            zoo.workload_by_name("lenet-9000")

    def test_networks_are_fresh_instances(self):
        assert zoo.har_cnn() is not zoo.har_cnn()
