"""Tests for day-scale operation simulation."""

import pytest

from repro.design import AuTDesign, EnergyDesign, InferenceDesign
from repro.energy.environment import LightEnvironment
from repro.sim.longrun import simulate_day
from repro.units import uF
from repro.workloads import zoo


@pytest.fixture(scope="module")
def setup():
    network = zoo.cifar10_cnn()
    design = AuTDesign.with_default_mappings(
        EnergyDesign(panel_area_cm2=6.0, capacitance_f=uF(2200)),
        InferenceDesign.msp430(), network, n_tiles=8)
    return network, design


class TestDaySimulation:
    def test_work_happens_only_in_daylight(self, setup):
        network, design = setup
        result = simulate_day(design, network, LightEnvironment.brighter())
        assert result.inferences > 0
        for hour in result.per_hour:
            assert 6 <= hour <= 18  # the diurnal window

    def test_noon_is_the_productive_peak(self, setup):
        network, design = setup
        result = simulate_day(design, network, LightEnvironment.brighter())
        peak_hour = max(result.per_hour, key=result.per_hour.get)
        assert 9 <= peak_hour <= 15

    def test_darker_day_yields_fewer_inferences(self, setup):
        network, design = setup
        bright = simulate_day(design, network, LightEnvironment.brighter())
        dark = simulate_day(design, network, LightEnvironment.darker())
        assert dark.inferences < bright.inferences

    def test_bigger_panel_more_daily_work(self, setup):
        network, _ = setup
        def day_with(panel):
            design = AuTDesign.with_default_mappings(
                EnergyDesign(panel_area_cm2=panel, capacitance_f=uF(2200)),
                InferenceDesign.msp430(), network, n_tiles=8)
            return simulate_day(design, network,
                                LightEnvironment.brighter()).inferences
        assert day_with(12.0) > day_with(3.0)

    def test_start_hour_respected(self, setup):
        network, design = setup
        afternoon = simulate_day(design, network,
                                 LightEnvironment.brighter(),
                                 start_hour=15.0)
        full_day = simulate_day(design, network,
                                LightEnvironment.brighter())
        assert afternoon.inferences < full_day.inferences

    def test_render_histogram(self, setup):
        network, design = setup
        result = simulate_day(design, network, LightEnvironment.brighter())
        text = result.render()
        assert "inferences/day" in text
        assert "12:00" in text

    def test_step_fidelity_matches_analytical_day(self, setup):
        # use_step prices each daylight hour with the step simulator
        # (riding its fast path); the day total must land close to the
        # closed-form day, and the productive window must agree.
        network, design = setup
        env = LightEnvironment.brighter()
        analytical = simulate_day(design, network, env)
        stepped = simulate_day(design, network, env, use_step=True)
        assert stepped.inferences > 0
        assert stepped.inferences == pytest.approx(analytical.inferences,
                                                   rel=0.05)
        assert set(stepped.per_hour) == set(analytical.per_hour)

    def test_hopeless_environment_zero_inferences(self, setup):
        network, _ = setup
        starved = AuTDesign.with_default_mappings(
            EnergyDesign(panel_area_cm2=1.0, capacitance_f=uF(10)),
            InferenceDesign.msp430(), network, n_tiles=1)
        result = simulate_day(starved, network, LightEnvironment.indoor())
        assert result.inferences == 0
        assert result.first_completion_hour is None
